pub use xqa::*;
