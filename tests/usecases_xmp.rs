//! The W3C XML Query Use Cases, "XMP" group, adapted to the engine's
//! subset — the classic bibliography workload the paper's examples are
//! modelled on. These exercise joins, restructuring, aggregation and
//! search in combination, far beyond the paper's minimal queries.

use xqa::{parse_document, serialize_sequence, DynamicContext, Engine};

/// The use cases' sample `bib.xml` (attributes simplified to elements
/// where the original used attributes only incidentally).
const BIB: &str = r#"
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>"#;

/// Second source for the join use cases.
const REVIEWS: &str = r#"
<reviews>
  <entry>
    <title>Data on the Web</title>
    <price>34.95</price>
    <review>A very good discussion of semi-structured database systems and XML.</review>
  </entry>
  <entry>
    <title>Advanced Programming in the Unix environment</title>
    <price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review>
  </entry>
  <entry>
    <title>TCP/IP Illustrated</title>
    <price>65.95</price>
    <review>One of the best books on TCP/IP.</review>
  </entry>
</reviews>"#;

fn run(query: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile: {e}\n{query}"));
    let bib = parse_document(BIB).unwrap();
    let reviews = parse_document(REVIEWS).unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&bib);
    ctx.register_document("bib.xml", &bib);
    ctx.register_document("reviews.xml", &reviews);
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run: {e}\n{query}"));
    serialize_sequence(&result)
}

#[test]
fn xmp_q1_books_by_publisher_after_year() {
    // List books published by Addison-Wesley after 1991, including
    // their year and title.
    let out = run(r#"<bib>
             {for $b in doc("bib.xml")/bib/book
              where $b/publisher = "Addison-Wesley" and $b/@year > 1991
              return <book year="{$b/@year}">{$b/title}</book>}
           </bib>"#);
    assert_eq!(
        out,
        "<bib><book year=\"1994\"><title>TCP/IP Illustrated</title></book>\
         <book year=\"1992\"><title>Advanced Programming in the Unix environment</title></book></bib>"
    );
}

#[test]
fn xmp_q2_flat_title_author_pairs() {
    // One <result> per (title, author) pair.
    let out = run(
        r#"for $b in doc("bib.xml")/bib/book, $t in $b/title, $a in $b/author
           return <result>{$t, $a/last}</result>"#,
    );
    assert_eq!(out.matches("<result>").count(), 5, "{out}");
    assert!(out.contains("<result><title>Data on the Web</title><last>Suciu</last></result>"));
}

#[test]
fn xmp_q3_titles_with_authors_grouped() {
    // One result per book with its title and all authors.
    let out = run(r#"for $b in doc("bib.xml")/bib/book
           return <result>{$b/title}{$b/author/last}</result>"#);
    assert!(out.contains(
        "<result><title>Data on the Web</title>\
         <last>Abiteboul</last><last>Buneman</last><last>Suciu</last></result>"
    ));
    // The editor-only book has no authors.
    assert!(out.contains(
        "<result><title>The Economics of Technology and Content for Digital TV</title></result>"
    ));
}

#[test]
fn xmp_q4_books_per_author_via_group_by() {
    // The use case's "invert the hierarchy" query — exactly the paper's
    // Q7 pattern, expressed with the extension.
    let out = run(r#"for $b in doc("bib.xml")/bib/book
           for $a in $b/author
           group by string($a/last) into $last
           nest $b/title into $titles
           order by $last
           return <result><author>{$last}</author>{$titles}</result>"#);
    assert!(out
        .starts_with("<result><author>Abiteboul</author><title>Data on the Web</title></result>"));
    assert!(out.contains(
        "<result><author>Stevens</author><title>TCP/IP Illustrated</title>\
         <title>Advanced Programming in the Unix environment</title></result>"
    ));
}

#[test]
fn xmp_q5_join_books_with_reviews() {
    // Join bib.xml and reviews.xml on title; report both prices.
    let out = run(r#"for $b in doc("bib.xml")/bib/book,
               $e in doc("reviews.xml")/reviews/entry
           where string($b/title) = string($e/title)
           order by $b/title
           return
             <book-with-prices>
               {$b/title}
               <price-bstore2>{string($e/price)}</price-bstore2>
               <price-bstore1>{string($b/price)}</price-bstore1>
             </book-with-prices>"#);
    assert_eq!(out.matches("<book-with-prices>").count(), 3);
    assert!(out.contains(
        "<book-with-prices><title>Data on the Web</title>\
         <price-bstore2>34.95</price-bstore2><price-bstore1>39.95</price-bstore1></book-with-prices>"
    ));
}

#[test]
fn xmp_q6_books_with_multiple_authors() {
    let out = run(r#"for $b in doc("bib.xml")//book
           where count($b/author) >= 2
           return $b/title"#);
    assert_eq!(out, "<title>Data on the Web</title>");
}

#[test]
fn xmp_q7_sorted_expensive_books() {
    // Books costing more than 60, sorted by title.
    let out = run(r#"<bib>
             {for $b in doc("bib.xml")//book[price > 60]
              order by $b/title
              return <book>{$b/title, $b/price}</book>}
           </bib>"#);
    assert_eq!(
        out,
        "<bib><book><title>Advanced Programming in the Unix environment</title><price>65.95</price></book>\
         <book><title>TCP/IP Illustrated</title><price>65.95</price></book>\
         <book><title>The Economics of Technology and Content for Digital TV</title><price>129.95</price></book></bib>"
    );
}

#[test]
fn xmp_q8_text_search_in_reviews() {
    // Find titles whose review mentions "UNIX".
    let out = run(r#"for $e in doc("reviews.xml")//entry
           where contains(string($e/review), "UNIX")
           return $e/title"#);
    assert_eq!(
        out,
        "<title>Advanced Programming in the Unix environment</title>"
    );
}

#[test]
fn xmp_q9_min_max_avg_prices() {
    let out = run(r#"let $prices := doc("bib.xml")//book/price
           return <prices>
             <min>{min($prices)}</min>
             <max>{max($prices)}</max>
             <avg>{round-half-to-even(avg($prices), 2)}</avg>
           </prices>"#);
    assert_eq!(
        out,
        "<prices><min>39.95</min><max>129.95</max><avg>75.45</avg></prices>"
    );
}

#[test]
fn xmp_q10_price_differences_across_stores() {
    // For each book sold at both stores, the absolute price difference.
    let out = run(r#"for $b in doc("bib.xml")//book,
               $e in doc("reviews.xml")//entry
           where string($b/title) = string($e/title)
              and number($b/price) != number($e/price)
           return <diff title="{$b/title}">{abs(number($b/price) - number($e/price))}</diff>"#);
    assert_eq!(out, "<diff title=\"Data on the Web\">5</diff>");
}

#[test]
fn xmp_q11_books_without_authors_have_editors() {
    let out = run(r#"for $b in doc("bib.xml")//book
           where empty($b/author)
           return <reference>{$b/title}{$b/editor/last}</reference>"#);
    assert_eq!(
        out,
        "<reference><title>The Economics of Technology and Content for Digital TV</title>\
         <last>Gerbarg</last></reference>"
    );
}

#[test]
fn xmp_q12_co_author_pairs() {
    // Distinct unordered co-author pairs via group by on constructed keys.
    let out = run(r#"for $b in doc("bib.xml")//book
           for $a1 in $b/author/last, $a2 in $b/author/last
           where string($a1) < string($a2)
           group by concat(string($a1), "+", string($a2)) into $pair
           order by $pair
           return <pair>{$pair}</pair>"#);
    assert_eq!(
        out,
        "<pair>Abiteboul+Buneman</pair><pair>Abiteboul+Suciu</pair><pair>Buneman+Suciu</pair>"
    );
}

#[test]
fn allocation_query_from_paper_conclusions() {
    // §8 mentions "allocation queries": distribute a regional budget
    // across states proportionally to their sales — two grouping levels
    // plus arithmetic over group properties.
    let sales = r#"<sales>
      <sale><state>CA</state><region>West</region><amount>60</amount></sale>
      <sale><state>OR</state><region>West</region><amount>40</amount></sale>
      <sale><state>NY</state><region>East</region><amount>50</amount></sale>
    </sales>"#;
    let engine = Engine::new();
    let doc = parse_document(sales).unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let q = engine
        .compile(
            // Note: $budget must be bound by an *enclosing* FLWOR — a
            // `let` in the same FLWOR before `group by` would be out of
            // scope after it (the §3.2 rule, enforced statically).
            r#"let $budget := 1000
               return
               for $s in //sale
               group by $s/region into $region
               nest $s into $rs
               let $regional := sum($rs/amount)
               order by $region
               return
                 for $t in $rs
                 group by $t/state into $state
                 nest $t/amount into $amounts
                 order by $state
                 return <alloc region="{string($region)}" state="{string($state)}">
                          {$budget * sum($amounts) div $regional}
                        </alloc>"#,
        )
        .unwrap();
    let out = serialize_sequence(&q.run(&ctx).unwrap());
    assert_eq!(
        out,
        "<alloc region=\"East\" state=\"NY\">1000</alloc>\
         <alloc region=\"West\" state=\"CA\">600</alloc>\
         <alloc region=\"West\" state=\"OR\">400</alloc>"
    );
}
