//! Property-style tests of the core invariants, driven through the
//! whole stack (parser → compiler → evaluator) with deterministically
//! generated inputs (`xqa_workload::DetRng`; every run checks the same
//! cases).

use std::collections::HashMap;
use xqa::{run_query, run_query_items};
use xqa_workload::DetRng;

const CASES: usize = 64;

/// Build `<r><v>..</v>...</r>` from a list of small integers.
fn values_doc(values: &[u8]) -> String {
    let items: String = values.iter().map(|v| format!("<v>{v}</v>")).collect();
    format!("<r>{items}</r>")
}

/// A vec of `len in [min_len, max_len)` draws from `0..domain`.
fn gen_values(rng: &mut DetRng, domain: u8, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(0..domain)).collect()
}

/// `group by` forms a partition: every input lands in exactly one
/// group, group sizes sum to the input size, and the number of groups
/// equals the number of distinct key values.
#[test]
fn groupby_partitions_input() {
    let mut rng = DetRng::seed_from_u64(101);
    for _ in 0..CASES {
        let values = gen_values(&mut rng, 6, 0, 60);
        let xml = values_doc(&values);
        let out = run_query(
            "for $v in //v group by string($v) into $k nest $v into $vs \
             return <g k=\"{$k}\" n=\"{count($vs)}\"/>",
            &xml,
        )
        .unwrap();
        // Parse the tiny output back.
        let mut seen: Vec<(String, usize)> = Vec::new();
        for part in out.split("/>").filter(|p| !p.is_empty()) {
            let k = part
                .split("k=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string();
            let n: usize = part
                .split("n=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            seen.push((k, n));
        }
        // Expected: counts per distinct value, in first-appearance order.
        let mut expected: Vec<(String, usize)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for v in &values {
            let key = v.to_string();
            match index.get(&key) {
                Some(&i) => expected[i].1 += 1,
                None => {
                    index.insert(key.clone(), expected.len());
                    expected.push((key, 1));
                }
            }
        }
        assert_eq!(seen, expected);
    }
}

/// The cardinality law of §3.1: |output| <= |input| for group by.
#[test]
fn groupby_output_not_larger_than_input() {
    let mut rng = DetRng::seed_from_u64(102);
    for _ in 0..CASES {
        let values = gen_values(&mut rng, 4, 1, 40);
        let xml = values_doc(&values);
        let groups: usize = run_query(
            "count(for $v in //v group by $v mod 2 into $k return <g/>)",
            &xml,
        )
        .unwrap()
        .parse()
        .unwrap();
        assert!(groups <= values.len());
        assert!(groups >= 1);
    }
}

/// `order by` produces a sorted permutation; stability preserves
/// binding order among equal keys.
#[test]
fn order_by_sorts_stably() {
    let mut rng = DetRng::seed_from_u64(103);
    for _ in 0..CASES {
        let len = rng.gen_range(0..50usize);
        let values: Vec<i64> = (0..len).map(|_| rng.gen_range(-50..50i64)).collect();
        let xml = {
            let items: String = values
                .iter()
                .enumerate()
                .map(|(i, v)| format!("<v i=\"{i}\">{v}</v>"))
                .collect();
            format!("<r>{items}</r>")
        };
        let out = run_query(
            "for $v in //v order by number($v) return concat(string($v/@i), \":\", string($v))",
            &xml,
        )
        .unwrap();
        let got: Vec<(usize, i64)> = out
            .split_whitespace()
            .map(|p| {
                let (i, v) = p.split_once(':').unwrap();
                (i.parse().unwrap(), v.parse().unwrap())
            })
            .collect();
        let mut expected: Vec<(usize, i64)> = values.iter().copied().enumerate().collect();
        expected.sort_by_key(|&(_, v)| v); // stable
        assert_eq!(got, expected);
    }
}

/// `return at $rank` yields exactly 1..=n.
#[test]
fn return_at_numbers_output() {
    let mut rng = DetRng::seed_from_u64(104);
    for _ in 0..CASES {
        let values = gen_values(&mut rng, 100, 0, 40);
        let xml = values_doc(&values);
        let out = run_query(
            "for $v in //v order by number($v) descending return at $r $r",
            &xml,
        )
        .unwrap();
        let got: Vec<usize> = out.split_whitespace().map(|s| s.parse().unwrap()).collect();
        assert_eq!(got, (1..=values.len()).collect::<Vec<_>>());
    }
}

/// `distinct-values` agrees with a Rust set, preserving first
/// appearance order.
#[test]
fn distinct_values_matches_reference() {
    let mut rng = DetRng::seed_from_u64(105);
    for _ in 0..CASES {
        let values = gen_values(&mut rng, 10, 0, 60);
        let xml = values_doc(&values);
        let out = run_query("distinct-values(//v)", &xml).unwrap();
        let got: Vec<String> = out.split_whitespace().map(str::to_string).collect();
        let mut expected: Vec<String> = Vec::new();
        for v in &values {
            let s = v.to_string();
            if !expected.contains(&s) {
                expected.push(s);
            }
        }
        assert_eq!(got, expected);
    }
}

/// sum/count/avg consistency: avg = sum div count on non-empty input.
#[test]
fn aggregate_consistency() {
    let mut rng = DetRng::seed_from_u64(106);
    for _ in 0..CASES {
        let values = gen_values(&mut rng, 255, 1, 50);
        let xml = values_doc(&values);
        let consistent = run_query(
            "let $v := //v return (avg($v) = sum($v) div count($v))",
            &xml,
        )
        .unwrap();
        assert_eq!(consistent, "true");
    }
}

/// `nest ... order by` emits each group's values sorted.
#[test]
fn nest_order_by_sorts_within_groups() {
    let mut rng = DetRng::seed_from_u64(107);
    for _ in 0..CASES {
        let len = rng.gen_range(1..40usize);
        let values: Vec<(u8, u8)> = (0..len)
            .map(|_| (rng.gen_range(0..3u8), rng.gen_range(0..100u8)))
            .collect();
        let items: String = values
            .iter()
            .map(|(g, v)| format!("<s><g>{g}</g><t>{v}</t></s>"))
            .collect();
        let xml = format!("<r>{items}</r>");
        let out = run_query(
            "for $s in //s group by $s/g into $g \
             nest $s/t order by number($s/t) into $ts \
             return <grp>{string-join(for $t in $ts return string($t), \",\")}</grp>",
            &xml,
        )
        .unwrap();
        for grp in out.split("</grp>").filter(|g| !g.is_empty()) {
            let body = grp.trim_start_matches("<grp>");
            if body.is_empty() {
                continue;
            }
            let ts: Vec<i64> = body.split(',').map(|t| t.parse().unwrap()).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "unsorted nest: {ts:?}");
        }
    }
}

/// Grouping by a two-part key equals grouping by the pair in Rust.
#[test]
fn two_key_grouping_matches_reference() {
    let mut rng = DetRng::seed_from_u64(108);
    for _ in 0..CASES {
        let len = rng.gen_range(0..50usize);
        let values: Vec<(u8, u8)> = (0..len)
            .map(|_| (rng.gen_range(0..3u8), rng.gen_range(0..3u8)))
            .collect();
        let items: String = values
            .iter()
            .map(|(a, b)| format!("<s><a>{a}</a><b>{b}</b></s>"))
            .collect();
        let xml = format!("<r>{items}</r>");
        let groups: usize = run_query(
            "count(for $s in //s group by $s/a into $a, $s/b into $b return <g/>)",
            &xml,
        )
        .unwrap()
        .parse()
        .unwrap();
        let expected: std::collections::HashSet<(u8, u8)> = values.iter().copied().collect();
        assert_eq!(groups, expected.len());
    }
}

/// The Table-1 equivalence holds for arbitrary seeds: the old-syntax
/// Q and the explicit Qgb produce identical group/count results.
#[test]
fn q_vs_qgb_equivalence() {
    for seed in [0u64, 7, 42, 99, 123, 500, 777, 999] {
        let doc = xqa_workload::generate_orders(&xqa_workload::OrdersConfig {
            orders: 25,
            seed,
            ..Default::default()
        });
        let run = |q: &str| {
            let engine = xqa::Engine::new();
            let compiled = engine.compile(q).unwrap();
            let mut ctx = xqa::DynamicContext::new();
            ctx.set_context_document(&doc);
            xqa::serialize_sequence(&compiled.run(&ctx).unwrap())
        };
        let qgb = run("for $litem in //order/lineitem \
             group by $litem/shipmode into $a nest $litem into $items \
             order by $a return <r>{string($a)}|{count($items)}</r>");
        let q = run("for $a in distinct-values(//order/lineitem/shipmode) \
             let $items := for $i in //order/lineitem where $i/shipmode = $a return $i \
             order by $a return <r>{$a}|{count($items)}</r>");
        assert_eq!(qgb, q);
    }
}

/// Constructed elements round-trip through the parser.
#[test]
fn constructor_serialization_roundtrip() {
    let mut rng = DetRng::seed_from_u64(109);
    for _ in 0..CASES {
        let values = gen_values(&mut rng, 100, 0, 20);
        let xml = values_doc(&values);
        let items = run_query_items("<snapshot>{//v}</snapshot>", &xml).unwrap();
        let serialized = xqa::serialize_sequence(&items);
        let reparsed = xqa::parse_document(&serialized).unwrap();
        let engine = xqa::Engine::new();
        let mut ctx = xqa::DynamicContext::new();
        ctx.set_context_document(&reparsed);
        let count = engine.compile("count(//v)").unwrap().run(&ctx).unwrap();
        assert_eq!(count[0].string_value(), values.len().to_string());
    }
}

/// Arbitrary printable garbage: the lexer/parser and the XML parser
/// return errors rather than panicking.
#[test]
fn parsers_never_panic() {
    let mut rng = DetRng::seed_from_u64(110);
    // Printable ASCII plus the delimiters both grammars care about.
    let alphabet: Vec<char> = (0x20u8..0x7F)
        .map(|b| b as char)
        .chain(['\n', '\t', '€', 'λ'])
        .collect();
    for _ in 0..CASES {
        let len = rng.gen_range(0..200usize);
        let input: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        let _ = xqa::frontend::parse_query(&input);
        let _ = xqa::parse_document(&input);
    }
}
