//! Dynamic-error parity between compiled expression programs and the
//! IR tree-walker. A lowered program must raise exactly the error the
//! tree-walker raises — same code, same message, and under parallel
//! execution the same first-failing-tuple selection — because programs
//! call the evaluator's own scalar kernels rather than reimplementing
//! their semantics.

use xqa::{DynamicContext, Engine, EngineOptions, ExprEvalMode};

/// Runs `query` under every mode × thread combination; every run must
/// fail, all failures must render identically, and the message must
/// mention `expect` (an error code or message fragment).
fn assert_error_parity(query: &str, expect: &str) {
    let ctx = DynamicContext::new();
    let mut errors: Vec<(String, String)> = Vec::new();
    for threads in [1usize, 4] {
        for mode in [ExprEvalMode::Bytecode, ExprEvalMode::Tree] {
            let engine = Engine::with_options(EngineOptions {
                threads,
                expr_eval: mode,
                ..Default::default()
            });
            let err = engine
                .compile(query)
                .unwrap_or_else(|e| panic!("compile ({mode:?}, threads={threads}): {e}\n{query}"))
                .run(&ctx)
                .expect_err("query must raise a dynamic error");
            errors.push((format!("{mode:?} threads={threads}"), err.to_string()));
        }
    }
    let (baseline_label, baseline) = &errors[0];
    assert!(
        baseline.contains(expect),
        "expected error mentioning {expect:?}, got: {baseline}\n{query}"
    );
    for (label, err) in &errors[1..] {
        assert_eq!(
            baseline, err,
            "{baseline_label} and {label} raise different errors for:\n{query}"
        );
    }
}

#[test]
fn arith_type_error_parity() {
    assert_error_parity(
        "for $x in 1 to 100 let $y := $x + \"a\" return $y",
        "XPTY0004",
    );
}

#[test]
fn division_by_zero_parity() {
    assert_error_parity(
        "for $x in 1 to 100 let $y := $x idiv ($x - $x) return $y",
        "integer division by zero",
    );
}

#[test]
fn modulus_by_zero_parity() {
    assert_error_parity(
        "for $x in 1 to 100 where $x mod ($x - $x) = 0 return $x",
        "modulus by zero",
    );
}

#[test]
fn integer_overflow_parity() {
    assert_error_parity(
        "for $x in 1 to 10 let $y := 9223372036854775807 + $x return $y",
        "integer overflow",
    );
}

#[test]
fn cast_failure_parity() {
    // The `for` binding is a literal sequence (lowering declines), but
    // the failing cast sits in a lowered `let` program: the error
    // fires at the third tuple in both evaluators.
    assert_error_parity(
        "for $s in (\"1\", \"2\", \"x\") let $n := $s cast as xs:integer return $n",
        "cannot cast",
    );
}

#[test]
fn empty_cast_without_optional_parity() {
    assert_error_parity(
        "for $x in 1 to 3 let $e := () cast as xs:integer return $e",
        "cast of an empty sequence",
    );
}

#[test]
fn comparison_type_error_parity() {
    assert_error_parity("for $x in 1 to 50 where $x eq \"a\" return $x", "XPTY0004");
}

/// Multi-morsel input where two different tuples raise two *different*
/// errors: the serial scan hits the division at $x = 1200 before the
/// type error at $x = 2500, so every combination — including parallel
/// bytecode, where workers race over morsels — must surface the
/// division error, proving first-failing-morsel selection is preserved
/// through compiled programs.
#[test]
fn first_failing_morsel_parity() {
    assert_error_parity(
        "for $x in 1 to 4000 \
         let $y := if ($x = 1200) then $x idiv ($x - $x) \
                   else if ($x = 2500) then $x + \"a\" \
                   else $x \
         return $y",
        "integer division by zero",
    );
}

/// The same shape with only the later (type) error left in place:
/// proves the harness above really can observe the other error, so the
/// first-failing-morsel assertion is not vacuous.
#[test]
fn later_morsel_error_surfaces_when_alone() {
    assert_error_parity(
        "for $x in 1 to 4000 \
         let $y := if ($x = 2500) then $x + \"a\" else $x \
         return $y",
        "XPTY0004",
    );
}
