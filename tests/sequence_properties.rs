//! Property-style equivalence tests for the copy-on-write `Sequence`
//! representation: whatever mix of variants (`Empty` / `One` / `Many`)
//! and construction routes (`From<Vec<Item>>`, `from_slice`, a
//! `SequenceBuilder` fed random push/append/extend splits) produces a
//! value, its observable semantics must match the old `Vec<Item>`
//! representation item for item — ordering, node identity, atomization,
//! `fn:deep-equal`, and effective boolean value.
//!
//! Deterministically driven (`xqa_workload::DetRng`, std-only): every
//! run checks the same cases.

use xqa::run_query_items;
use xqa::xdm::{
    atomize_sequence, deep_equal, effective_boolean_value, AtomicValue, Item, Sequence,
    SequenceBuilder,
};
use xqa_workload::DetRng;

const CASES: usize = 128;

/// A random atomic item drawn from a small mixed domain.
fn gen_atomic(rng: &mut DetRng) -> Item {
    match rng.gen_range(0..4u32) {
        0 => Item::from(rng.gen_range(-5i64..50)),
        1 => Item::from(format!("s{}", rng.gen_range(0..9u32)).as_str()),
        2 => Item::from(rng.gen_range(0..2u32) == 1),
        _ => Item::Atomic(AtomicValue::Double(rng.gen_range(0..100u32) as f64 / 4.0)),
    }
}

/// A pool of real document nodes to mix into generated sequences.
fn node_pool() -> Vec<Item> {
    let seq = run_query_items("//v", "<r><v>1</v><v>2</v><v>3</v><v>4</v><v>5</v></r>")
        .expect("node pool query");
    seq.iter().cloned().collect()
}

/// A random item vector of `len in [0, max_len)`, atomics and nodes.
fn gen_items(rng: &mut DetRng, nodes: &[Item], max_len: usize) -> Vec<Item> {
    let len = rng.gen_range(0..max_len);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.3) {
                nodes[rng.gen_range(0..nodes.len())].clone()
            } else {
                gen_atomic(rng)
            }
        })
        .collect()
}

/// Build the same item list through a `SequenceBuilder` using a random
/// split into push / append(sub-sequence) / extend_from_slice calls.
fn build_via_builder(rng: &mut DetRng, items: &[Item]) -> Sequence {
    let mut b = SequenceBuilder::new();
    let mut i = 0;
    while i < items.len() {
        let chunk = rng.gen_range(1..4usize).min(items.len() - i);
        match rng.gen_range(0..3u32) {
            0 => {
                for item in &items[i..i + chunk] {
                    b.push(item.clone());
                }
            }
            1 => b.append(Sequence::from(items[i..i + chunk].to_vec())),
            _ => b.extend_from_slice(&items[i..i + chunk]),
        }
        i += chunk;
    }
    b.build()
}

/// Every construction route for the same items, paired with its name.
fn all_routes(rng: &mut DetRng, items: &[Item]) -> Vec<(&'static str, Sequence)> {
    vec![
        ("From<Vec>", Sequence::from(items.to_vec())),
        ("from_slice", Sequence::from_slice(items)),
        ("builder", build_via_builder(rng, items)),
        ("collected", items.iter().cloned().collect()),
    ]
}

/// EBV results compared as `Result<bool, code>` so error cases (a
/// multi-item sequence led by an atomic) must match too.
fn ebv_key(items: &[Item]) -> Result<bool, String> {
    effective_boolean_value(items).map_err(|e| e.code.to_string())
}

#[test]
fn every_route_matches_vec_ordering() {
    let nodes = node_pool();
    let mut rng = DetRng::seed_from_u64(7);
    for _ in 0..CASES {
        let items = gen_items(&mut rng, &nodes, 12);
        for (route, seq) in all_routes(&mut rng, &items) {
            assert_eq!(seq.len(), items.len(), "{route}: length");
            // Deref slice iteration, indexing, and the owning iterator
            // must all agree with the vector's order.
            for (i, item) in seq.iter().enumerate() {
                assert!(
                    deep_equal(std::slice::from_ref(item), std::slice::from_ref(&items[i])),
                    "{route}: item {i} differs"
                );
            }
            let owned: Vec<Item> = seq.clone().into_iter().collect();
            assert!(deep_equal(&owned, &items), "{route}: into_iter order");
        }
    }
}

#[test]
fn node_identity_survives_sharing() {
    let nodes = node_pool();
    let mut rng = DetRng::seed_from_u64(11);
    for _ in 0..CASES {
        let items = gen_items(&mut rng, &nodes, 10);
        for (route, seq) in all_routes(&mut rng, &items) {
            // A clone shares (or copies) the backing storage; either
            // way the *nodes* must stay the same identity, never deep
            // copies of the tree.
            let cloned = seq.clone();
            for (a, b) in items.iter().zip(cloned.iter()) {
                if let (Item::Node(x), Item::Node(y)) = (a, b) {
                    assert!(x.is_same_node(y), "{route}: node identity lost");
                }
            }
        }
    }
}

#[test]
fn atomization_matches_vec_semantics() {
    let nodes = node_pool();
    let mut rng = DetRng::seed_from_u64(13);
    for _ in 0..CASES {
        let items = gen_items(&mut rng, &nodes, 10);
        let expected = atomize_sequence(&items);
        for (route, seq) in all_routes(&mut rng, &items) {
            let atomized = atomize_sequence(&seq);
            assert!(
                deep_equal(&atomized, &expected),
                "{route}: atomization differs"
            );
        }
    }
}

#[test]
fn deep_equal_across_variants_and_clones() {
    let nodes = node_pool();
    let mut rng = DetRng::seed_from_u64(17);
    for _ in 0..CASES {
        let items = gen_items(&mut rng, &nodes, 10);
        let routes = all_routes(&mut rng, &items);
        for (route, seq) in &routes {
            assert!(deep_equal(seq, &items), "{route}: != source vec");
            assert!(deep_equal(&seq.clone(), &items), "{route}: clone differs");
        }
        // Pairwise: every route agrees with every other.
        for (ra, a) in &routes {
            for (rb, b) in &routes {
                assert!(deep_equal(a, b), "{ra} != {rb}");
            }
        }
        // And a perturbed vector must NOT compare deep-equal.
        if !items.is_empty() {
            let mut other = items.clone();
            other.push(Item::from("sentinel"));
            assert!(!deep_equal(&routes[0].1, &other), "length must matter");
        }
    }
}

#[test]
fn effective_boolean_value_matches_vec_semantics() {
    let nodes = node_pool();
    let mut rng = DetRng::seed_from_u64(19);
    for _ in 0..CASES {
        let items = gen_items(&mut rng, &nodes, 6);
        let expected = ebv_key(&items);
        for (route, seq) in all_routes(&mut rng, &items) {
            assert_eq!(ebv_key(&seq), expected, "{route}: EBV differs");
        }
    }
    // The three canonical shapes, explicitly.
    assert_eq!(ebv_key(&Sequence::Empty), Ok(false));
    assert_eq!(ebv_key(&Sequence::one(Item::from(true))), Ok(true));
    assert_eq!(ebv_key(&Sequence::one(Item::from(""))), Ok(false));
}

#[test]
fn builder_matches_vec_concatenation() {
    let nodes = node_pool();
    let mut rng = DetRng::seed_from_u64(23);
    for _ in 0..CASES {
        // The same random op stream applied to a builder and a Vec.
        let mut b = SequenceBuilder::new();
        let mut expected: Vec<Item> = Vec::new();
        for _ in 0..rng.gen_range(0..8usize) {
            let chunk = gen_items(&mut rng, &nodes, 5);
            match rng.gen_range(0..3u32) {
                0 => {
                    for item in &chunk {
                        b.push(item.clone());
                    }
                }
                1 => b.append(Sequence::from(chunk.clone())),
                _ => b.extend_from_slice(&chunk),
            }
            expected.extend_from_slice(&chunk);
        }
        assert_eq!(b.len(), expected.len());
        assert_eq!(b.is_empty(), expected.is_empty());
        let seq = b.build();
        assert!(deep_equal(&seq, &expected), "builder != vec concat");
        // Normalization invariant: the variant matches the length.
        match (&seq, expected.len()) {
            (Sequence::Empty, 0) | (Sequence::One(_), 1) => {}
            (Sequence::Many(_), n) if n >= 2 => {}
            (other, n) => panic!("unnormalized variant {other:?} for len {n}"),
        }
    }
}
