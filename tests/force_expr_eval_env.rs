//! `XQA_FORCE_EXPR_EVAL` overrides the engine's configured expression
//! evaluation mode at plan time. Lives in its own test binary: the
//! variable is process-global, so this is the only test in the process
//! that sets it (serially, for each value).

use xqa::{DynamicContext, Engine, EngineOptions, ExprEvalMode};

/// Runs a fully-lowerable query and reports how many compiled-program
/// evaluations it executed.
fn compiled_evals(engine: &Engine, ctx: &DynamicContext, query: &str) -> u64 {
    let before = ctx.stats.snapshot();
    let out = engine
        .compile(query)
        .expect("compile")
        .run(ctx)
        .expect("run");
    assert_eq!(out[0].string_value(), "3", "query result drifted");
    ctx.stats.snapshot().expr_compiled - before.expr_compiled
}

#[test]
fn env_override_wins_over_engine_options() {
    let ctx = DynamicContext::new();
    let query = "for $x in 1 to 9 where $x mod 3 = 0 return $x";
    let forced_bytecode = Engine::with_options(EngineOptions {
        expr_eval: ExprEvalMode::Bytecode,
        ..Default::default()
    });
    let auto = Engine::with_options(EngineOptions::default());

    // Baseline (no override): both engines compile the scalar clauses.
    assert!(compiled_evals(&forced_bytecode, &ctx, query) > 0);
    assert!(compiled_evals(&auto, &ctx, query) > 0);

    // tree override beats even an explicit Bytecode option.
    std::env::set_var("XQA_FORCE_EXPR_EVAL", "tree");
    assert_eq!(compiled_evals(&forced_bytecode, &ctx, query), 0);
    assert_eq!(compiled_evals(&auto, &ctx, query), 0);

    // bytecode override restores compilation under default options.
    std::env::set_var("XQA_FORCE_EXPR_EVAL", "bytecode");
    assert!(compiled_evals(&auto, &ctx, query) > 0);

    // Unknown values are ignored, not errors.
    std::env::set_var("XQA_FORCE_EXPR_EVAL", "bogus");
    assert!(compiled_evals(&auto, &ctx, query) > 0);
    std::env::remove_var("XQA_FORCE_EXPR_EVAL");
}
