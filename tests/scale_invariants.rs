//! Cross-query invariants at larger scale: different formulations of
//! the same analytics must agree on generated workloads, and grouping
//! laws must hold at realistic sizes.

use std::collections::HashMap;
use xqa::{serialize_sequence, DynamicContext, Engine};
use xqa_workload::{
    generate_bib, generate_orders, generate_sales, BibConfig, OrdersConfig, SalesConfig,
};

fn run_doc(query: &str, doc: &std::sync::Arc<xqa::xdm::Document>) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile: {e}\n{query}"));
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(doc);
    serialize_sequence(
        &compiled
            .run(&ctx)
            .unwrap_or_else(|e| panic!("run: {e}\n{query}")),
    )
}

#[test]
fn group_sizes_sum_to_input_size() {
    let doc = generate_orders(&OrdersConfig {
        orders: 400,
        ..Default::default()
    });
    let total: i64 = run_doc("count(//order/lineitem)", &doc).parse().unwrap();
    for key in ["shipmode", "shipinstruct", "tax", "quantity"] {
        let sizes = run_doc(
            &format!(
                "for $li in //order/lineitem group by $li/{key} into $k \
                 nest $li into $items return count($items)"
            ),
            &doc,
        );
        let sum: i64 = sizes
            .split_whitespace()
            .map(|s| s.parse::<i64>().unwrap())
            .sum();
        assert_eq!(sum, total, "partition law for {key}");
    }
}

#[test]
fn two_level_grouping_refines_one_level() {
    // Every (a, b) group nests inside its (a) group; per-a sums agree.
    let doc = generate_orders(&OrdersConfig {
        orders: 300,
        ..Default::default()
    });
    let one = run_doc(
        "for $li in //order/lineitem group by string($li/shipinstruct) into $a \
         nest $li into $items order by $a return <g a=\"{$a}\">{count($items)}</g>",
        &doc,
    );
    let two = run_doc(
        "for $li in //order/lineitem \
         group by string($li/shipinstruct) into $a, string($li/shipmode) into $b \
         nest $li into $items order by $a, $b \
         return <g a=\"{$a}\">{count($items)}</g>",
        &doc,
    );
    let collect = |s: &str| -> HashMap<String, i64> {
        let mut m = HashMap::new();
        for part in s.split("</g>").filter(|p| !p.is_empty()) {
            let a = part
                .split("a=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string();
            let n: i64 = part.split('>').nth(1).unwrap().parse().unwrap();
            *m.entry(a).or_insert(0) += n;
        }
        m
    };
    assert_eq!(collect(&one), collect(&two));
}

#[test]
fn group_count_equals_distinct_values_count_for_scalar_keys() {
    let doc = generate_sales(&SalesConfig {
        sales: 3_000,
        ..Default::default()
    });
    for key in ["region", "state", "product"] {
        let distinct: i64 = run_doc(&format!("count(distinct-values(//sale/{key}))"), &doc)
            .parse()
            .unwrap();
        let groups: i64 = run_doc(
            &format!("count(for $s in //sale group by string($s/{key}) into $k return <g/>)"),
            &doc,
        )
        .parse()
        .unwrap();
        assert_eq!(groups, distinct, "key {key}");
    }
}

#[test]
fn hierarchical_sums_are_consistent() {
    // Sum over states within a region == region total (paper Q3's
    // internal consistency), for every region and year.
    let doc = generate_sales(&SalesConfig {
        sales: 2_000,
        ..Default::default()
    });
    let out = run_doc(
        "for $s in //sale \
         group by $s/region into $region, year-from-dateTime($s/timestamp) into $year \
         nest $s into $rs \
         let $rsum := sum($rs/(quantity * price)) \
         order by $year, $region \
         return <r> \
           {round-half-to-even($rsum, 2)} | \
           {round-half-to-even(sum(for $t in $rs \
             group by $t/state into $state \
             nest $t/quantity * $t/price into $amts \
             return sum($amts)), 2)} \
         </r>",
        &doc,
    );
    for row in out.split("</r>").filter(|r| !r.is_empty()) {
        let body = row.trim_start_matches("<r>").trim();
        let (region_total, state_sum) = body.split_once('|').expect("two numbers");
        assert_eq!(region_total.trim(), state_sum.trim(), "row {body}");
    }
}

#[test]
fn ranking_is_consistent_with_max() {
    // The rank-1 row of Q10's inner query must be the max total.
    let doc = generate_sales(&SalesConfig {
        sales: 1_500,
        ..Default::default()
    });
    let top = run_doc(
        "for $s in //sale \
         group by $s/region into $region \
         nest $s/quantity * $s/price into $amounts \
         let $sum := sum($amounts) \
         order by $sum descending \
         return at $rank (if ($rank = 1) then round-half-to-even($sum, 2) else ())",
        &doc,
    );
    let max = run_doc(
        "round-half-to-even(max(for $s in //sale \
           group by $s/region into $region \
           nest $s/quantity * $s/price into $amounts \
           return sum($amounts)), 2)",
        &doc,
    );
    assert_eq!(top, max);
}

#[test]
fn moving_sum_extension_agrees_with_window_clause_at_scale() {
    let doc = generate_sales(&SalesConfig {
        sales: 600,
        ..Default::default()
    });
    let via_windows = run_doc(
        "for $s in //sale \
         group by $s/region into $region \
         nest $s/quantity order by $s/timestamp into $qs \
         order by $region \
         return <r>{for sliding window $w in $qs \
                    start at $st when true() \
                    end at $e when $e - $st = 4 \
                    return sum($w)}</r>",
        &doc,
    );
    let via_extension = run_doc(
        "for $s in //sale \
         group by $s/region into $region \
         nest $s/quantity order by $s/timestamp into $qs \
         order by $region \
         return <r>{for $v at $i in xqa:moving-sum($qs, 5) \
                    return xs:integer($v)}</r>",
        &doc,
    );
    // moving-sum yields a value per position (windows *ending* at i);
    // the sliding window yields one per start. Compare the stable core:
    // totals of full windows == moving sums from position 5 onward.
    let windows: Vec<Vec<i64>> = via_windows
        .split("</r>")
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim_start_matches("<r>")
                .split_whitespace()
                .map(|v| v.parse().unwrap())
                .collect()
        })
        .collect();
    let moving: Vec<Vec<i64>> = via_extension
        .split("</r>")
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim_start_matches("<r>")
                .split_whitespace()
                .map(|v| v.parse().unwrap())
                .collect()
        })
        .collect();
    assert_eq!(windows.len(), moving.len());
    for (w, m) in windows.iter().zip(&moving) {
        if m.len() >= 5 {
            let full = &m[4..];
            assert_eq!(&w[..full.len()], full, "full windows agree");
        }
    }
}

#[test]
fn rollup_child_categories_never_exceed_parents() {
    // In the Q11 rollup, a child path's book count can't exceed its
    // parent's (every book in software/db is in software).
    let doc = generate_bib(&BibConfig {
        books: 600,
        with_categories: true,
        ..Default::default()
    });
    let out = run_doc(
        "for $b in //book \
         for $c in xqa:paths($b/categories/*) \
         group by $c into $cat \
         nest $b into $books \
         order by $cat \
         return <r path=\"{$cat}\">{count($books)}</r>",
        &doc,
    );
    let mut counts: HashMap<String, i64> = HashMap::new();
    for row in out.split("</r>").filter(|p| !p.is_empty()) {
        let path = row
            .split("path=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .to_string();
        let n: i64 = row.split('>').nth(1).unwrap().parse().unwrap();
        counts.insert(path, n);
    }
    assert!(
        counts.len() > 3,
        "taxonomy produced several paths: {counts:?}"
    );
    for (path, &n) in &counts {
        if let Some((parent, _)) = path.rsplit_once('/') {
            let parent_n = counts.get(parent).copied().unwrap_or(0);
            assert!(
                parent_n >= n,
                "child {path} ({n}) exceeds parent {parent} ({parent_n})"
            );
        }
    }
}
