//! `return at $rank` under the streaming pipeline: interaction with
//! post-group `let`/`where`, ordered nests, the top-k pushdown, and the
//! empty-input / single-group edge cases. Unlike the differential
//! suite, these assert exact outputs.

use xqa::{DynamicContext, Engine};

fn run(query: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile: {e}\n{query}"));
    let ctx = DynamicContext::new();
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run: {e}\n{query}"));
    xqa::serialize_sequence(&result)
}

#[test]
fn rank_after_post_group_let_and_where() {
    // Groups: a=3, b=2, c=1; the where prunes c, so ranks renumber
    // over the surviving groups only.
    let out = run("for $s in (\"a\", \"b\", \"a\", \"c\", \"b\", \"a\") \
         group by $s into $k \
         nest $s into $items \
         let $n := count($items) \
         where $n ge 2 \
         order by $n descending, string($k) \
         return at $r <g rank=\"{$r}\">{string($k)}:{$n}</g>");
    assert_eq!(out, "<g rank=\"1\">a:3</g><g rank=\"2\">b:2</g>");
}

#[test]
fn rank_with_ordered_nest() {
    // The nest is sorted per group; the rank numbers the groups.
    let out = run("for $x in (5, 3, 8, 1, 6) \
         group by ($x mod 2) into $k \
         nest $x order by $x into $xs \
         order by string($k) \
         return at $r <g r=\"{$r}\">{$xs}</g>");
    assert_eq!(out, "<g r=\"1\">6 8</g><g r=\"2\">1 3 5</g>");
}

#[test]
fn rank_renumbers_after_where() {
    let out = run("for $x in (10, 20, 30, 40) where $x gt 15 return at $r $r");
    assert_eq!(out, "1 2 3");
}

#[test]
fn rank_with_window_clause() {
    let out = run("for tumbling window $w in (1 to 7) \
         start at $s when $s mod 3 = 1 \
         return at $r <w r=\"{$r}\">{sum($w)}</w>");
    assert_eq!(out, "<w r=\"1\">6</w><w r=\"2\">15</w><w r=\"3\">7</w>");
}

#[test]
fn rank_empty_input() {
    assert_eq!(run("for $x in () order by $x return at $r $r"), "");
    assert_eq!(
        run("for $x in () \
             group by $x into $k nest $x into $xs \
             order by string($k) \
             return at $r <g>{$r}</g>"),
        ""
    );
}

#[test]
fn rank_single_group() {
    // All tuples collapse into one group: exactly one rank, 1.
    let out = run("for $x in (7, 7, 7) \
         group by $x into $k \
         nest $x into $xs \
         order by $k \
         return at $r <g r=\"{$r}\">{count($xs)}</g>");
    assert_eq!(out, "<g r=\"1\">3</g>");
}

#[test]
fn topk_pushdown_on_grouped_rank() {
    // Residues 1..9 sum to 10r + 450; residue 0 sums to 550. The top 3
    // group sums descending are residues 0, 9, 8.
    let query = "(for $x in 1 to 100 \
         group by ($x mod 10) into $k \
         nest $x into $xs \
         order by sum($xs) descending \
         return at $r <t>{$r}:{string($k)}</t>)[position() le 3]";
    let compiled = Engine::new().compile(query).expect("compiles");
    assert!(
        compiled
            .applied_rewrites()
            .iter()
            .any(|r| r.contains("top-k pushdown")),
        "rewrites: {:?}",
        compiled.applied_rewrites()
    );
    assert!(
        compiled.explain().contains("OrderBy(limit=3) [heap]"),
        "explain:\n{}",
        compiled.explain()
    );
    let out = xqa::serialize_sequence(&compiled.run(&DynamicContext::new()).expect("runs"));
    assert_eq!(out, "<t>1:0</t><t>2:9</t><t>3:8</t>");
}

#[test]
fn topk_bound_larger_than_input() {
    let out = run(
        "(for $x in (3, 1, 2) order by $x return at $r <v>{$r}:{$x}</v>)\
         [position() le 10]",
    );
    assert_eq!(out, "<v>1:1</v><v>2:2</v><v>3:3</v>");
}

#[test]
fn topk_zero_bound() {
    let out = run(
        "(for $x in 1 to 20 order by $x descending return at $r <v>{$r}</v>)\
         [position() lt 1]",
    );
    assert_eq!(out, "");
}

#[test]
fn rank_stats_count_pruned_tuples() {
    // 20 inputs through a 5-slot heap: 15 tuples never leave the
    // order-by, and the stats say so.
    let query = "(for $x in 1 to 20 order by $x return at $r <v>{$x}</v>)\
         [position() le 5]";
    let compiled = Engine::new().compile(query).expect("compiles");
    let ctx = DynamicContext::new();
    compiled.run(&ctx).expect("runs");
    let stats = ctx.stats.snapshot();
    assert_eq!(stats.tuples_produced, 20);
    assert_eq!(stats.tuples_pruned_topk, 15);
}
