//! Integration tests: every example query of the paper (Q1–Q12),
//! in both the XQuery-1.0 formulation the paper criticizes and the
//! proposed extended syntax, checked against the paper's own example
//! instances and against generated workloads.

use xqa::{parse_document, serialize_sequence, DynamicContext, Engine};
use xqa_workload::{bib, sales, BibConfig, SalesConfig};

fn run_doc(query: &str, doc: &std::sync::Arc<xqa::xdm::Document>) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile: {e}\n{query}"));
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(doc);
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run: {e}\n{query}"));
    serialize_sequence(&result)
}

fn run_xml(query: &str, xml: &str) -> String {
    run_doc(query, &parse_document(xml).expect("well-formed"))
}

/// A small bibliography shaped exactly like Figure 1: Morgan Kaufmann
/// 1993 with net prices (65, 43, 57), Morgan Kaufmann 1995 with
/// (34, 75), Addison-Wesley 1993 with (48).
const FIGURE1_BIB: &str = r#"<bib>
  <book><title>T1</title><publisher>Morgan Kaufmann</publisher><year>1993</year>
        <price>70.00</price><discount>5.00</discount></book>
  <book><title>T2</title><publisher>Morgan Kaufmann</publisher><year>1993</year>
        <price>45.00</price><discount>2.00</discount></book>
  <book><title>T3</title><publisher>Morgan Kaufmann</publisher><year>1993</year>
        <price>60.00</price><discount>3.00</discount></book>
  <book><title>T4</title><publisher>Morgan Kaufmann</publisher><year>1995</year>
        <price>36.00</price><discount>2.00</discount></book>
  <book><title>T5</title><publisher>Morgan Kaufmann</publisher><year>1995</year>
        <price>80.00</price><discount>5.00</discount></book>
  <book><title>T6</title><publisher>Addison-Wesley</publisher><year>1993</year>
        <price>50.00</price><discount>2.00</discount></book>
</bib>"#;

/// The paper's extended-syntax Q1.
const Q1_NEW: &str = r#"
    for $b in //book
    group by $b/publisher into $p, $b/year into $y
    nest $b/price - $b/discount into $netprices
    order by $p, $y
    return
      <group>
        {string($p), string($y)}
        <avg-net-price>{avg($netprices)}</avg-net-price>
      </group>"#;

/// The paper's Section-2 (XQuery 1.0) formulation of Q1.
const Q1_OLD: &str = r#"
    for $p in distinct-values(//book/publisher)
    for $y in distinct-values(//book/year)
    let $b := //book[publisher = $p and year = $y]
    where exists($b)
    order by $p, $y
    return
      <group>
        {$p, string($y)}
        <avg-net-price>{avg(for $x in $b return $x/price - $x/discount)}</avg-net-price>
      </group>"#;

#[test]
fn figure1_bindings_after_group_by() {
    // Figure 1: the tuple stream after group by in Q1 — three groups,
    // with exactly the nested net-price sequences of the figure.
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $p, $b/year into $y
           nest $b/price - $b/discount into $netprices
           order by $p, $y
           return <t p="{$p}" y="{$y}">{$netprices}</t>"#,
        FIGURE1_BIB,
    );
    assert_eq!(
        out,
        "<t p=\"Addison-Wesley\" y=\"1993\">48</t>\
         <t p=\"Morgan Kaufmann\" y=\"1993\">65 43 57</t>\
         <t p=\"Morgan Kaufmann\" y=\"1995\">34 75</t>"
    );
}

#[test]
fn q1_new_syntax_on_figure1_data() {
    let out = run_xml(Q1_NEW, FIGURE1_BIB);
    assert_eq!(
        out,
        "<group>Addison-Wesley 1993<avg-net-price>48</avg-net-price></group>\
         <group>Morgan Kaufmann 1993<avg-net-price>55</avg-net-price></group>\
         <group>Morgan Kaufmann 1995<avg-net-price>54.5</avg-net-price></group>"
    );
}

#[test]
fn q1_old_and_new_agree_when_all_books_have_publishers() {
    // The forms agree exactly when no book lacks a publisher/year
    // (the old form drops empty groups — the paper's §2 criticism).
    let doc = bib::generate(&BibConfig {
        books: 300,
        publisher_probability: 1.0,
        ..Default::default()
    });
    assert_eq!(run_doc(Q1_OLD, &doc), run_doc(Q1_NEW, &doc));
}

#[test]
fn q1_old_syntax_misses_publisherless_books() {
    // §2: "the problem of missing rows for books that do not have any
    // publishers" — the explicit form reports them, the old form cannot.
    let doc = bib::generate(&BibConfig {
        books: 300,
        publisher_probability: 0.85,
        ..Default::default()
    });
    let count_new = run_doc(
        "count(for $b in //book \
         group by $b/publisher into $p, $b/year into $y return <g/>)",
        &doc,
    );
    let count_old = run_doc(
        "count(for $p in distinct-values(//book/publisher) \
         for $y in distinct-values(//book/year) \
         let $b := //book[publisher = $p and year = $y] \
         where exists($b) return <g/>)",
        &doc,
    );
    let (count_new, count_old): (i64, i64) =
        (count_new.parse().unwrap(), count_old.parse().unwrap());
    assert!(
        count_new > count_old,
        "explicit grouping found {count_new} groups, old {count_old}"
    );
}

#[test]
fn q2_old_syntax_groups_per_individual_author() {
    // §2 Q2: one group per *individual* author value.
    let xml = r#"<bib>
      <book><author>Gray</author><author>Reuter</author><price>10.00</price></book>
      <book><author>Gray</author><price>30.00</price></book>
    </bib>"#;
    let out = run_xml(
        r#"for $a in distinct-values(//book/author)
           let $b := //book[author = $a]
           return <group>{$a}<avg-price>{avg($b/price)}</avg-price></group>"#,
        xml,
    );
    // Gray's group averages BOTH books (20); Reuter's only the first.
    assert_eq!(
        out,
        "<group>Gray<avg-price>20</avg-price></group>\
         <group>Reuter<avg-price>10</avg-price></group>"
    );
}

#[test]
fn q2a_new_syntax_groups_per_author_set() {
    // §3.3 Q2a: grouping by the author *sequence*.
    let xml = r#"<bib>
      <book><author>Gray</author><author>Reuter</author><price>10.00</price></book>
      <book><author>Gray</author><price>30.00</price></book>
    </bib>"#;
    let out = run_xml(
        r#"for $b in //book
           group by $b/author into $a
           nest $b/price into $prices
           return <group>{for $x in $a return string($x)}|{avg($prices)}</group>"#,
        xml,
    );
    assert_eq!(out, "<group>Gray Reuter|10</group><group>Gray|30</group>");
}

/// Sales data small enough to verify Q3 by hand.
const Q3_SALES: &str = r#"<sales>
  <sale><timestamp>2004-01-10T08:00:00</timestamp><product>Tea</product>
        <state>CA</state><region>West</region><quantity>10</quantity><price>2.00</price></sale>
  <sale><timestamp>2004-06-01T08:00:00</timestamp><product>Tea</product>
        <state>OR</state><region>West</region><quantity>4</quantity><price>5.00</price></sale>
  <sale><timestamp>2004-07-04T08:00:00</timestamp><product>Tea</product>
        <state>CA</state><region>West</region><quantity>2</quantity><price>10.00</price></sale>
  <sale><timestamp>2005-02-01T08:00:00</timestamp><product>Tea</product>
        <state>NY</state><region>East</region><quantity>3</quantity><price>4.00</price></sale>
  <sale><timestamp>2004-03-01T08:00:00</timestamp><product>Tea</product>
        <state>NY</state><region>East</region><quantity>5</quantity><price>2.00</price></sale>
</sales>"#;

/// The paper's §2 (old syntax) Q3.
const Q3_OLD: &str = r#"
    for $year in distinct-values(//sale/year-from-dateTime(timestamp))
    for $region in distinct-values(//sale/region)
    let $region-sales := //sale[region = $region and
                          year-from-dateTime(timestamp) = $year]
    let $region-sum := sum( $region-sales/(quantity * price) )
    for $state in distinct-values($region-sales/state)
    let $state-sales := $region-sales[state = $state]
    let $state-sum := sum( $state-sales/(quantity * price) )
    order by $year, $region, $state
    return <summary>
        <year>{ $year }</year>
        <region>{ string($region) }</region>
        <state>{ string($state) }</state>
        <state-sales>{ $state-sum }</state-sales>
        <region-sales>{ $region-sum }</region-sales>
        <state-percentage>{ $state-sum * 100 div $region-sum }</state-percentage>
    </summary>"#;

/// The paper's §3.1 (extended syntax) Q3.
const Q3_NEW: &str = r#"
    for $s in //sale
    group by $s/region into $region,
         year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    let $region-sum := sum( $region-sales/(quantity * price) )
    order by $year, $region
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s into $state-sales
      let $state-sum := sum( $state-sales/(quantity * price) )
      order by $state
      return <summary>
          <year>{ $year }</year>
          <region>{ string($region) }</region>
          <state>{ string($state) }</state>
          <state-sales>{ $state-sum }</state-sales>
          <region-sales>{ $region-sum }</region-sales>
          <state-percentage>{ $state-sum * 100 div $region-sum }</state-percentage>
      </summary>"#;

#[test]
fn q3_new_syntax_hand_checked() {
    let out = run_xml(Q3_NEW, Q3_SALES);
    // 2004 East: NY=10, region 10. 2004 West: CA=40, OR=20, region 60.
    // 2005 East: NY=12.
    assert!(
        out.starts_with(
            "<summary><year>2004</year><region>East</region><state>NY</state>\
         <state-sales>10</state-sales><region-sales>10</region-sales>\
         <state-percentage>100</state-percentage></summary>"
        ),
        "{out}"
    );
    assert!(out.contains(
        "<summary><year>2004</year><region>West</region><state>CA</state>\
         <state-sales>40</state-sales><region-sales>60</region-sales>"
    ));
    assert!(out.contains(
        "<summary><year>2004</year><region>West</region><state>OR</state>\
         <state-sales>20</state-sales>"
    ));
    assert!(
        out.ends_with(
            "<summary><year>2005</year><region>East</region><state>NY</state>\
         <state-sales>12</state-sales><region-sales>12</region-sales>\
         <state-percentage>100</state-percentage></summary>"
        ),
        "{out}"
    );
}

#[test]
fn q3_old_and_new_agree() {
    assert_eq!(run_xml(Q3_OLD, Q3_SALES), run_xml(Q3_NEW, Q3_SALES));
    // And on a generated workload.
    let doc = sales::generate(&SalesConfig {
        sales: 400,
        ..Default::default()
    });
    assert_eq!(run_doc(Q3_OLD, &doc), run_doc(Q3_NEW, &doc));
}

#[test]
fn q4_expensive_publishers() {
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $pub nest $b/price into $prices
           let $avgprice := avg($prices)
           where $avgprice > 55
           order by $avgprice descending
           return
             <expensive-publisher>
               {string($pub)}
               <avg-price>{$avgprice}</avg-price>
             </expensive-publisher>"#,
        FIGURE1_BIB,
    );
    // MK avg price = (70+45+60+36+80)/5 = 58.2; AW = 50 (filtered out).
    assert_eq!(
        out,
        "<expensive-publisher>Morgan Kaufmann<avg-price>58.2</avg-price></expensive-publisher>"
    );
}

#[test]
fn q5_distinct_publisher_title_pairs() {
    let xml = r#"<bib>
      <book><title>X</title><publisher>MK</publisher></book>
      <book><title>X</title><publisher>MK</publisher></book>
      <book><title>Y</title><publisher>MK</publisher></book>
      <book><title>X</title></book>
      <book><publisher>AW</publisher></book>
    </bib>"#;
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $pub, $b/title into $title
           order by $pub, $title
           return <pair>{string($pub)}/{string($title)}</pair>"#,
        xml,
    );
    // Old-syntax Cartesian approach would miss (X, no publisher) and
    // (AW, no title) — the explicit form reports all four pairs.
    assert_eq!(
        out,
        "<pair>/X</pair><pair>AW/</pair><pair>MK/X</pair><pair>MK/Y</pair>"
    );
}

#[test]
fn q6_yearly_report() {
    let out = run_xml(
        r#"for $b in //book
           group by $b/year into $year
           nest $b/title into $titles
           order by $year
           return
             <yearly-report>
               {string($year)}
               <book-count>{count($titles)}</book-count>
               <title-list>{$titles}</title-list>
             </yearly-report>"#,
        FIGURE1_BIB,
    );
    assert_eq!(
        out,
        "<yearly-report>1993<book-count>4</book-count>\
         <title-list><title>T1</title><title>T2</title><title>T3</title><title>T6</title></title-list>\
         </yearly-report>\
         <yearly-report>1995<book-count>2</book-count>\
         <title-list><title>T4</title><title>T5</title></title-list>\
         </yearly-report>"
    );
}

#[test]
fn q7_hierarchy_inversion() {
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $pub nest $b into $b
           order by $pub
           return
             <publisher>
               <name>{string($pub)}</name>
               <books>{$b/title}</books>
             </publisher>"#,
        FIGURE1_BIB,
    );
    assert_eq!(
        out,
        "<publisher><name>Addison-Wesley</name><books><title>T6</title></books></publisher>\
         <publisher><name>Morgan Kaufmann</name>\
         <books><title>T1</title><title>T2</title><title>T3</title><title>T4</title><title>T5</title></books>\
         </publisher>"
    );
}

#[test]
fn figure2_bindings_after_group_by_region_year() {
    // Figure 2: one output tuple per (region, year) with the nested
    // sales and their sum.
    let xml = r#"<sales>
      <sale><timestamp>1993-05-05T10:00:00</timestamp><state>CA</state>
            <region>West</region><quantity>10</quantity><price>6.25</price></sale>
      <sale><timestamp>1993-08-01T10:00:00</timestamp><state>OR</state>
            <region>West</region><quantity>5</quantity><price>12.48</price></sale>
    </sales>"#;
    let out = run_xml(
        r#"for $s in //sale
           group by $s/region into $region,
                    year-from-dateTime($s/timestamp) into $year
           nest $s into $region-sales
           let $region-sum := sum( $region-sales/(quantity * price) )
           return <t region="{string($region)}" year="{$year}"
                     n="{count($region-sales)}" sum="{$region-sum}"/>"#,
        xml,
    );
    // 10*6.25 + 5*12.48 = 62.5 + 62.4 = 124.9 (the figure's 124.90).
    assert_eq!(
        out,
        "<t region=\"West\" year=\"1993\" n=\"2\" sum=\"124.9\"/>"
    );
}

const MELTON_BIB: &str = r#"<bib>
  <book><title>Understanding the New SQL</title><author>Jim Melton</author>
        <price>54.95</price></book>
  <book><title>Transaction Processing</title><author>Jim Gray</author>
        <price>65.00</price></book>
  <book><title>Understanding SQL and Java Together</title><author>Jim Melton</author>
        <price>49.95</price></book>
  <book><title>Advanced SQL</title><author>Jim Melton</author>
        <price>59.95</price></book>
</bib>"#;

#[test]
fn q9_input_numbering_document_order() {
    // §4 Q9: `at` numbers books in binding (document) order.
    let out = run_xml(
        r#"for $b at $i in //book[author = "Jim Melton"]
           return <book><number>{$i}</number>{$b/title}</book>"#,
        MELTON_BIB,
    );
    assert_eq!(
        out,
        "<book><number>1</number><title>Understanding the New SQL</title></book>\
         <book><number>2</number><title>Understanding SQL and Java Together</title></book>\
         <book><number>3</number><title>Advanced SQL</title></book>"
    );
}

#[test]
fn q9a_at_reflects_input_not_output_order() {
    // §4 Q9a: after order by price, the `at` numbers are shuffled —
    // the motivating wart for output numbering.
    let out = run_xml(
        r#"for $b at $i in //book[author = "Jim Melton"]
           order by $b/price ascending
           return <book><number>{$i}</number>{$b/price}</book>"#,
        MELTON_BIB,
    );
    assert_eq!(
        out,
        "<book><number>2</number><price>49.95</price></book>\
         <book><number>1</number><price>54.95</price></book>\
         <book><number>3</number><price>59.95</price></book>"
    );
}

#[test]
fn q9b_top_three_by_output_numbering() {
    // §4 Q9b with `return at`: rank reflects output order directly.
    let out = run_xml(
        r#"for $b in //book[author = "Jim Melton"]
           order by $b/price descending
           return at $rank
             <book><rank>{$rank}</rank>{$b/price}</book>"#,
        MELTON_BIB,
    );
    assert_eq!(
        out,
        "<book><rank>1</rank><price>59.95</price></book>\
         <book><rank>2</rank><price>54.95</price></book>\
         <book><rank>3</rank><price>49.95</price></book>"
    );
    // The paper's old-syntax workaround gives the same result.
    let old = run_xml(
        r#"let $ranked-books :=
             (for $b in //book[author = "Jim Melton"]
              order by $b/price descending
              return $b)
           return
             (for $b at $i in $ranked-books
              where $i <= 3
              return <book><rank>{$i}</rank>{$b/price}</book>)"#,
        MELTON_BIB,
    );
    assert_eq!(out, old);
}

#[test]
fn q10_monthly_regional_ranking() {
    let doc = sales::generate(&SalesConfig {
        sales: 500,
        ..Default::default()
    });
    let out = run_doc(
        r#"for $s in //sale
           group by year-from-dateTime($s/timestamp) into $year,
                    month-from-dateTime($s/timestamp) into $month
           nest $s into $month-sales
           order by $year, $month
           return
             <monthly-report year="{$year}" month="{$month}">
               {for $ms in $month-sales
                group by $ms/region into $region
                nest $ms/quantity * $ms/price into $sales-amounts
                let $sum := sum($sales-amounts)
                order by $sum descending
                return at $rank
                  <regional-results>
                    <rank>{$rank}</rank>
                    <region>{string($region)}</region>
                    <total-sales>{$sum}</total-sales>
                  </regional-results>}
             </monthly-report>"#,
        &doc,
    );
    // Structural checks: 36 months (2003-2005), ranks start at 1 and
    // totals are non-increasing within each report.
    assert_eq!(out.matches("<monthly-report").count(), 36);
    for report in out.split("</monthly-report>").filter(|r| !r.is_empty()) {
        let totals: Vec<f64> = report
            .split("<total-sales>")
            .skip(1)
            .map(|t| t.split('<').next().unwrap().parse().unwrap())
            .collect();
        assert!(!totals.is_empty());
        assert!(
            totals.windows(2).all(|w| w[0] >= w[1]),
            "ranked descending: {totals:?}"
        );
        let ranks: Vec<usize> = report
            .split("<rank>")
            .skip(1)
            .map(|t| t.split('<').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(ranks, (1..=ranks.len()).collect::<Vec<_>>());
    }
}

#[test]
fn q11_rollup_matches_paper_output() {
    // §5 Q11 on the paper's own two-book example: expected output given
    // verbatim in the paper.
    let doc = bib::paper_section5_bib();
    let out = run_doc(
        r#"declare function local:paths($roots as element()*) as xs:string* {
             for $c in $roots
             return ( string(node-name($c)),
                      for $p in local:paths($c/*)
                      return concat(string(node-name($c)), "/", $p) ) };
           for $b in //book
           for $c in local:paths($b/categories/*)
           group by $c into $category
           nest $b/price into $prices
           order by $category
           return <result><category>{$category}</category>
                    <avg-price>{avg($prices)}</avg-price></result>"#,
        &doc,
    );
    assert_eq!(
        out,
        "<result><category>anthology</category><avg-price>65</avg-price></result>\
         <result><category>software</category><avg-price>62</avg-price></result>\
         <result><category>software/db</category><avg-price>62</avg-price></result>\
         <result><category>software/db/concurrency</category><avg-price>59</avg-price></result>\
         <result><category>software/distributed</category><avg-price>59</avg-price></result>"
    );
}

#[test]
fn q12_datacube_matches_paper_output() {
    // §5 Q12 on the figure-1 data plus a publisher-less book: the cube
    // over (publisher, year), with empty publishers normalized.
    let xml = r#"<bib>
      <book><publisher>MK</publisher><year>1993</year><price>40.00</price></book>
      <book><publisher>MK</publisher><year>1995</year><price>60.00</price></book>
      <book><year>1993</year><price>20.00</price></book>
    </bib>"#;
    let out = run_xml(
        r#"for $b in //book
           let $pub := if (empty($b/publisher)) then <publisher/> else $b/publisher
           for $d in xqa:cube(($pub, $b/year))
           group by $d into $group
           nest $b/price into $prices
           return <result><dims>{count($group/*)}</dims><n>{count($prices)}</n>
                    <avg>{avg($prices)}</avg></result>"#,
        xml,
    );
    // Overall: 3 books avg 40.
    assert!(
        out.contains("<result><dims>0</dims><n>3</n><avg>40</avg></result>"),
        "{out}"
    );
    // By publisher: MK (2 books avg 50), empty (1 book avg 20).
    assert!(out.contains("<dims>1</dims><n>2</n><avg>50</avg>"), "{out}");
    // By year: 1993 (2 books avg 30), 1995 (60).
    assert!(out.contains("<dims>1</dims><n>2</n><avg>30</avg>"), "{out}");
    // Pairs: 3 distinct (publisher, year) combos.
    assert_eq!(out.matches("<dims>2</dims>").count(), 3, "{out}");
    assert_eq!(out.matches("<result>").count(), 8, "{out}");
}

#[test]
fn table1_query_pair_equivalence_one_element() {
    // Table 1, one-element template: Q and Qgb produce the same groups
    // on order data where each grouping element occurs exactly once.
    let doc = xqa_workload::generate_orders(&xqa_workload::OrdersConfig {
        orders: 150,
        ..Default::default()
    });
    let qgb = run_doc(
        r#"for $litem in //order/lineitem
           group by $litem/shipmode into $a
           nest $litem into $items
           order by $a
           return <r>{string($a)}|{count($items)}</r>"#,
        &doc,
    );
    let q = run_doc(
        r#"for $a in distinct-values(//order/lineitem/shipmode)
           let $items := for $i in //order/lineitem where $i/shipmode = $a return $i
           order by $a
           return <r>{$a}|{count($items)}</r>"#,
        &doc,
    );
    assert_eq!(qgb, q);
}

#[test]
fn table1_query_pair_equivalence_two_element() {
    let doc = xqa_workload::generate_orders(&xqa_workload::OrdersConfig {
        orders: 120,
        ..Default::default()
    });
    let qgb = run_doc(
        r#"for $litem in //order/lineitem
           group by $litem/shipinstruct into $a, $litem/tax into $b
           nest $litem into $items
           order by $a, $b
           return <r>{string($a)}|{string($b)}|{count($items)}</r>"#,
        &doc,
    );
    let q = run_doc(
        r#"for $a in distinct-values(//order/lineitem/shipinstruct),
              $b in distinct-values(//order/lineitem/tax)
           let $items := for $i in //order/lineitem
                         where $i/shipinstruct = $a and $i/tax = $b
                         return $i
           where exists($items)
           order by $a, $b
           return <r>{$a}|{$b}|{count($items)}</r>"#,
        &doc,
    );
    assert_eq!(qgb, q);
}

#[test]
fn implicit_groupby_rewrite_preserves_results() {
    // The ablation: with detection on, the old-syntax Q runs as a
    // grouping plan and produces identical output.
    let doc = xqa_workload::generate_orders(&xqa_workload::OrdersConfig {
        orders: 100,
        ..Default::default()
    });
    let q_src = r#"for $a in distinct-values(//order/lineitem/shipmode)
                   let $items := for $i in //order/lineitem where $i/shipmode = $a return $i
                   order by $a
                   return <r>{$a}|{count($items)}</r>"#;
    let plain = Engine::new();
    let detecting = Engine::with_options(xqa::EngineOptions {
        detect_implicit_groupby: true,
        ..Default::default()
    });
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let baseline = plain.compile(q_src).unwrap();
    let rewritten = detecting.compile(q_src).unwrap();
    assert!(rewritten
        .applied_rewrites()
        .iter()
        .any(|r| r.contains("implicit group-by")));
    assert_eq!(
        serialize_sequence(&baseline.run(&ctx).unwrap()),
        serialize_sequence(&rewritten.run(&ctx).unwrap())
    );
    // And the rewritten plan does dramatically less node visiting. Under
    // a forced join mode the baseline also stops re-scanning (the hash
    // join builds once), so the comparison only holds in default mode.
    if std::env::var_os("XQA_FORCE_JOIN").is_some() {
        return;
    }
    ctx.stats.reset();
    baseline.run(&ctx).unwrap();
    let baseline_nodes = ctx.stats.snapshot().nodes_visited;
    ctx.stats.reset();
    rewritten.run(&ctx).unwrap();
    let rewritten_nodes = ctx.stats.snapshot().nodes_visited;
    assert!(
        rewritten_nodes * 3 < baseline_nodes,
        "rewritten {rewritten_nodes} vs baseline {baseline_nodes}"
    );
}
