//! Differential tests for the streaming tuple pipeline.
//!
//! Every query here is evaluated twice: once through the default
//! streaming operator pipeline and once through the legacy
//! materializing path (`EngineOptions { streaming_pipeline: false }`),
//! and the serialized results must be byte-identical. The legacy path
//! is kept for one release exactly so this suite can hold the two
//! implementations against each other.

use xqa::{serialize_sequence, DynamicContext, Engine, EngineOptions};

fn engines() -> (Engine, Engine) {
    let streaming = Engine::new();
    let materializing = Engine::with_options(EngineOptions {
        streaming_pipeline: false,
        ..Default::default()
    });
    (streaming, materializing)
}

fn assert_identical_ctx(query: &str, ctx: &mut DynamicContext) {
    let (streaming, materializing) = engines();
    let fast = streaming
        .compile(query)
        .unwrap_or_else(|e| panic!("compile (streaming): {e}\n{query}"));
    let slow = materializing
        .compile(query)
        .unwrap_or_else(|e| panic!("compile (materializing): {e}\n{query}"));
    // The streaming run is profiled: instrumentation must never change
    // results, and every streaming FLWOR must record its pipeline.
    ctx.enable_profiling();
    let a = fast
        .run(ctx)
        .unwrap_or_else(|e| panic!("run (streaming): {e}\n{query}"));
    let profile = ctx.take_profile().expect("profiling was enabled");
    assert!(
        !profile.is_empty(),
        "no pipeline profile recorded for:\n{query}"
    );
    for pipeline in &profile.pipelines {
        assert!(!pipeline.ops.is_empty(), "empty pipeline in profile");
    }
    let b = slow
        .run(ctx)
        .unwrap_or_else(|e| panic!("run (materializing): {e}\n{query}"));
    assert_eq!(
        serialize_sequence(&a),
        serialize_sequence(&b),
        "streaming and materializing paths disagree for:\n{query}"
    );
}

fn assert_identical(query: &str) {
    assert_identical_ctx(query, &mut DynamicContext::new());
}

fn orders_ctx() -> DynamicContext {
    let doc = xqa_workload::generate_orders(&xqa_workload::OrdersConfig {
        orders: 120,
        ..Default::default()
    });
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    ctx
}

// ---- grouping ---------------------------------------------------------

#[test]
fn groupby_single_key() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li into $items \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_two_keys() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/returnflag into $rf, $li/linestatus into $ls \
         nest $li/quantity into $qs \
         order by string($rf), string($ls) \
         return <g>{string($rf)}{string($ls)}|{count($qs)}|{sum(for $q in $qs return number($q))}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_ordered_nest() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li/shipdate order by string($li/shipdate) into $ds \
         order by string($m) \
         return <g>{string($m)}:{string($ds[1])}..{string($ds[last()])}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_custom_equality() {
    assert_identical_ctx(
        "declare function local:eq($a as item()*, $b as item()*) as xs:boolean \
         { deep-equal($a, $b) }; \
         for $li in //order/lineitem \
         group by $li/shipmode into $m using local:eq \
         nest $li into $items \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_post_group_let_and_where() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li into $items \
         let $n := count($items) \
         where $n ge 10 \
         order by $n descending, string($m) \
         return <g>{string($m)}:{$n}</g>",
        &mut orders_ctx(),
    );
}

// ---- ranking ----------------------------------------------------------

#[test]
fn rank_query_unbounded() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         order by number($li/extendedprice) descending \
         return at $r <p rank=\"{$r}\">{data($li/partkey)}</p>",
        &mut orders_ctx(),
    );
}

#[test]
fn rank_query_topk() {
    assert_identical_ctx(
        "(for $li in //order/lineitem \
          order by number($li/extendedprice) descending \
          return at $r <p rank=\"{$r}\">{data($li/partkey)}</p>)\
         [position() le 10]",
        &mut orders_ctx(),
    );
}

#[test]
fn rank_groups_topk() {
    assert_identical_ctx(
        "(for $li in //order/lineitem \
          group by $li/shipmode into $m \
          nest $li into $items \
          order by count($items) descending, string($m) \
          return at $r <g rank=\"{$r}\">{string($m)}</g>)\
         [position() le 3]",
        &mut orders_ctx(),
    );
}

// ---- windows ----------------------------------------------------------

#[test]
fn tumbling_window() {
    assert_identical(
        "for tumbling window $w in (1 to 50) \
         start at $s when $s mod 7 = 1 \
         return <w>{sum($w)}</w>",
    );
}

#[test]
fn tumbling_window_with_end_condition() {
    assert_identical(
        "for tumbling window $w in (2, 4, 6, 1, 3, 8, 10, 5) \
         start $s when $s mod 2 = 0 \
         end $e when $e mod 2 = 1 \
         return <w>{$w}</w>",
    );
}

#[test]
fn sliding_window_with_rank() {
    assert_identical(
        "for sliding window $w in (1 to 12) \
         start at $s when true() \
         only end at $e when $e = $s + 2 \
         return at $r <w r=\"{$r}\">{sum($w)}</w>",
    );
}

// ---- plain FLWOR shapes ----------------------------------------------

#[test]
fn for_let_where_count() {
    assert_identical(
        "for $x in (5, 3, 8, 1, 9, 2) \
         count $c \
         let $y := $x * $c \
         where $y mod 2 = 0 \
         return <r>{$c}:{$y}</r>",
    );
}

#[test]
fn nested_flwor_in_let() {
    assert_identical(
        "for $x in 1 to 5 \
         let $below := for $y in 1 to 5 where $y lt $x return $y \
         return <r>{$x}|{count($below)}</r>",
    );
}

#[test]
fn empty_for_input() {
    assert_identical("for $x in () order by $x return at $r <r>{$r}</r>");
}

#[test]
fn multiple_for_clauses() {
    assert_identical(
        "for $x in (1, 2, 3) \
         for $y in (\"a\", \"b\") \
         order by $y, $x descending \
         return <r>{$y}{$x}</r>",
    );
}
