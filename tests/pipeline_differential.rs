//! Differential tests for the streaming tuple pipeline.
//!
//! The legacy clause-by-clause materializing path is gone; the pipeline
//! is now held against itself across degrees of parallelism instead.
//! Every query here is evaluated at threads=1 (profiled — the run that
//! also asserts instrumentation never changes results and that every
//! FLWOR records its operator pipeline) and at threads=4, and the
//! serialized results must be byte-identical.

use xqa::{serialize_sequence, DynamicContext, Engine, EngineOptions};

fn threaded_engines() -> (Engine, Engine) {
    let serial = Engine::with_options(EngineOptions {
        threads: 1,
        ..Default::default()
    });
    let parallel = Engine::with_options(EngineOptions {
        threads: 4,
        ..Default::default()
    });
    (serial, parallel)
}

fn assert_identical_ctx(query: &str, ctx: &mut DynamicContext) {
    let (serial, parallel) = threaded_engines();
    let fast = serial
        .compile(query)
        .unwrap_or_else(|e| panic!("compile (threads=1): {e}\n{query}"));
    let slow = parallel
        .compile(query)
        .unwrap_or_else(|e| panic!("compile (threads=4): {e}\n{query}"));
    // The serial run is profiled: instrumentation must never change
    // results, and every streaming FLWOR must record its pipeline.
    ctx.enable_profiling();
    let a = fast
        .run(ctx)
        .unwrap_or_else(|e| panic!("run (threads=1): {e}\n{query}"));
    let profile = ctx.take_profile().expect("profiling was enabled");
    assert!(
        !profile.is_empty(),
        "no pipeline profile recorded for:\n{query}"
    );
    for pipeline in &profile.pipelines {
        assert!(!pipeline.ops.is_empty(), "empty pipeline in profile");
    }
    let b = slow
        .run(ctx)
        .unwrap_or_else(|e| panic!("run (threads=4): {e}\n{query}"));
    assert_eq!(
        serialize_sequence(&a),
        serialize_sequence(&b),
        "threads=1 and threads=4 disagree for:\n{query}"
    );
}

fn assert_identical(query: &str) {
    assert_identical_ctx(query, &mut DynamicContext::new());
}

fn orders_ctx() -> DynamicContext {
    let doc = xqa_workload::generate_orders(&xqa_workload::OrdersConfig {
        orders: 120,
        ..Default::default()
    });
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    ctx
}

// ---- grouping ---------------------------------------------------------

#[test]
fn groupby_single_key() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li into $items \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_two_keys() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/returnflag into $rf, $li/linestatus into $ls \
         nest $li/quantity into $qs \
         order by string($rf), string($ls) \
         return <g>{string($rf)}{string($ls)}|{count($qs)}|{sum(for $q in $qs return number($q))}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_ordered_nest() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li/shipdate order by string($li/shipdate) into $ds \
         order by string($m) \
         return <g>{string($m)}:{string($ds[1])}..{string($ds[last()])}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_custom_equality() {
    assert_identical_ctx(
        "declare function local:eq($a as item()*, $b as item()*) as xs:boolean \
         { deep-equal($a, $b) }; \
         for $li in //order/lineitem \
         group by $li/shipmode into $m using local:eq \
         nest $li into $items \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
        &mut orders_ctx(),
    );
}

#[test]
fn groupby_post_group_let_and_where() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li into $items \
         let $n := count($items) \
         where $n ge 10 \
         order by $n descending, string($m) \
         return <g>{string($m)}:{$n}</g>",
        &mut orders_ctx(),
    );
}

// ---- ranking ----------------------------------------------------------

#[test]
fn rank_query_unbounded() {
    assert_identical_ctx(
        "for $li in //order/lineitem \
         order by number($li/extendedprice) descending \
         return at $r <p rank=\"{$r}\">{data($li/partkey)}</p>",
        &mut orders_ctx(),
    );
}

#[test]
fn rank_query_topk() {
    assert_identical_ctx(
        "(for $li in //order/lineitem \
          order by number($li/extendedprice) descending \
          return at $r <p rank=\"{$r}\">{data($li/partkey)}</p>)\
         [position() le 10]",
        &mut orders_ctx(),
    );
}

#[test]
fn rank_groups_topk() {
    assert_identical_ctx(
        "(for $li in //order/lineitem \
          group by $li/shipmode into $m \
          nest $li into $items \
          order by count($items) descending, string($m) \
          return at $r <g rank=\"{$r}\">{string($m)}</g>)\
         [position() le 3]",
        &mut orders_ctx(),
    );
}

// ---- windows ----------------------------------------------------------

#[test]
fn tumbling_window() {
    assert_identical(
        "for tumbling window $w in (1 to 50) \
         start at $s when $s mod 7 = 1 \
         return <w>{sum($w)}</w>",
    );
}

#[test]
fn tumbling_window_with_end_condition() {
    assert_identical(
        "for tumbling window $w in (2, 4, 6, 1, 3, 8, 10, 5) \
         start $s when $s mod 2 = 0 \
         end $e when $e mod 2 = 1 \
         return <w>{$w}</w>",
    );
}

#[test]
fn sliding_window_with_rank() {
    assert_identical(
        "for sliding window $w in (1 to 12) \
         start at $s when true() \
         only end at $e when $e = $s + 2 \
         return at $r <w r=\"{$r}\">{sum($w)}</w>",
    );
}

// ---- plain FLWOR shapes ----------------------------------------------

#[test]
fn for_let_where_count() {
    assert_identical(
        "for $x in (5, 3, 8, 1, 9, 2) \
         count $c \
         let $y := $x * $c \
         where $y mod 2 = 0 \
         return <r>{$c}:{$y}</r>",
    );
}

#[test]
fn nested_flwor_in_let() {
    assert_identical(
        "for $x in 1 to 5 \
         let $below := for $y in 1 to 5 where $y lt $x return $y \
         return <r>{$x}|{count($below)}</r>",
    );
}

#[test]
fn empty_for_input() {
    assert_identical("for $x in () order by $x return at $r <r>{$r}</r>");
}

#[test]
fn multiple_for_clauses() {
    assert_identical(
        "for $x in (1, 2, 3) \
         for $y in (\"a\", \"b\") \
         order by $y, $x descending \
         return <r>{$y}{$x}</r>",
    );
}

// ---- intra-query parallelism ------------------------------------------
//
// Every query above (and a set of large-input shapes that actually split
// into multiple morsels) is also evaluated with `threads: 1` vs
// `threads: 4`; the serialized results must be byte-identical and the
// evaluator accounting (tuples produced/grouped/pruned, groups emitted)
// must match exactly.

fn assert_threads_identical_ctx(query: &str, ctx: &mut DynamicContext) {
    let (serial, parallel) = threaded_engines();
    let s = serial
        .compile(query)
        .unwrap_or_else(|e| panic!("compile (threads=1): {e}\n{query}"));
    let p = parallel
        .compile(query)
        .unwrap_or_else(|e| panic!("compile (threads=4): {e}\n{query}"));
    let base = ctx.stats.snapshot();
    let a = s
        .run(ctx)
        .unwrap_or_else(|e| panic!("run (threads=1): {e}\n{query}"));
    let mid = ctx.stats.snapshot();
    let b = p
        .run(ctx)
        .unwrap_or_else(|e| panic!("run (threads=4): {e}\n{query}"));
    let end = ctx.stats.snapshot();
    assert_eq!(
        serialize_sequence(&a),
        serialize_sequence(&b),
        "threads=1 and threads=4 disagree for:\n{query}"
    );
    // The parallel run must do the same logical work as the serial one.
    let deltas = [
        (
            "tuples_produced",
            base.tuples_produced,
            mid.tuples_produced,
            end.tuples_produced,
        ),
        (
            "tuples_grouped",
            base.tuples_grouped,
            mid.tuples_grouped,
            end.tuples_grouped,
        ),
        (
            "groups_emitted",
            base.groups_emitted,
            mid.groups_emitted,
            end.groups_emitted,
        ),
        (
            "tuples_pruned_filter",
            base.tuples_pruned_filter,
            mid.tuples_pruned_filter,
            end.tuples_pruned_filter,
        ),
        (
            "tuples_pruned_topk",
            base.tuples_pruned_topk,
            mid.tuples_pruned_topk,
            end.tuples_pruned_topk,
        ),
    ];
    for (name, base, mid, end) in deltas {
        assert_eq!(
            mid - base,
            end - mid,
            "{name} differs between threads=1 and threads=4 for:\n{query}"
        );
    }
}

/// The orders-document corpus shared by the threads, access-path, and
/// expression-bytecode differentials.
const ORDERS_CORPUS: [&str; 8] = [
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li into $items \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
        "for $li in //order/lineitem \
         group by $li/returnflag into $rf, $li/linestatus into $ls \
         nest $li/quantity into $qs \
         order by string($rf), string($ls) \
         return <g>{string($rf)}{string($ls)}|{count($qs)}|{sum(for $q in $qs return number($q))}</g>",
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li/shipdate order by string($li/shipdate) into $ds \
         order by string($m) \
         return <g>{string($m)}:{string($ds[1])}..{string($ds[last()])}</g>",
        "declare function local:eq($a as item()*, $b as item()*) as xs:boolean \
         { deep-equal($a, $b) }; \
         for $li in //order/lineitem \
         group by $li/shipmode into $m using local:eq \
         nest $li into $items \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
        "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li into $items \
         let $n := count($items) \
         where $n ge 10 \
         order by $n descending, string($m) \
         return <g>{string($m)}:{$n}</g>",
        "for $li in //order/lineitem \
         order by number($li/extendedprice) descending \
         return at $r <p rank=\"{$r}\">{data($li/partkey)}</p>",
        "(for $li in //order/lineitem \
          order by number($li/extendedprice) descending \
          return at $r <p rank=\"{$r}\">{data($li/partkey)}</p>)\
         [position() le 10]",
        "(for $li in //order/lineitem \
          group by $li/shipmode into $m \
          nest $li into $items \
          order by count($items) descending, string($m) \
          return at $r <g rank=\"{$r}\">{string($m)}</g>)\
         [position() le 3]",
];

/// The document-free corpus shared by the same differentials.
const PLAIN_CORPUS: [&str; 7] = [
    "for tumbling window $w in (1 to 50) \
         start at $s when $s mod 7 = 1 \
         return <w>{sum($w)}</w>",
    "for tumbling window $w in (2, 4, 6, 1, 3, 8, 10, 5) \
         start $s when $s mod 2 = 0 \
         end $e when $e mod 2 = 1 \
         return <w>{$w}</w>",
    "for sliding window $w in (1 to 12) \
         start at $s when true() \
         only end at $e when $e = $s + 2 \
         return at $r <w r=\"{$r}\">{sum($w)}</w>",
    "for $x in (5, 3, 8, 1, 9, 2) \
         count $c \
         let $y := $x * $c \
         where $y mod 2 = 0 \
         return <r>{$c}:{$y}</r>",
    "for $x in 1 to 5 \
         let $below := for $y in 1 to 5 where $y lt $x return $y \
         return <r>{$x}|{count($below)}</r>",
    "for $x in () order by $x return at $r <r>{$r}</r>",
    "for $x in (1, 2, 3) \
         for $y in (\"a\", \"b\") \
         order by $y, $x descending \
         return <r>{$y}{$x}</r>",
];

/// The full corpus above, replayed as a threads=1 vs threads=4
/// differential. Inputs below one morsel take the pre-seeded serial
/// fallback; the large-input tests further down exercise the real
/// multi-worker split.
#[test]
fn parallel_corpus_differential() {
    for query in ORDERS_CORPUS {
        assert_threads_identical_ctx(query, &mut orders_ctx());
    }
    for query in PLAIN_CORPUS {
        assert_threads_identical_ctx(query, &mut DynamicContext::new());
    }
}

#[test]
fn parallel_large_streamed_chain() {
    // No breaker: per-morsel output fragments concatenated in order.
    assert_threads_identical_ctx(
        "for $x in 1 to 4000 \
         let $y := $x * 3 \
         where $y mod 7 = 0 \
         return <r>{$y}</r>",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_large_positional_at() {
    // `at` ordinals are global positions, not morsel-local ones.
    assert_threads_identical_ctx(
        "for $x at $i in 2 to 4001 \
         where $x mod 997 = 0 \
         return <r>{$i}:{$x}</r>",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_large_rank_without_order() {
    // No breaker but `return at`: ranks are assigned after the merge.
    assert_threads_identical_ctx(
        "for $x in 1 to 3000 \
         where $x mod 2 = 0 \
         return at $r <r>{$r}:{$x}</r>",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_large_group_by_deep_equal_keys() {
    // Sequence-valued grouping keys exercise the deep-equal fallback in
    // every worker's hash table and again in the cross-worker merge;
    // with no order by, group order is first appearance across morsels.
    assert_threads_identical_ctx(
        "for $x in 1 to 5000 \
         group by ($x mod 7, $x mod 3) into $k \
         nest $x into $xs \
         return <g>{$k[1]}-{$k[2]}|{count($xs)}|{sum($xs)}</g>",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_large_group_by_ordered_nest() {
    assert_threads_identical_ctx(
        "for $x in 1 to 5000 \
         group by $x mod 11 into $k \
         nest $x order by $x mod 13, $x into $xs \
         order by $k \
         return <g>{$k}|{$xs[1]}|{$xs[last()]}</g>",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_large_top_k_ties_and_rank() {
    // Massive ties on the sort key: the survivors and their ranks must
    // match the serial stable order (tags break ties by input position).
    assert_threads_identical_ctx(
        "(for $x in 1 to 5000 \
          order by $x mod 10 \
          return at $r <r rank=\"{$r}\">{$x}</r>)[position() le 25]",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_large_full_sort_stability() {
    assert_threads_identical_ctx(
        "for $x in 1 to 3000 \
         order by $x mod 4 \
         return <r>{$x}</r>",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_large_groupby_then_downstream_clauses() {
    // Clauses after the breaker (let/where/order by) run serially on
    // the merged stream.
    assert_threads_identical_ctx(
        "for $x in 1 to 5000 \
         group by $x mod 17 into $k \
         nest $x into $xs \
         let $n := count($xs) \
         where $k mod 2 = 0 \
         order by $n descending, $k \
         return <g>{$k}:{$n}</g>",
        &mut DynamicContext::new(),
    );
}

#[test]
fn parallel_error_matches_serial() {
    // The parallel run must surface exactly the error the serial run
    // raises first, even when later morsels would also fail.
    let (serial, parallel) = threaded_engines();
    let query = "for $x in 1 to 3000 return $x idiv ($x - 1500)";
    let ctx = DynamicContext::new();
    let e1 = serial
        .compile(query)
        .expect("compile")
        .run(&ctx)
        .expect_err("threads=1 must fail");
    let e4 = parallel
        .compile(query)
        .expect("compile")
        .run(&ctx)
        .expect_err("threads=4 must fail");
    assert_eq!(e1.to_string(), e4.to_string());
}

// ---- access paths -----------------------------------------------------
//
// Every query below is evaluated four ways — access path forced to
// `walk` and forced to `index`, each at threads=1 and threads=4 —
// against a context whose documents carry indexed stores. All four
// serialized results must be byte-identical: the index path is a pure
// access-method substitution, never a semantic one.

fn indexed_orders_ctx() -> (
    xqa::DynamicContext,
    std::sync::Arc<xqa::storage::CatalogStatistics>,
) {
    let mut ctx = orders_ctx();
    ctx.index_documents();
    let stats = std::sync::Arc::new(xqa::storage::CatalogStatistics::from_stores(
        ctx.stores().map(std::sync::Arc::as_ref),
    ));
    (ctx, stats)
}

fn assert_access_paths_identical(
    query: &str,
    ctx: &xqa::DynamicContext,
    stats: &std::sync::Arc<xqa::storage::CatalogStatistics>,
) {
    use xqa::AccessPathMode;
    let mut outputs: Vec<(String, String)> = Vec::new();
    for threads in [1usize, 4] {
        for mode in [AccessPathMode::Walk, AccessPathMode::Index] {
            let engine = Engine::with_options(EngineOptions {
                threads,
                access_path: mode,
                ..Default::default()
            })
            .with_statistics(std::sync::Arc::clone(stats));
            let plan = engine
                .compile(query)
                .unwrap_or_else(|e| panic!("compile ({mode:?}, threads={threads}): {e}\n{query}"));
            let out = plan
                .run(ctx)
                .unwrap_or_else(|e| panic!("run ({mode:?}, threads={threads}): {e}\n{query}"));
            outputs.push((
                format!("{mode:?} threads={threads}"),
                serialize_sequence(&out),
            ));
        }
    }
    let (baseline_label, baseline) = &outputs[0];
    for (label, out) in &outputs[1..] {
        assert_eq!(
            baseline, out,
            "{baseline_label} and {label} disagree for:\n{query}"
        );
    }
}

/// The paper-workload corpus replayed as a walk-vs-index differential.
/// Descendant scans, string and numeric value predicates, predicates
/// the value index must refuse (non-leaf children, inequalities), and
/// FLWOR pipelines above them all serialize byte-identically whichever
/// access path resolves the scan.
#[test]
fn access_path_corpus_differential() {
    let (ctx, stats) = indexed_orders_ctx();
    for query in ACCESS_PATH_CORPUS {
        assert_access_paths_identical(query, &ctx, &stats);
    }
}

/// The paper-workload access-path corpus, shared with the
/// expression-bytecode differential below.
const ACCESS_PATH_CORPUS: [&str; 13] = [
    // plain descendant scans, high and low selectivity
    "count(//lineitem)",
    "count(//order)",
    "for $m in //shipmode return string($m)",
    // value-eq predicates: string probe, numeric probe, empty result
    "count(//lineitem[returnflag = \"A\"])",
    "count(//lineitem[quantity = 10])",
    "count(//lineitem[quantity = 999999])",
    "for $li in //lineitem[linestatus = \"O\"] return string($li/partkey)",
    // value index must refuse: non-leaf child, inequality, doubled preds
    "count(//order[customer = \"x\"])",
    "count(//lineitem[quantity > 10])",
    "count(//lineitem[quantity = 10][returnflag = \"A\"])",
    // descendant scan feeding the paper's grouping pipeline
    "for $li in //order/lineitem \
         group by $li/shipmode into $m \
         nest $li into $items \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
    // value predicate below a top-k ranking pipeline
    "(for $li in //lineitem[returnflag = \"R\"] \
          order by number($li/extendedprice) descending \
          return at $r <p rank=\"{$r}\">{data($li/partkey)}</p>)\
         [position() le 5]",
    // nested rescan: the inner path is re-annotated per tuple
    "for $m in distinct-values(//lineitem/shipmode) \
         let $n := count(//lineitem[shipmode = $m]) \
         order by string($m) \
         return <g>{string($m)}:{$n}</g>",
];

/// The forced-index corpus must actually exercise the index: a run with
/// everything forced to `index` records index hits, and the same
/// queries forced to `walk` record none.
#[test]
fn access_path_differential_takes_the_index() {
    use xqa::AccessPathMode;
    let (ctx, stats) = indexed_orders_ctx();
    let query = "count(//lineitem[quantity = 10]) + count(//lineitem)";
    let run = |mode: AccessPathMode| {
        let engine = Engine::with_options(EngineOptions {
            access_path: mode,
            threads: 1,
            ..Default::default()
        })
        .with_statistics(std::sync::Arc::clone(&stats));
        let before = ctx.stats.snapshot();
        engine
            .compile(query)
            .expect("compile")
            .run(&ctx)
            .expect("run");
        let after = ctx.stats.snapshot();
        (
            after.scan_index_hits - before.scan_index_hits,
            after.scan_walk_tuples - before.scan_walk_tuples,
        )
    };
    let (index_hits, _) = run(AccessPathMode::Index);
    assert!(
        index_hits >= 2,
        "forced index run recorded {index_hits} hits"
    );
    let (walk_hits, walk_tuples) = run(AccessPathMode::Walk);
    assert_eq!(walk_hits, 0, "forced walk run must not touch the index");
    assert!(walk_tuples > 0, "forced walk run must tree-walk");
}

#[test]
fn parallel_profile_reports_workers() {
    // A profiled parallel run records the widest worker fan-out.
    let parallel = Engine::with_options(EngineOptions {
        threads: 4,
        ..Default::default()
    });
    let query = parallel
        .compile(
            "for $x in 1 to 5000 \
             group by $x mod 5 into $k \
             nest $x into $xs \
             order by $k \
             return <g>{$k}:{count($xs)}</g>",
        )
        .expect("compile");
    let mut ctx = DynamicContext::new();
    ctx.enable_profiling();
    query.run(&ctx).expect("run");
    let profile = ctx.take_profile().expect("profile");
    let workers = profile.pipelines.iter().map(|p| p.workers).max().unwrap();
    assert_eq!(workers, 4, "expected a 4-worker parallel pipeline");
}

// ---- expression bytecode ----------------------------------------------
//
// Every query in the corpora above is evaluated four ways — scalar
// expression evaluation forced to `bytecode` and forced to `tree`, each
// at threads=1 and threads=4. All four serialized results must be
// byte-identical: a compiled program is a pure evaluation-method
// substitution for the tree-walker, never a semantic one.

fn engine_with_expr_eval(mode: xqa::ExprEvalMode, threads: usize) -> Engine {
    Engine::with_options(EngineOptions {
        threads,
        expr_eval: mode,
        ..Default::default()
    })
}

fn assert_expr_evals_identical(query: &str, ctx: &DynamicContext) {
    use xqa::ExprEvalMode;
    let mut outputs: Vec<(String, String)> = Vec::new();
    let mut serial_comparisons: Vec<u64> = Vec::new();
    for threads in [1usize, 4] {
        for mode in [ExprEvalMode::Bytecode, ExprEvalMode::Tree] {
            let engine = engine_with_expr_eval(mode, threads);
            let plan = engine
                .compile(query)
                .unwrap_or_else(|e| panic!("compile ({mode:?}, threads={threads}): {e}\n{query}"));
            let before = ctx.stats.snapshot();
            let out = plan
                .run(ctx)
                .unwrap_or_else(|e| panic!("run ({mode:?}, threads={threads}): {e}\n{query}"));
            let after = ctx.stats.snapshot();
            if threads == 1 {
                serial_comparisons.push(after.comparisons - before.comparisons);
            }
            outputs.push((
                format!("{mode:?} threads={threads}"),
                serialize_sequence(&out),
            ));
        }
    }
    let (baseline_label, baseline) = &outputs[0];
    for (label, out) in &outputs[1..] {
        assert_eq!(
            baseline, out,
            "{baseline_label} and {label} disagree for:\n{query}"
        );
    }
    // The type-specialized comparison fast paths must count exactly the
    // comparisons the tree-walker's kernels count (serial runs are
    // deterministic; parallel grouping merges can legitimately differ).
    assert_eq!(
        serial_comparisons[0], serial_comparisons[1],
        "bytecode and tree comparison counts diverge at threads=1 for:\n{query}"
    );
}

/// The orders and document-free corpora replayed as a bytecode-vs-tree
/// differential across thread counts.
#[test]
fn expr_eval_corpus_differential() {
    for query in ORDERS_CORPUS {
        assert_expr_evals_identical(query, &orders_ctx());
    }
    for query in PLAIN_CORPUS {
        assert_expr_evals_identical(query, &DynamicContext::new());
    }
}

/// The access-path corpus replayed the same way against an indexed
/// context: path-heavy queries mostly decline lowering, so this leg
/// pins the fallback boundary (compiled clause next to an interpreted
/// one) to identical output.
#[test]
fn expr_eval_access_path_corpus_differential() {
    let (ctx, _stats) = indexed_orders_ctx();
    for query in ACCESS_PATH_CORPUS {
        assert_expr_evals_identical(query, &ctx);
    }
}

/// The large multi-morsel shapes, where compiled programs run inside
/// worker threads with per-worker register scratch and stats sinks.
#[test]
fn expr_eval_parallel_morsel_differential() {
    let corpus = [
        "for $x in 1 to 4000 \
         let $y := $x * 3 \
         where $y mod 7 = 0 \
         return <r>{$y}</r>",
        "for $x at $i in 2 to 4001 \
         where $x mod 997 = 0 \
         return <r>{$i}:{$x}</r>",
        "for $x in 1 to 5000 \
         group by $x mod 7 into $k \
         nest $x into $xs \
         order by $k \
         return <g>{$k}|{count($xs)}|{sum($xs)}</g>",
        "(for $x in 1 to 5000 \
          order by $x mod 10 \
          return at $r <r rank=\"{$r}\">{$x}</r>)[position() le 25]",
    ];
    for query in corpus {
        assert_expr_evals_identical(query, &DynamicContext::new());
    }
}

/// Forced-bytecode runs on queries whose for/let/where clauses are all
/// in the scalar subset must actually execute compiled programs — and
/// forced-tree runs must execute none.
#[test]
fn forced_bytecode_actually_compiles() {
    use xqa::ExprEvalMode;
    // The process-wide override deliberately defeats per-engine modes,
    // so the tree-side zero assertions below would be wrong under it.
    if std::env::var_os("XQA_FORCE_EXPR_EVAL").is_some() {
        return;
    }
    let lowering_corpus = [
        "for $x in 1 to 100 where $x mod 3 = 0 return $x",
        "for $x in 1 to 50 let $y := $x * 2 + 1 where $y > 20 return $y",
        "for $x in 1 to 20 \
         count $c \
         let $y := $x * $c \
         where $y mod 2 = 0 \
         return <r>{$c}:{$y}</r>",
    ];
    let ctx = DynamicContext::new();
    for query in lowering_corpus {
        let before = ctx.stats.snapshot();
        engine_with_expr_eval(ExprEvalMode::Bytecode, 1)
            .compile(query)
            .expect("compile")
            .run(&ctx)
            .expect("run");
        let mid = ctx.stats.snapshot();
        engine_with_expr_eval(ExprEvalMode::Tree, 1)
            .compile(query)
            .expect("compile")
            .run(&ctx)
            .expect("run");
        let after = ctx.stats.snapshot();
        assert!(
            mid.expr_compiled > before.expr_compiled,
            "forced bytecode executed no compiled programs for:\n{query}"
        );
        assert_eq!(
            mid.expr_fallback, before.expr_fallback,
            "fully-lowerable query recorded fallbacks for:\n{query}"
        );
        assert_eq!(
            after.expr_compiled, mid.expr_compiled,
            "forced tree executed compiled programs for:\n{query}"
        );
        assert_eq!(
            after.expr_fallback, mid.expr_fallback,
            "tree mode must not count fallbacks for:\n{query}"
        );
    }
}

// ---- join unnesting ----------------------------------------------------
//
// Every query below is evaluated four ways — join strategy forced to
// `hash` and forced to `nested`, each at threads=1 and threads=4. All
// four serialized results must be byte-identical: the hash join is a
// pure join-method substitution for the nested loop, never a semantic
// one. Every corpus entry is a joinable shape, so the hash-mode plans
// are additionally required to carry the `[hash join ...]` annotation
// (unless the process-wide `XQA_FORCE_JOIN` override is in play).

fn engine_with_join(mode: xqa::JoinMode, threads: usize) -> Engine {
    Engine::with_options(EngineOptions {
        threads,
        join: mode,
        ..Default::default()
    })
}

fn assert_join_modes_identical(query: &str, ctx: &DynamicContext) {
    use xqa::JoinMode;
    let forced = std::env::var_os("XQA_FORCE_JOIN").is_some();
    let mut outputs: Vec<(String, String)> = Vec::new();
    for threads in [1usize, 4] {
        for mode in [JoinMode::Hash, JoinMode::Nested] {
            let engine = engine_with_join(mode, threads);
            let plan = engine
                .compile(query)
                .unwrap_or_else(|e| panic!("compile ({mode:?}, threads={threads}): {e}\n{query}"));
            if mode == JoinMode::Hash && !forced {
                assert!(
                    plan.explain().contains("[hash join"),
                    "hash mode did not unnest:\n{query}\n{}",
                    plan.explain()
                );
            }
            let out = plan
                .run(ctx)
                .unwrap_or_else(|e| panic!("run ({mode:?}, threads={threads}): {e}\n{query}"));
            outputs.push((
                format!("{mode:?} threads={threads}"),
                serialize_sequence(&out),
            ));
        }
    }
    let (baseline_label, baseline) = &outputs[0];
    for (label, out) in &outputs[1..] {
        assert_eq!(
            baseline, out,
            "{baseline_label} and {label} disagree for:\n{query}"
        );
    }
}

/// Joinable shapes over the orders document: the paper's §6 self-join
/// baseline, `eq` and reversed-operand variants, a numeric key, the
/// existential semi-join, and a join feeding a top-k ranking pipeline.
const JOIN_CORPUS: [&str; 6] = [
    "for $m in distinct-values(//order/lineitem/shipmode) \
         let $items := for $li in //order/lineitem where $li/shipmode = $m return $li \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
    "for $m in distinct-values(//order/lineitem/shipmode) \
         let $items := for $li in //order/lineitem where $li/shipmode eq $m return $li \
         order by string($m) \
         return <g>{string($m)}:{count($items)}</g>",
    "for $m in distinct-values(//order/lineitem/shipmode) \
         let $items := for $li in //order/lineitem where $m = $li/shipmode return $li \
         order by string($m) \
         return <g>{count($items)}</g>",
    "for $q in distinct-values(//order/lineitem/quantity) \
         let $ls := for $li in //order/lineitem where $li/quantity = $q return $li \
         order by number($q) \
         return <g>{string($q)}:{count($ls)}</g>",
    "for $o in //order \
         where some $li in //order/lineitem[returnflag = \"R\"] satisfies \
             $li/shipmode = $o/lineitem[1]/shipmode \
         return <o>{count($o/lineitem)}</o>",
    "(for $m in distinct-values(//order/lineitem/shipmode) \
          let $items := for $li in //order/lineitem where $li/shipmode = $m return $li \
          order by count($items) descending, string($m) \
          return at $r <g rank=\"{$r}\">{string($m)}:{count($items)}</g>)\
         [position() le 3]",
];

#[test]
fn join_corpus_differential() {
    let ctx = orders_ctx();
    for query in JOIN_CORPUS {
        assert_join_modes_identical(query, &ctx);
    }
}

/// Large document-free shapes where the probe side (and in one case the
/// build side) splits into multiple morsels, exercising the shared
/// build cell, the eager parallel pre-build, and per-worker probing.
#[test]
fn join_large_morsel_differential() {
    let corpus = [
        "for $x in 1 to 3000 \
         let $m := for $y in (2, 4, 6, 8) where $y = $x mod 10 return $y \
         return <r>{$x}:{count($m)}</r>",
        "for $x in 1 to 1200 \
         let $m := for $y in 1 to 3000 where $y = $x * 2 return $y \
         return count($m)",
        "for $x in 1 to 3000 \
         where some $y in (3, 5, 7) satisfies $y = $x mod 11 \
         return $x",
    ];
    let ctx = DynamicContext::new();
    for query in corpus {
        assert_join_modes_identical(query, &ctx);
    }
}

/// Forced-hash runs must actually take the hash path — the build and
/// probe counters move — and forced-nested runs must leave them alone.
#[test]
fn join_differential_takes_the_hash_path() {
    use xqa::JoinMode;
    // The process-wide override deliberately defeats per-engine modes,
    // so the nested-side zero assertions below would be wrong under it.
    if std::env::var_os("XQA_FORCE_JOIN").is_some() {
        return;
    }
    let ctx = orders_ctx();
    let query = JOIN_CORPUS[0];
    let before = ctx.stats.snapshot();
    engine_with_join(JoinMode::Hash, 1)
        .compile(query)
        .expect("compile")
        .run(&ctx)
        .expect("run");
    let mid = ctx.stats.snapshot();
    engine_with_join(JoinMode::Nested, 1)
        .compile(query)
        .expect("compile")
        .run(&ctx)
        .expect("run");
    let after = ctx.stats.snapshot();
    assert!(
        mid.join_hash_probes > before.join_hash_probes,
        "forced hash recorded no probes"
    );
    assert!(
        mid.join_build_tuples > before.join_build_tuples,
        "forced hash recorded no build tuples"
    );
    assert_eq!(
        after.join_hash_probes, mid.join_hash_probes,
        "forced nested must not probe a hash table"
    );
    assert_eq!(
        after.join_build_tuples, mid.join_build_tuples,
        "forced nested must not build a hash table"
    );
}

/// A query mixing lowerable and unloweable clauses records both
/// counters: the scalar `where` compiles while the path-valued `for`
/// binding falls back.
#[test]
fn mixed_query_counts_compiled_and_fallback() {
    use xqa::ExprEvalMode;
    if std::env::var_os("XQA_FORCE_EXPR_EVAL").is_some() {
        return;
    }
    let ctx = orders_ctx();
    let query = "for $li in //order/lineitem \
                 let $q := number($li/quantity) \
                 where $q >= 0 \
                 return $li/partkey";
    let before = ctx.stats.snapshot();
    engine_with_expr_eval(ExprEvalMode::Bytecode, 1)
        .compile(query)
        .expect("compile")
        .run(&ctx)
        .expect("run");
    let after = ctx.stats.snapshot();
    assert!(
        after.expr_compiled > before.expr_compiled,
        "the scalar where clause must run compiled"
    );
    assert!(
        after.expr_fallback > before.expr_fallback,
        "the path-valued for and function-calling let must fall back"
    );
}
