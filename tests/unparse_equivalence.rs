//! Unparser equivalence: for every paper query, `unparse(parse(q))`
//! must re-parse and produce the *same results* as the original — a
//! strong end-to-end check on parser, unparser and evaluator together.

use xqa::{frontend, parse_document, serialize_sequence, DynamicContext, Engine};
use xqa_workload::{generate_bib, generate_sales, BibConfig, SalesConfig};

const QUERIES: &[&str] = &[
    // Q1 both forms
    "for $b in //book group by $b/publisher into $p, $b/year into $y \
     nest $b/price - $b/discount into $n order by $p, $y \
     return <group>{string($p), string($y)}<a>{avg($n)}</a></group>",
    "for $p in distinct-values(//book/publisher) \
     for $y in distinct-values(//book/year) \
     let $b := //book[publisher = $p and year = $y] \
     where exists($b) order by $p, $y \
     return <group>{$p}|{string($y)}|{count($b)}</group>",
    // Q2a with using
    "declare function local:set-equal($a1 as item()*, $a2 as item()*) as xs:boolean \
     { (every $i1 in $a1 satisfies some $i2 in $a2 satisfies $i1 eq $i2) \
       and (every $i2 in $a2 satisfies some $i1 in $a1 satisfies $i1 eq $i2) }; \
     for $b in //book group by $b/author into $a using local:set-equal \
     nest $b/price into $prices return <g>{count($prices)}</g>",
    // Q4
    "for $b in //book group by $b/publisher into $pub nest $b/price into $prices \
     let $avg := avg($prices) where $avg > 40 order by $avg descending \
     return <p>{string($pub)}:{$avg}</p>",
    // Q5
    "for $b in //book group by $b/publisher into $pub, $b/title into $t \
     order by $pub, $t return <pair>{string($pub)}/{string($t)}</pair>",
    // Q7
    "for $b in //book group by $b/publisher into $pub nest $b into $b \
     order by $pub return <pub><n>{string($pub)}</n><c>{count($b)}</c></pub>",
    // Q9b with return at
    "for $b in //book order by $b/price descending \
     return at $rank (if ($rank <= 3) then <r n=\"{$rank}\">{$b/title}</r> else ())",
    // misc coverage
    "for $b at $i in //book where $i mod 2 = 0 return string($b/title)",
    "sum(//book/(price - discount))",
    "count(//book[price > 50][position() <= 2])",
    "every $b in //book satisfies $b/price > 0",
];

const SALES_QUERIES: &[&str] = &[
    // Q3 extended form
    "for $s in //sale group by $s/region into $region, \
     year-from-dateTime($s/timestamp) into $year nest $s into $rs \
     let $sum := sum($rs/(quantity * price)) order by $year, $region \
     return <t>{string($region)}|{$year}|{round-half-to-even($sum, 2)}</t>",
    // Q8 windowing
    "for $s in //sale group by $s/region into $r \
     nest $s order by $s/timestamp into $rs \
     order by $r \
     return <w r=\"{string($r)}\">{count($rs)}</w>",
    // Q10 ranking
    "for $s in //sale group by month-from-dateTime($s/timestamp) into $m \
     nest $s/quantity * $s/price into $amts order by $m \
     return <m n=\"{$m}\">{round-half-to-even(sum($amts), 2)}</m>",
];

fn check(query: &str, doc: &std::sync::Arc<xqa::xdm::Document>) {
    let engine = Engine::new();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(doc);

    let original = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile: {e}\n{query}"));
    let module = frontend::parse_query(query).expect("parse");
    let printed = frontend::unparse_module(&module);
    let reparsed = engine
        .compile(&printed)
        .unwrap_or_else(|e| panic!("re-compile failed: {e}\n--- printed:\n{printed}"));

    let a = serialize_sequence(&original.run(&ctx).unwrap());
    let b = serialize_sequence(&reparsed.run(&ctx).unwrap());
    assert_eq!(
        a, b,
        "results differ after unparse round-trip:\n{query}\n--- printed:\n{printed}"
    );
}

#[test]
fn bibliography_queries_survive_unparse() {
    let doc = generate_bib(&BibConfig {
        books: 120,
        ..Default::default()
    });
    for q in QUERIES {
        check(q, &doc);
    }
}

#[test]
fn sales_queries_survive_unparse() {
    let doc = generate_sales(&SalesConfig {
        sales: 200,
        ..Default::default()
    });
    for q in SALES_QUERIES {
        check(q, &doc);
    }
}

#[test]
fn unparse_paper_q10_nested() {
    let doc = generate_sales(&SalesConfig {
        sales: 150,
        ..Default::default()
    });
    check(
        "for $s in //sale \
         group by year-from-dateTime($s/timestamp) into $year, \
                  month-from-dateTime($s/timestamp) into $month \
         nest $s into $ms order by $year, $month \
         return <monthly-report year=\"{$year}\" month=\"{$month}\"> \
           {for $m in $ms group by $m/region into $region \
            nest $m/quantity * $m/price into $amounts \
            let $sum := sum($amounts) order by $sum descending \
            return at $rank <rr><rank>{$rank}</rank>{$region}</rr>} \
         </monthly-report>",
        &doc,
    );
}

#[test]
fn unparse_rollup_with_recursion() {
    let doc = parse_document(
        "<bib><book><price>10.00</price>\
         <categories><software><db/></software></categories></book></bib>",
    )
    .unwrap();
    check(
        "declare function local:paths($roots as element()*) as xs:string* { \
           for $c in $roots \
           return ( string(node-name($c)), \
                    for $p in local:paths($c/*) \
                    return concat(string(node-name($c)), \"/\", $p) ) }; \
         for $b in //book for $c in local:paths($b/categories/*) \
         group by $c into $cat nest $b/price into $prices \
         order by $cat return <r>{$cat}:{avg($prices)}</r>",
        &doc,
    );
}

#[test]
fn window_and_count_clauses_survive_unparse() {
    let doc = parse_document("<r/>").unwrap();
    for q in [
        "for tumbling window $w in (1 to 10) \
         start $s at $i previous $p next $n when $i mod 3 = 1 \
         return <w>{sum($w)}</w>",
        "for sliding window $w in (1 to 6) \
         start at $s when true() \
         only end at $e when $e - $s = 2 \
         return avg($w)",
        "for tumbling window $w in (2, 4, 6, 1, 8) \
         start $s when $s mod 2 = 0 end $e when $e mod 2 = 1 \
         return count($w)",
        "for $x in (1 to 5) count $i where $x mod 2 = 1 return ($i, $x)",
        "for $x in (\"b\", \"a\", \"b\") group by $x into $k count $i \
         return concat($i, $k)",
    ] {
        check(q, &doc);
    }
}
