//! `XQA_FORCE_ACCESS_PATH` overrides the engine's configured access
//! path at plan time. Lives in its own test binary: the variable is
//! process-global, so this is the only test in the process that sets
//! it (serially, for both values).

use xqa::{AccessPathMode, DynamicContext, Engine, EngineOptions};

fn indexed_ctx() -> (
    DynamicContext,
    std::sync::Arc<xqa::storage::CatalogStatistics>,
) {
    let doc = xqa::parse_document(
        "<r><item><p>1</p></item><item><p>2</p></item><pad/><pad/><pad/><pad/></r>",
    )
    .unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    ctx.index_documents();
    let stats = std::sync::Arc::new(xqa::storage::CatalogStatistics::from_stores(
        ctx.stores().map(std::sync::Arc::as_ref),
    ));
    (ctx, stats)
}

fn index_hits(engine: &Engine, ctx: &DynamicContext, query: &str) -> u64 {
    let before = ctx.stats.snapshot();
    let out = engine
        .compile(query)
        .expect("compile")
        .run(ctx)
        .expect("run");
    assert_eq!(out[0].string_value(), "1", "query result drifted");
    ctx.stats.snapshot().scan_index_hits - before.scan_index_hits
}

#[test]
fn env_override_wins_over_engine_options() {
    let (ctx, stats) = indexed_ctx();
    let query = "count(//item[p = 2])";
    let forced_index = Engine::with_options(EngineOptions {
        access_path: AccessPathMode::Index,
        ..Default::default()
    })
    .with_statistics(std::sync::Arc::clone(&stats));
    let auto = Engine::with_options(EngineOptions::default())
        .with_statistics(std::sync::Arc::clone(&stats));

    // Baseline (no override): both engines take the index.
    assert!(index_hits(&forced_index, &ctx, query) > 0);
    assert!(index_hits(&auto, &ctx, query) > 0);

    // walk override beats even an explicit Index option.
    std::env::set_var("XQA_FORCE_ACCESS_PATH", "walk");
    assert_eq!(index_hits(&forced_index, &ctx, query), 0);
    assert_eq!(index_hits(&auto, &ctx, query), 0);

    // index override forces annotation under default options.
    std::env::set_var("XQA_FORCE_ACCESS_PATH", "index");
    assert!(index_hits(&auto, &ctx, query) > 0);

    // Unknown values are ignored, not errors.
    std::env::set_var("XQA_FORCE_ACCESS_PATH", "bogus");
    assert!(index_hits(&auto, &ctx, query) > 0);
    std::env::remove_var("XQA_FORCE_ACCESS_PATH");
}
