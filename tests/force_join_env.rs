//! `XQA_FORCE_JOIN` overrides the engine's configured join mode at
//! plan time. Lives in its own test binary: the variable is
//! process-global, so this is the only test in the process that sets
//! it (serially, for both values).

use xqa::{DynamicContext, Engine, EngineOptions, JoinMode};

const DOC: &str = "<r>\
     <order><lineitem><shipmode>AIR</shipmode></lineitem>\
            <lineitem><shipmode>RAIL</shipmode></lineitem></order>\
     <order><lineitem><shipmode>AIR</shipmode></lineitem></order>\
     </r>";

const QUERY: &str = "for $m in distinct-values(//order/lineitem/shipmode) \
     let $items := for $li in //order/lineitem where $li/shipmode = $m return $li \
     order by string($m) \
     return <g>{string($m)}:{count($items)}</g>";

fn ctx() -> DynamicContext {
    let doc = xqa::parse_document(DOC).unwrap();
    let mut c = DynamicContext::new();
    c.set_context_document(&doc);
    c
}

/// Compile with `mode`, run, and return the hash-probe delta plus
/// whether the plan carried the hash-join annotation.
fn probes(mode: JoinMode, ctx: &DynamicContext) -> (u64, bool) {
    let engine = Engine::with_options(EngineOptions {
        join: mode,
        ..Default::default()
    });
    let plan = engine.compile(QUERY).expect("compile");
    let annotated = plan.explain().contains("[hash join");
    let before = ctx.stats.snapshot();
    let out = plan.run(ctx).expect("run");
    assert_eq!(
        xqa::serialize_sequence(&out),
        "<g>AIR:2</g><g>RAIL:1</g>",
        "query result drifted"
    );
    (
        ctx.stats.snapshot().join_hash_probes - before.join_hash_probes,
        annotated,
    )
}

#[test]
fn env_override_wins_over_engine_options() {
    let ctx = ctx();

    // Baseline (no override): the option decides. Auto has no
    // statistics here, so it stays nested.
    assert_eq!(probes(JoinMode::Hash, &ctx), (2, true));
    assert!(matches!(probes(JoinMode::Nested, &ctx), (0, false)));
    assert!(matches!(probes(JoinMode::Auto, &ctx), (0, false)));

    // nested override beats even an explicit Hash option.
    std::env::set_var("XQA_FORCE_JOIN", "nested");
    assert!(matches!(probes(JoinMode::Hash, &ctx), (0, false)));

    // hash override forces unnesting under default options.
    std::env::set_var("XQA_FORCE_JOIN", "hash");
    assert_eq!(probes(JoinMode::Auto, &ctx), (2, true));
    assert_eq!(probes(JoinMode::Nested, &ctx), (2, true));

    // Unknown values are ignored, not errors.
    std::env::set_var("XQA_FORCE_JOIN", "bogus");
    assert!(matches!(probes(JoinMode::Auto, &ctx), (0, false)));
    assert_eq!(probes(JoinMode::Hash, &ctx), (2, true));
    std::env::remove_var("XQA_FORCE_JOIN");
}
