//! Copy-regression smoke test: the whole point of the copy-on-write
//! `Sequence` is that grouping/nesting queries stop deep-copying item
//! vectors, so `seq_items_copied` on a fixed grouping query over the
//! bundled purchase-order corpus must stay under a recorded ceiling.
//!
//! The ceiling lives in `tests/golden/seq_copy_ceiling.txt`. When an
//! intentional change moves the number, re-baseline with
//! `UPDATE_GOLDEN=1 cargo test --test seq_copy_regression` — the
//! recorded value is the fresh measurement plus 20% headroom.

use xqa::{Engine, EngineOptions};

/// A representative paper-shaped aggregation: group, nest, re-bind the
/// nested sequence, order, rank.
const QUERY: &str = "for $li in //order/lineitem \
     group by $li/shipmode into $m \
     nest $li into $items \
     let $n := count($items) \
     order by $n descending, string($m) \
     return at $r <g rank=\"{$r}\">{string($m)}:{$n}</g>";

const ORDERS: usize = 400;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seq_copy_ceiling.txt")
}

/// One deterministic threads=1 run; returns the copy-counter deltas.
fn measure() -> (u64, u64) {
    let doc = xqa_workload::generate_orders(&xqa_workload::OrdersConfig {
        orders: ORDERS,
        ..Default::default()
    });
    let mut ctx = xqa::DynamicContext::new();
    ctx.set_context_document(&doc);
    let engine = Engine::with_options(EngineOptions {
        threads: 1,
        ..Default::default()
    });
    let plan = engine.compile(QUERY).expect("compiles");
    let before = ctx.stats.snapshot();
    plan.run(&ctx).expect("runs");
    let after = ctx.stats.snapshot();
    (
        after.seq_items_copied - before.seq_items_copied,
        after.seq_clones_shared - before.seq_clones_shared,
    )
}

#[test]
fn seq_items_copied_stays_under_recorded_ceiling() {
    let (copied, shared) = measure();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let ceiling = copied + copied / 5 + 64;
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, format!("{ceiling}\n")).expect("write golden");
        return;
    }
    let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read ceiling {}: {e}\nrun with UPDATE_GOLDEN=1 to (re)create it",
            path.display()
        )
    });
    let ceiling: u64 = recorded.trim().parse().expect("ceiling is a number");
    assert!(
        copied <= ceiling,
        "seq_items_copied regressed: {copied} > recorded ceiling {ceiling} \
         (run with UPDATE_GOLDEN=1 to re-baseline an intentional change)"
    );
    // And the sharing must actually be doing the work: on this shape
    // the overwhelming majority of would-be copies are shared clones.
    assert!(
        shared > copied,
        "sharing collapsed: copied={copied} shared={shared}"
    );
}
