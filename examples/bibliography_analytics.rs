//! Bibliography analytics: the paper's Sections 2–3 queries on a
//! generated bibliography — grouping with complex keys (Q2a), custom
//! equality (`using local:set-equal`), group filtering (Q4), distinct
//! pairs (Q5) and hierarchy inversion (Q7).
//!
//! ```sh
//! cargo run --release --example bibliography_analytics [-- <books> <seed>]
//! ```

use xqa::{DynamicContext, Engine};
use xqa_workload::{generate_bib, BibConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let books: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(800);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(42);

    let doc = generate_bib(&BibConfig {
        books,
        seed,
        ..Default::default()
    });
    let engine = Engine::new();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);

    // ---- Q2a: group by the author *sequence* (order-sensitive) --------
    println!("Q2a — author sets as grouping keys (deep-equal, top 8 by volume):");
    let q2a = engine.compile(
        r#"for $b in //book
           group by $b/author into $a
           nest $b/price into $prices
           let $n := count($prices)
           order by $n descending
           return at $rank
             if ($rank <= 8)
             then concat(
               if (empty($a)) then "(no authors)"
               else string-join(for $x in $a return string($x), " + "),
               "  books=", $n, "  avg=", round-half-to-even(avg($prices), 2))
             else ()"#,
    )?;
    for row in q2a.run(&ctx)? {
        println!("  {}", row.string_value());
    }

    // ---- Q2a with set semantics via `using` -----------------------------
    println!("\nQ2a with `using local:set-equal` — permutations merge:");
    let permutation_counts =
        engine.compile(r#"count(for $b in //book group by $b/author into $a return <g/>)"#)?;
    let set_counts = engine.compile(
        // The paper's function, with the parentheses its prose implies
        // (the printed form is not grammatical XQuery; see the parser
        // notes in xqa-frontend).
        r#"declare function local:set-equal
             ($arg1 as item()*, $arg2 as item()*) as xs:boolean
           { (every $i1 in $arg1 satisfies
                some $i2 in $arg2 satisfies $i1 eq $i2)
             and (every $i2 in $arg2 satisfies
                some $i1 in $arg1 satisfies $i1 eq $i2) };
           count(for $b in //book
                 group by $b/author into $a using local:set-equal
                 return <g/>)"#,
    )?;
    let sequences = permutation_counts.run(&ctx)?[0].string_value();
    let sets = set_counts.run(&ctx)?[0].string_value();
    println!("  {sequences} author-sequence groups vs {sets} author-set groups");
    assert!(sets.parse::<u64>()? <= sequences.parse::<u64>()?);

    // ---- Q4: expensive publishers ---------------------------------------
    println!("\nQ4 — publishers by average price (post-group let/where):");
    let q4 = engine.compile(
        r#"for $b in //book
           group by $b/publisher into $pub nest $b/price into $prices
           let $avgprice := avg($prices)
           where $avgprice > 60
           order by $avgprice descending
           return concat(string($pub), "  avg=", round-half-to-even($avgprice, 2))"#,
    )?;
    for row in q4.run(&ctx)? {
        println!("  {}", row.string_value());
    }

    // ---- Q5: distinct (publisher, year) pairs ---------------------------
    let q5 = engine.compile(
        r#"count(for $b in //book
                 group by $b/publisher into $pub, $b/year into $year
                 return <pair/>)"#,
    )?;
    println!(
        "\nQ5 — {} distinct (publisher, year) pairs",
        q5.run(&ctx)?[0].string_value()
    );

    // ---- Q7: hierarchy inversion ----------------------------------------
    println!("\nQ7 — books-per-publisher (hierarchy inversion):");
    let q7 = engine.compile(
        r#"for $b in //book
           group by $b/publisher into $pub nest $b into $b
           order by count($b) descending
           return concat(
             if (empty($pub)) then "(self-published)" else string($pub),
             ": ", count($b), " books")"#,
    )?;
    for row in q7.run(&ctx)? {
        println!("  {}", row.string_value());
    }
    Ok(())
}
