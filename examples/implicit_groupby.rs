//! The paper's core argument, live: the same grouping intent written
//! the XQuery-1.0 way (`distinct-values` + self-join) versus the
//! explicit `group by`, with plan-shape statistics and timings, plus
//! the optional detection rewrite (§7 discussion) applied to the old
//! form.
//!
//! ```sh
//! cargo run --release --example implicit_groupby [-- <lineitems>]
//! ```

use std::time::Instant;
use xqa::{DynamicContext, Engine, EngineOptions};
use xqa_workload::{generate_orders, OrdersConfig};

const QGB: &str = r#"
    for $litem in //order/lineitem
    group by $litem/shipmode into $a
    nest $litem into $items
    return <r>{$a, count($items)}</r>"#;

const Q: &str = r#"
    for $a in distinct-values(//order/lineitem/shipmode)
    let $items := for $i in //order/lineitem where $i/shipmode = $a return $i
    return <r>{$a, count($items)}</r>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lineitems: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(8_000);
    let doc = generate_orders(&OrdersConfig::with_total_lineitems(lineitems));
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);

    let plain = Engine::new();
    let detecting = Engine::with_options(EngineOptions {
        detect_implicit_groupby: true,
        ..Default::default()
    });

    let report = |label: &str, query: &xqa::PreparedQuery| -> Result<(), xqa::EngineError> {
        ctx.stats.reset();
        let start = Instant::now();
        let result = query.run(&ctx)?;
        let elapsed = start.elapsed();
        println!(
            "{label:<28} {:>8.1?}  groups={:<3} nodes_visited={:<10} comparisons={}",
            elapsed,
            result.len(),
            ctx.stats.snapshot().nodes_visited,
            ctx.stats.snapshot().comparisons,
        );
        Ok(())
    };

    println!("group-by shipmode over ~{lineitems} lineitems\n");
    report("explicit group by (Qgb)", &plain.compile(QGB)?)?;
    report("distinct-values self-join (Q)", &plain.compile(Q)?)?;
    let rewritten = detecting.compile(Q)?;
    for r in rewritten.applied_rewrites() {
        println!("\n[optimizer] {r}");
    }
    report("Q + detection rewrite", &rewritten)?;

    println!(
        "\nThe explicit form (and the rewritten plan) scan the data once;\n\
         the 1.0 form re-scans per distinct value — the gap grows with the\n\
         number of groups, which is exactly the paper's Section 6 chart."
    );
    Ok(())
}
