//! OLAP on ragged hierarchies: the paper's §5 rollup (Q11) and
//! datacube (Q12) queries, expressed with *membership functions* —
//! both the user-defined `local:paths` the paper spells out and the
//! engine-provided `xqa:paths` / `xqa:cube` builtins.
//!
//! ```sh
//! cargo run --release --example olap_rollup_cube [-- <books> <seed>]
//! ```

use xqa::{DynamicContext, Engine};
use xqa_workload::{generate_bib, BibConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let books: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(500);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(42);

    let doc = generate_bib(&BibConfig {
        books,
        seed,
        with_categories: true,
        publisher_probability: 0.9,
    });
    let engine = Engine::new();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);

    // ---- Q11: rollup over the ragged category hierarchy ---------------
    // The paper's user-defined membership function, verbatim in spirit:
    // every book is placed into each category path it belongs to.
    println!("Q11 — average price per category path (user-defined local:paths):");
    let q11 = engine.compile(
        r#"declare function local:paths($roots as element()*) as xs:string* {
             for $c in $roots
             return ( string(node-name($c)),
                      for $p in local:paths($c/*)
                      return concat(string(node-name($c)), "/", $p) ) };
           for $b in //book
           for $c in local:paths($b/categories/*)
           group by $c into $category
           nest $b/price into $prices
           order by $category
           return concat($category, "  n=", count($prices),
                         "  avg=", round-half-to-even(avg($prices), 2))"#,
    )?;
    for row in q11.run(&ctx)? {
        println!("  {}", row.string_value());
    }

    // The builtin equivalent must agree exactly.
    let q11_builtin = engine.compile(
        r#"for $b in //book
           for $c in xqa:paths($b/categories/*)
           group by $c into $category
           nest $b/price into $prices
           order by $category
           return concat($category, "  n=", count($prices),
                         "  avg=", round-half-to-even(avg($prices), 2))"#,
    )?;
    let a: Vec<String> = q11.run(&ctx)?.iter().map(|i| i.string_value()).collect();
    let b: Vec<String> = q11_builtin
        .run(&ctx)?
        .iter()
        .map(|i| i.string_value())
        .collect();
    assert_eq!(a, b, "builtin xqa:paths must agree with local:paths");
    println!("  (xqa:paths builtin verified identical)");

    // ---- Q12: datacube over (publisher, year) --------------------------
    println!("\nQ12 — datacube by publisher and year (first 12 groups):");
    let q12 = engine.compile(
        r#"for $b in //book
           let $pub := if (empty($b/publisher)) then <publisher/> else $b/publisher
           for $d in xqa:cube(($pub, $b/year))
           group by $d into $group
           nest $b/price into $prices
           let $n := count($prices)
           order by count($group/*), $n descending
           return concat(
             if (empty($group/*)) then "(overall)"
             else string-join(for $dim in $group/*
                              return concat(string(node-name($dim)), "=",
                                            string($dim)), ", "),
             "  n=", $n, "  avg=", round-half-to-even(avg($prices), 2))"#,
    )?;
    let rows = q12.run(&ctx)?;
    for row in rows.iter().take(12) {
        println!("  {}", row.string_value());
    }
    println!("  ... {} cube groups total", rows.len());
    Ok(())
}
