//! Sales analytics: the paper's Q3 (multi-level aggregation), Q8
//! (moving-window over an ordered nest) and Q10 (ranking with output
//! numbering) on a generated sales workload.
//!
//! ```sh
//! cargo run --release --example sales_analytics [-- <sales> <seed>]
//! ```

use xqa::{serialize_sequence, DynamicContext, Engine};
use xqa_workload::{generate_sales, SalesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let sales: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2_000);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(42);

    let doc = generate_sales(&SalesConfig {
        sales,
        seed,
        ..Default::default()
    });
    let engine = Engine::new();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);

    // ---- Q3: state sales vs. region sales, per year -------------------
    println!("Q3 — state vs region totals (first 8 rows):");
    let q3 = engine.compile(
        r#"for $s in //sale
           group by $s/region into $region,
                year-from-dateTime($s/timestamp) into $year
           nest $s into $region-sales
           let $region-sum := sum( $region-sales/(quantity * price) )
           order by $year, $region
           return
             for $s in $region-sales
             group by $s/state into $state
             nest $s into $state-sales
             let $state-sum := sum( $state-sales/(quantity * price) )
             order by $state
             return concat($year, "  ", string($region), "/", string($state),
                           "  state=", round-half-to-even($state-sum, 2),
                           "  region=", round-half-to-even($region-sum, 2),
                           "  pct=", round-half-to-even($state-sum * 100 div $region-sum, 1))"#,
    )?;
    for row in q3.run(&ctx)?.iter().take(8) {
        println!("  {}", row.string_value());
    }

    // ---- Q8: moving window of the previous ten sales -------------------
    println!("\nQ8 — previous-ten-sales window (West region, first 5 sales):");
    let q8 = engine.compile(
        r#"for $s in //sale
           group by $s/region into $region
           nest $s order by $s/timestamp into $rs
           where string($region) = "West"
           return
             for $s1 at $i in $rs
             return concat(string($s1/timestamp),
                           "  sale=", round-half-to-even($s1/quantity * $s1/price, 2),
                           "  prev10=", round-half-to-even(
                               sum(for $s2 at $j in $rs
                                   where $j >= $i - 10 and $j < $i
                                   return $s2/quantity * $s2/price), 2))"#,
    )?;
    for row in q8.run(&ctx)?.iter().take(5) {
        println!("  {}", row.string_value());
    }

    // ---- Q8, three ways: nested iteration (the paper), an XQuery 3.0
    // sliding window, and the O(n) extension function ------------------
    println!(
        "\nQ8 variants — trailing 10-sale totals for the West region, all three formulations:"
    );
    let q8_window = engine.compile(
        r#"for $s in //sale
           group by $s/region into $region
           nest $s/quantity * $s/price order by $s/timestamp into $amounts
           where string($region) = "West"
           return
             for sliding window $w in $amounts
             start at $st when true()
             only end at $e when $e - $st = 9
             return round-half-to-even(sum($w), 2)"#,
    )?;
    let q8_extension = engine.compile(
        r#"for $s in //sale
           group by $s/region into $region
           nest $s/quantity * $s/price order by $s/timestamp into $amounts
           where string($region) = "West"
           return
             for $m at $i in xqa:moving-sum($amounts, 10)
             return (if ($i >= 10) then round-half-to-even($m, 2) else ())"#,
    )?;
    let w: Vec<String> = q8_window
        .run(&ctx)?
        .iter()
        .map(|i| i.string_value())
        .collect();
    let x: Vec<String> = q8_extension
        .run(&ctx)?
        .iter()
        .map(|i| i.string_value())
        .collect();
    assert_eq!(w, x, "window clause and xqa:moving-sum must agree");
    println!(
        "  {} windows; first five totals: {}",
        w.len(),
        w.iter().take(5).cloned().collect::<Vec<_>>().join(", ")
    );
    println!("  (sliding-window clause and xqa:moving-sum verified identical)");

    // ---- Q10: monthly regional ranking ---------------------------------
    println!("\nQ10 — monthly sales ranked by region (first 2 months):");
    let q10 = engine.compile(
        r#"for $s in //sale
           group by year-from-dateTime($s/timestamp) into $year,
                    month-from-dateTime($s/timestamp) into $month
           nest $s into $month-sales
           order by $year, $month
           return
             <monthly-report year="{$year}" month="{$month}">
               {for $ms in $month-sales
                group by $ms/region into $region
                nest $ms/quantity * $ms/price into $sales-amounts
                let $sum := sum($sales-amounts)
                order by $sum descending
                return at $rank
                  <regional-results>
                    <rank>{$rank}</rank>
                    <region>{string($region)}</region>
                    <total-sales>{round-half-to-even($sum, 2)}</total-sales>
                  </regional-results>}
             </monthly-report>"#,
    )?;
    let reports = q10.run(&ctx)?;
    for report in reports.iter().take(2) {
        println!("{}", serialize_sequence(std::slice::from_ref(report)));
    }

    println!(
        "\nprocessed {} sales; {} tuples grouped into {} groups across all queries",
        sales,
        ctx.stats.snapshot().tuples_grouped,
        ctx.stats.snapshot().groups_emitted
    );
    Ok(())
}
