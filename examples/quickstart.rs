//! Quickstart: compile and run queries with the paper's `group by`
//! extension in a few lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xqa::{parse_document, serialize_sequence_with, DynamicContext, Engine, SerializeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse an XML document.
    let doc = parse_document(
        r#"<bib>
             <book><title>Transaction Processing</title>
                   <publisher>Morgan Kaufmann</publisher><year>1993</year>
                   <price>65.00</price><discount>5.50</discount></book>
             <book><title>Readings in Database Systems</title>
                   <publisher>Morgan Kaufmann</publisher><year>1998</year>
                   <price>65.00</price><discount>3.00</discount></book>
             <book><title>Understanding the New SQL</title>
                   <publisher>Addison-Wesley</publisher><year>1993</year>
                   <price>54.95</price><discount>0.00</discount></book>
             <book><title>Self-Published Notes</title><year>1998</year>
                   <price>10.00</price><discount>0.00</discount></book>
           </bib>"#,
    )?;

    // 2. Compile the paper's Q1 — average net price per (publisher, year).
    //    Note the publisher-less book: it forms its own group, which the
    //    pre-extension formulation of this query cannot express.
    let engine = Engine::new();
    let query = engine.compile(
        r#"for $b in //book
           group by $b/publisher into $p, $b/year into $y
           nest $b/price - $b/discount into $netprices
           order by $p, $y
           return
             <group publisher="{string($p)}" year="{$y}">
               <books>{count($netprices)}</books>
               <avg-net-price>{avg($netprices)}</avg-net-price>
             </group>"#,
    )?;

    // 3. Run it against the document.
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let result = query.run(&ctx)?;

    println!("Q1 — average net price per (publisher, year):\n");
    println!(
        "{}\n",
        serialize_sequence_with(&result, SerializeOptions::pretty())
    );

    // 4. Ranking with output numbering (§4): no second FLWOR needed.
    let ranked = engine.compile(
        r#"for $b in //book
           order by $b/price - $b/discount descending
           return at $rank
             <rank n="{$rank}">{string($b/title)}</rank>"#,
    )?;
    println!("Ranking by net price (output numbering):\n");
    for item in ranked.run(&ctx)? {
        println!("  {}", item.string_value());
    }

    // 5. The evaluator keeps plan-shape statistics.
    let stats = ctx.stats.snapshot();
    println!(
        "\nstats: {} nodes visited, {} tuples grouped into {} groups",
        stats.nodes_visited, stats.tuples_grouped, stats.groups_emitted
    );
    Ok(())
}
