//! Abstract syntax tree for the XQuery subset plus the SIGMOD'05
//! extensions.
//!
//! The grammar implemented is the paper's extended FLWOR (§3.5):
//!
//! ```text
//! FLWORExpr ::= (ForClause | LetClause)+ WhereClause?
//!               (GroupByClause LetClause* WhereClause?)?
//!               OrderByClause? ReturnClause
//! GroupByClause ::= "group" "by"
//!               Expr "into" "$" VarName ("using" QName)?
//!               ("," Expr "into" "$" VarName ("using" QName)?)*
//!               ("nest" Expr OrderByClause? "into" "$" VarName
//!               ("," Expr OrderByClause? "into" "$" VarName)*)?
//! ReturnClause ::= "return" ("at" "$" VarName)? Expr
//! ```
//!
//! plus the XQuery 1.0 core needed to express every query in the paper:
//! paths, predicates, constructors, quantified and conditional
//! expressions, arithmetic/comparison/logic, and user function
//! declarations.

use std::fmt;

/// A half-open byte range into the query source, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// The union of two spans.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A lexical QName as written in the query (prefix not resolved).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    /// Optional prefix.
    pub prefix: Option<String>,
    /// Local part.
    pub local: String,
}

impl Name {
    /// Unprefixed name.
    pub fn local(local: impl Into<String>) -> Name {
        Name {
            prefix: None,
            local: local.into(),
        }
    }

    /// Prefixed name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Name {
        Name {
            prefix: Some(prefix.into()),
            local: local.into(),
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => f.write_str(&self.local),
        }
    }
}

/// A complete query: prolog plus body expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Prolog declarations.
    pub prolog: Prolog,
    /// The query body.
    pub body: Expr,
}

/// Prolog declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Prolog {
    /// `declare ordering ordered|unordered` (§3.4.1 controls nesting order).
    pub ordering: Option<OrderingMode>,
    /// `declare function local:f(...) {...}` declarations.
    pub functions: Vec<FunctionDecl>,
    /// `declare variable $v := expr` declarations.
    pub variables: Vec<VarDecl>,
}

/// The static ordering mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMode {
    /// Tuple/result order is significant (the default).
    Ordered,
    /// Order is implementation-defined.
    Unordered,
}

/// A user function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (e.g. `local:set-equal`).
    pub name: Name,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Declared return type, if any.
    pub return_type: Option<SequenceType>,
    /// Function body.
    pub body: Expr,
    /// Source location.
    pub span: Span,
}

/// One formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Variable name (without the `$`).
    pub name: String,
    /// Declared type, if any.
    pub ty: Option<SequenceType>,
}

/// A prolog variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name (without the `$`).
    pub name: String,
    /// Declared type, if any.
    pub ty: Option<SequenceType>,
    /// Initializer.
    pub init: Expr,
}

/// A sequence type: item type plus occurrence indicator.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceType {
    /// The item type.
    pub item: ItemType,
    /// How many items are allowed.
    pub occurrence: Occurrence,
}

impl SequenceType {
    /// `item()*` — anything.
    pub fn any() -> SequenceType {
        SequenceType {
            item: ItemType::AnyItem,
            occurrence: Occurrence::ZeroOrMore,
        }
    }
}

/// Item types in sequence-type syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemType {
    /// `item()`
    AnyItem,
    /// `node()`
    AnyNode,
    /// `element()` / `element(name)`
    Element(Option<Name>),
    /// `attribute()` / `attribute(name)`
    Attribute(Option<Name>),
    /// `document-node()`
    Document,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    ProcessingInstruction,
    /// A named atomic type, e.g. `xs:boolean`.
    Atomic(Name),
    /// `empty-sequence()`
    EmptySequence,
}

/// Occurrence indicators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// Exactly one.
    One,
    /// `?` — zero or one.
    Optional,
    /// `*` — zero or more.
    ZeroOrMore,
    /// `+` — one or more.
    OneOrMore,
}

/// An expression: kind plus source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression kind.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Construct an expression.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// String literal.
    StringLit(String),
    /// Integer literal.
    IntegerLit(i64),
    /// Decimal literal (kept lexically; engine parses to `Decimal`).
    DecimalLit(String),
    /// Double literal.
    DoubleLit(f64),
    /// `$name`
    VarRef(String),
    /// `.` — the context item.
    ContextItem,
    /// `()` or `(a, b, c)` — sequence construction.
    Sequence(Vec<Expr>),
    /// `a to b`
    Range(Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary `+`/`-`.
    Unary(UnaryOp, Box<Expr>),
    /// General comparison (`=`, `!=`, `<`, ...) — existential.
    GeneralComp(Comparison, Box<Expr>, Box<Expr>),
    /// Value comparison (`eq`, `ne`, `lt`, ...).
    ValueComp(Comparison, Box<Expr>, Box<Expr>),
    /// Node comparison (`is`, `<<`, `>>`).
    NodeComp(NodeComparison, Box<Expr>, Box<Expr>),
    /// `and`
    And(Box<Expr>, Box<Expr>),
    /// `or`
    Or(Box<Expr>, Box<Expr>),
    /// Set operations on node sequences.
    SetOp(SetOp, Box<Expr>, Box<Expr>),
    /// `if (c) then t else e`
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        otherwise: Box<Expr>,
    },
    /// `some`/`every` `$v in e (, ...) satisfies p`
    Quantified {
        /// `some` or `every`.
        kind: Quantifier,
        /// The `in` bindings.
        bindings: Vec<(String, Expr)>,
        /// The `satisfies` predicate.
        satisfies: Box<Expr>,
    },
    /// A FLWOR expression (with the paper's extensions).
    Flwor(Box<Flwor>),
    /// A path expression.
    Path(Box<Path>),
    /// `base[pred1][pred2]` applied to a non-step expression.
    Filter {
        /// The base expression.
        base: Box<Expr>,
        /// Predicates, applied left to right.
        predicates: Vec<Expr>,
    },
    /// A (possibly user-defined) function call.
    FunctionCall {
        /// Function name.
        name: Name,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Direct element constructor `<name attr="...">{...}</name>`.
    DirectElement(Box<DirectElement>),
    /// Direct comment constructor `<!-- ... -->`.
    DirectComment(String),
    /// Direct PI constructor `<?target data?>`.
    DirectPi(String, String),
    /// Computed element constructor `element name { content }`.
    ComputedElement {
        /// Element name.
        name: Name,
        /// Content expression (empty sequence if absent).
        content: Option<Box<Expr>>,
    },
    /// Computed attribute constructor `attribute name { content }`.
    ComputedAttribute {
        /// Attribute name.
        name: Name,
        /// Value expression.
        content: Option<Box<Expr>>,
    },
    /// Computed text constructor `text { content }`.
    ComputedText(Option<Box<Expr>>),
    /// `expr instance of SequenceType`
    InstanceOf(Box<Expr>, SequenceType),
    /// `expr cast as AtomicType?` (the `?` allows empty input).
    CastAs(Box<Expr>, Name, bool),
    /// `expr castable as AtomicType?` — true when the cast would succeed.
    CastableAs(Box<Expr>, Name, bool),
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `idiv`
    IDiv,
    /// `mod`
    Mod,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `+`
    Plus,
}

/// Comparison operators (shared by general and value comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=` / `eq`
    Eq,
    /// `!=` / `ne`
    Ne,
    /// `<` / `lt`
    Lt,
    /// `<=` / `le`
    Le,
    /// `>` / `gt`
    Gt,
    /// `>=` / `ge`
    Ge,
}

/// Node comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeComparison {
    /// `is` — node identity.
    Is,
    /// `<<` — precedes in document order.
    Precedes,
    /// `>>` — follows in document order.
    Follows,
}

/// Sequence set operators (node sequences only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `union` / `|`
    Union,
    /// `intersect`
    Intersect,
    /// `except`
    Except,
}

/// Quantifier kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `some ... satisfies`
    Some,
    /// `every ... satisfies`
    Every,
}

/// A FLWOR expression with the paper's extended clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Flwor {
    /// Interleaved `for`/`let` clauses (at least one).
    pub clauses: Vec<InitialClause>,
    /// Pre-grouping `where`.
    pub where_clause: Option<Expr>,
    /// The `group by` clause (§3).
    pub group_by: Option<GroupByClause>,
    /// `let` (and 3.0-style `count`) clauses after `group by`
    /// (compute group properties, Q4).
    pub post_group_clauses: Vec<PostGroupClause>,
    /// `where` after `group by` (filter groups, Q4).
    pub post_group_where: Option<Expr>,
    /// The `order by` clause.
    pub order_by: Option<OrderByClause>,
    /// Output positional variable: `return at $rank` (§4).
    pub return_at: Option<String>,
    /// The `return` expression.
    pub return_expr: Expr,
}

/// A clause allowed after `group by`: `let` or `count`.
#[derive(Debug, Clone, PartialEq)]
pub enum PostGroupClause {
    /// `let $v := e`
    Let(LetBinding),
    /// `count $v`
    Count(String),
}

/// A `for`, `let`, `count` or window clause.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialClause {
    /// `for $v (at $i)? (as T)? in e, ...`
    For(Vec<ForBinding>),
    /// `let $v (as T)? := e, ...`
    Let(Vec<LetBinding>),
    /// `count $v` — binds the 1-based ordinal of each tuple at this
    /// point in the pipeline (XQuery 3.0's descendant of the paper's
    /// output-numbering proposal; unlike `return at $v` it numbers the
    /// stream *before* any later `order by`).
    Count(String),
    /// `for tumbling|sliding window $w in E start ... end ...` —
    /// XQuery 3.0 windows, the standardized form of the paper's
    /// moving-window motivation (§3.4.1).
    Window(Box<WindowClause>),
}

/// A window clause.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowClause {
    /// `sliding` (overlapping) vs `tumbling` (disjoint).
    pub sliding: bool,
    /// The window variable (bound to the window's item sequence).
    pub var: String,
    /// The binding sequence.
    pub expr: Expr,
    /// The `start` condition.
    pub start: WindowCondition,
    /// The `end` condition (required for `sliding`).
    pub end: Option<WindowCondition>,
    /// `only end`: windows whose end condition never matches are
    /// dropped instead of closing at the end of the sequence.
    pub only_end: bool,
}

/// One window boundary condition: optional variables plus the `when`
/// predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCondition {
    /// `$cur` — the boundary item.
    pub item_var: Option<String>,
    /// `at $p` — the boundary item's position in the binding sequence.
    pub at_var: Option<String>,
    /// `previous $p` — the item before the boundary (empty at the edge).
    pub previous_var: Option<String>,
    /// `next $n` — the item after the boundary (empty at the edge).
    pub next_var: Option<String>,
    /// The `when` predicate.
    pub when: Expr,
}

/// One binding of a `for` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ForBinding {
    /// Bound variable (without `$`).
    pub var: String,
    /// Input positional variable (`at $i`).
    pub at: Option<String>,
    /// Declared type.
    pub ty: Option<SequenceType>,
    /// The binding sequence.
    pub expr: Expr,
}

/// One binding of a `let` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct LetBinding {
    /// Bound variable (without `$`).
    pub var: String,
    /// Declared type.
    pub ty: Option<SequenceType>,
    /// The bound expression.
    pub expr: Expr,
}

/// The `group by` clause (§3.1, §3.3, §3.4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByClause {
    /// Grouping expressions and their output variables.
    pub keys: Vec<GroupKey>,
    /// Nesting expressions and their output variables.
    pub nests: Vec<NestBinding>,
}

/// `Expr into $var (using QName)?`
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKey {
    /// The grouping expression (evaluated per input tuple).
    pub expr: Expr,
    /// The grouping variable bound in the output stream.
    pub var: String,
    /// Custom equality function (§3.3), e.g. `local:set-equal`.
    pub using: Option<Name>,
}

/// `nest Expr (order by ...)? into $var`
#[derive(Debug, Clone, PartialEq)]
pub struct NestBinding {
    /// The nesting expression (evaluated per input tuple).
    pub expr: Expr,
    /// Optional per-nest ordering of the group's input tuples (§3.4.1).
    pub order_by: Option<OrderByClause>,
    /// The nesting variable bound in the output stream.
    pub var: String,
}

/// An `order by` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByClause {
    /// `stable order by` — preserve binding order among equal keys.
    pub stable: bool,
    /// Ordering keys, major first.
    pub specs: Vec<OrderSpec>,
}

/// One ordering key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// The key expression.
    pub expr: Expr,
    /// `descending`?
    pub descending: bool,
    /// `empty greatest` / `empty least`.
    pub empty: Option<EmptyOrder>,
}

/// Where empty keys sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmptyOrder {
    /// `empty greatest`
    Greatest,
    /// `empty least`
    Least,
}

/// A path expression, e.g. `//book/author[. = "Gray"]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Where the path starts.
    pub start: PathStart,
    /// The steps, left to right.
    pub steps: Vec<Step>,
}

/// Path starting point.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStart {
    /// Relative path: starts at the context item.
    Context,
    /// `/...` — the root of the context node's tree.
    Root,
    /// `expr/...` — any primary expression.
    Expr(Expr),
}

/// One path step: an axis step, or (per XPath 2.0) any expression
/// evaluated once per context item — the paper uses both forms, e.g.
/// `$region-sales/(quantity * price)` and
/// `//sale/year-from-dateTime(timestamp)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `axis::test[preds]`
    Axis(AxisStep),
    /// `expr[preds]` evaluated with the context item bound.
    Expr {
        /// The step expression.
        expr: Expr,
        /// Predicates applied to the step's result per context item.
        predicates: Vec<Expr>,
    },
}

/// An axis step.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisStep {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates (positional semantics; reverse axes count backwards).
    pub predicates: Vec<Expr>,
}

/// Supported axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `child::` (the default).
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::` (what `//` desugars to).
    DescendantOrSelf,
    /// `attribute::` / `@`
    Attribute,
    /// `self::`
    SelfAxis,
    /// `parent::` / `..`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
}

impl Axis {
    /// True for axes that walk *up* or *backwards* (reverse axes):
    /// positional predicates count from the far end on these.
    pub fn is_reverse(&self) -> bool {
        matches!(
            self,
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::PrecedingSibling
        )
    }
}

/// Node tests.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// A name test (`book`, `x:para`).
    Name(Name),
    /// `*`
    Wildcard,
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` (optionally with a target).
    ProcessingInstruction(Option<String>),
    /// `element()` / `element(name)`
    Element(Option<Name>),
    /// `attribute()` / `attribute(name)`
    Attribute(Option<Name>),
    /// `document-node()`
    Document,
}

/// A direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectElement {
    /// Element name.
    pub name: Name,
    /// Attributes: name plus value template parts.
    pub attributes: Vec<(Name, Vec<AttrPart>)>,
    /// Content parts in document order.
    pub content: Vec<ContentPart>,
}

/// One part of an attribute value template.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    /// Literal text (entities already resolved).
    Literal(String),
    /// `{ expr }` — the expression's atomized, space-joined value.
    Enclosed(Expr),
}

/// One part of element content.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentPart {
    /// Literal text (entities resolved; boundary whitespace stripped).
    Literal(String),
    /// `{ expr }` — evaluated and inserted per the construction rules.
    Enclosed(Expr),
    /// A nested direct constructor (element, comment or PI).
    Child(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
    }

    #[test]
    fn name_display() {
        assert_eq!(Name::local("book").to_string(), "book");
        assert_eq!(Name::prefixed("local", "cube").to_string(), "local:cube");
    }

    #[test]
    fn reverse_axes() {
        assert!(Axis::Parent.is_reverse());
        assert!(Axis::PrecedingSibling.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(!Axis::Descendant.is_reverse());
    }
}
