//! Recursive-descent parser for the XQuery subset plus the paper's
//! extensions.
//!
//! The parser drives the [`Lexer`] with up to two tokens of lookahead in
//! expression mode and switches it into raw mode inside direct
//! constructors. Keywords are matched contextually — `for` is only a
//! keyword when followed by a `$variable`, `order` only at a clause
//! boundary, and so on — which is how XQuery resolves its
//! keywords-are-names ambiguity.

use crate::ast::*;
use crate::error::{SyntaxError, SyntaxResult};
use crate::lexer::{AttrChunkEnd, ContentChunkEnd, Lexer, Token};
use std::collections::VecDeque;

/// Parse a complete query (prolog + body).
pub fn parse_query(source: &str) -> SyntaxResult<Module> {
    let mut p = Parser::new(source);
    let prolog = p.parse_prolog()?;
    let body = p.parse_expr()?;
    p.expect_eof()?;
    Ok(Module { prolog, body })
}

/// Parse a standalone expression (no prolog allowed).
pub fn parse_expression(source: &str) -> SyntaxResult<Expr> {
    let mut p = Parser::new(source);
    let body = p.parse_expr()?;
    p.expect_eof()?;
    Ok(body)
}

/// Names reserved for kind tests and control syntax: these may not be
/// used as function names in calls (`text()` is a node test, not a call).
const RESERVED_FUNCTION_NAMES: &[&str] = &[
    "attribute",
    "comment",
    "document-node",
    "element",
    "empty-sequence",
    "if",
    "item",
    "node",
    "processing-instruction",
    "text",
    "typeswitch",
];

/// Maximum expression nesting depth; guards the recursive-descent
/// parser against stack overflow on adversarial input.
const MAX_PARSE_DEPTH: usize = 64;

struct Parser<'a> {
    lexer: Lexer<'a>,
    buffer: VecDeque<(Token, Span)>,
    depth: usize,
}

/// Result of parsing one path step.
enum StepOrExpr {
    Step(AxisStep),
    Primary { expr: Expr, predicates: Vec<Expr> },
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Parser<'a> {
        Parser {
            lexer: Lexer::new(source),
            buffer: VecDeque::new(),
            depth: 0,
        }
    }

    // ---- token plumbing ----------------------------------------------

    fn fill(&mut self, n: usize) -> SyntaxResult<()> {
        while self.buffer.len() < n {
            let t = self.lexer.next_token()?;
            self.buffer.push_back(t);
        }
        Ok(())
    }

    fn peek(&mut self) -> SyntaxResult<&Token> {
        self.fill(1)?;
        Ok(&self.buffer[0].0)
    }

    fn peek2(&mut self) -> SyntaxResult<&Token> {
        self.fill(2)?;
        Ok(&self.buffer[1].0)
    }

    fn peek_span(&mut self) -> SyntaxResult<Span> {
        self.fill(1)?;
        Ok(self.buffer[0].1)
    }

    fn next(&mut self) -> SyntaxResult<(Token, Span)> {
        self.fill(1)?;
        Ok(self.buffer.pop_front().expect("buffer filled"))
    }

    fn error_here(&mut self, message: impl Into<String>) -> SyntaxError {
        let offset = self
            .buffer
            .front()
            .map(|(_, s)| s.start)
            .unwrap_or_else(|| self.lexer.position());
        SyntaxError::at(self.lexer.source(), offset, message)
    }

    fn expect(&mut self, want: &Token) -> SyntaxResult<Span> {
        let (t, span) = self.next()?;
        if &t == want {
            Ok(span)
        } else {
            Err(SyntaxError::at(
                self.lexer.source(),
                span.start,
                format!("expected {}, found {}", want.describe(), t.describe()),
            ))
        }
    }

    fn expect_eof(&mut self) -> SyntaxResult<()> {
        let (t, span) = self.next()?;
        if t == Token::Eof {
            Ok(())
        } else {
            Err(SyntaxError::at(
                self.lexer.source(),
                span.start,
                format!("unexpected {} after end of expression", t.describe()),
            ))
        }
    }

    /// True when the current token is the bare name `kw`.
    fn at_keyword(&mut self, kw: &str) -> SyntaxResult<bool> {
        Ok(matches!(self.peek()?, Token::NCName(s) if s == kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> SyntaxResult<bool> {
        if self.at_keyword(kw)? {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SyntaxResult<Span> {
        if self.at_keyword(kw)? {
            Ok(self.next()?.1)
        } else {
            let found = self.peek()?.describe();
            Err(self.error_here(format!("expected keyword '{kw}', found {found}")))
        }
    }

    fn expect_var(&mut self) -> SyntaxResult<(String, Span)> {
        let (t, span) = self.next()?;
        match t {
            Token::VarName(v) => Ok((v, span)),
            other => Err(SyntaxError::at(
                self.lexer.source(),
                span.start,
                format!("expected a $variable, found {}", other.describe()),
            )),
        }
    }

    /// Consume a (possibly prefixed) name token.
    fn expect_name(&mut self) -> SyntaxResult<(Name, Span)> {
        let (t, span) = self.next()?;
        match t {
            Token::NCName(l) => Ok((Name::local(l), span)),
            Token::QName(p, l) => Ok((Name::prefixed(p, l), span)),
            other => Err(SyntaxError::at(
                self.lexer.source(),
                span.start,
                format!("expected a name, found {}", other.describe()),
            )),
        }
    }

    // ---- prolog -------------------------------------------------------

    fn parse_prolog(&mut self) -> SyntaxResult<Prolog> {
        let mut prolog = Prolog::default();
        // Optional version declaration.
        if self.at_keyword("xquery")? && matches!(self.peek2()?, Token::NCName(s) if s == "version")
        {
            self.next()?;
            self.next()?;
            match self.next()?.0 {
                Token::StringLit(v) if v == "1.0" || v == "1.1" || v == "3.0" => {}
                Token::StringLit(v) => {
                    return Err(self.error_here(format!("unsupported XQuery version {v:?}")))
                }
                other => {
                    return Err(self.error_here(format!(
                        "expected version string, found {}",
                        other.describe()
                    )))
                }
            }
            self.expect(&Token::Semicolon)?;
        }
        while self.at_keyword("declare")? {
            // Only commit when the next token is a declaration keyword;
            // otherwise `declare` is a path step in the body.
            let is_decl = matches!(
                self.peek2()?,
                Token::NCName(s) if s == "function" || s == "variable" || s == "ordering"
            );
            if !is_decl {
                break;
            }
            self.next()?; // declare
            if self.eat_keyword("function")? {
                prolog.functions.push(self.parse_function_decl()?);
            } else if self.eat_keyword("variable")? {
                let (var, _) = self.expect_var()?;
                let ty = self.try_parse_type_declaration()?;
                self.expect(&Token::Assign)?;
                let init = self.parse_expr_single()?;
                prolog.variables.push(VarDecl {
                    name: var,
                    ty,
                    init,
                });
            } else {
                self.expect_keyword("ordering")?;
                prolog.ordering = Some(if self.eat_keyword("ordered")? {
                    OrderingMode::Ordered
                } else {
                    self.expect_keyword("unordered")?;
                    OrderingMode::Unordered
                });
            }
            self.expect(&Token::Semicolon)?;
        }
        Ok(prolog)
    }

    fn parse_function_decl(&mut self) -> SyntaxResult<FunctionDecl> {
        let (name, start_span) = self.expect_name()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek()? != &Token::RParen {
            loop {
                let (var, _) = self.expect_var()?;
                let ty = self.try_parse_type_declaration()?;
                params.push(Param { name: var, ty });
                if !self.eat_token(&Token::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let return_type = self.try_parse_type_declaration()?;
        self.expect(&Token::LBrace)?;
        let body = self.parse_expr()?;
        let end = self.expect(&Token::RBrace)?;
        Ok(FunctionDecl {
            name,
            params,
            return_type,
            body,
            span: start_span.merge(end),
        })
    }

    fn eat_token(&mut self, t: &Token) -> SyntaxResult<bool> {
        if self.peek()? == t {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// `as SequenceType`, if present.
    fn try_parse_type_declaration(&mut self) -> SyntaxResult<Option<SequenceType>> {
        if self.eat_keyword("as")? {
            Ok(Some(self.parse_sequence_type()?))
        } else {
            Ok(None)
        }
    }

    fn parse_sequence_type(&mut self) -> SyntaxResult<SequenceType> {
        let item = self.parse_item_type()?;
        if matches!(item, ItemType::EmptySequence) {
            return Ok(SequenceType {
                item,
                occurrence: Occurrence::ZeroOrMore,
            });
        }
        let occurrence = match self.peek()? {
            Token::Question => {
                self.next()?;
                Occurrence::Optional
            }
            Token::Star => {
                self.next()?;
                Occurrence::ZeroOrMore
            }
            Token::Plus => {
                self.next()?;
                Occurrence::OneOrMore
            }
            _ => Occurrence::One,
        };
        Ok(SequenceType { item, occurrence })
    }

    fn parse_item_type(&mut self) -> SyntaxResult<ItemType> {
        let (name, _) = self.expect_name()?;
        let is_paren = self.peek()? == &Token::LParen;
        if name.prefix.is_none() && is_paren {
            self.next()?; // (
            let kind = match name.local.as_str() {
                "item" => ItemType::AnyItem,
                "node" => ItemType::AnyNode,
                "text" => ItemType::Text,
                "comment" => ItemType::Comment,
                "processing-instruction" => ItemType::ProcessingInstruction,
                "document-node" => ItemType::Document,
                "empty-sequence" => ItemType::EmptySequence,
                "element" | "attribute" => {
                    let inner = if self.peek()? == &Token::RParen || self.eat_token(&Token::Star)? {
                        None
                    } else {
                        Some(self.expect_name()?.0)
                    };
                    self.expect(&Token::RParen)?;
                    return Ok(if name.local == "element" {
                        ItemType::Element(inner)
                    } else {
                        ItemType::Attribute(inner)
                    });
                }
                other => return Err(self.error_here(format!("unknown item type {other}()"))),
            };
            self.expect(&Token::RParen)?;
            Ok(kind)
        } else {
            Ok(ItemType::Atomic(name))
        }
    }

    // ---- expressions ---------------------------------------------------

    /// Expr ::= ExprSingle ("," ExprSingle)*
    fn parse_expr(&mut self) -> SyntaxResult<Expr> {
        let first = self.parse_expr_single()?;
        if self.peek()? != &Token::Comma {
            return Ok(first);
        }
        let start = first.span;
        let mut items = vec![first];
        while self.eat_token(&Token::Comma)? {
            items.push(self.parse_expr_single()?);
        }
        let span = start.merge(items.last().expect("non-empty").span);
        Ok(Expr::new(ExprKind::Sequence(items), span))
    }

    fn parse_expr_single(&mut self) -> SyntaxResult<Expr> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(self.error_here(format!(
                "expression nesting exceeds the supported depth ({MAX_PARSE_DEPTH})"
            )));
        }
        self.depth += 1;
        let result = self.parse_expr_single_inner();
        self.depth -= 1;
        result
    }

    fn parse_expr_single_inner(&mut self) -> SyntaxResult<Expr> {
        if let Token::NCName(kw) = self.peek()? {
            let kw = kw.clone();
            match kw.as_str() {
                "for" | "let" if matches!(self.peek2()?, Token::VarName(_)) => {
                    return self.parse_flwor();
                }
                "for" if matches!(self.peek2()?, Token::NCName(s) if s == "tumbling" || s == "sliding") =>
                {
                    return self.parse_flwor();
                }
                "some" | "every" if matches!(self.peek2()?, Token::VarName(_)) => {
                    return self.parse_quantified(&kw);
                }
                "if" if self.peek2()? == &Token::LParen => {
                    return self.parse_if();
                }
                "element" | "attribute"
                    if matches!(self.peek2()?, Token::NCName(_) | Token::QName(..)) =>
                {
                    return self.parse_computed_constructor(&kw);
                }
                "text" if self.peek2()? == &Token::LBrace => {
                    return self.parse_computed_constructor("text");
                }
                _ => {}
            }
        }
        self.parse_or_expr()
    }

    fn parse_if(&mut self) -> SyntaxResult<Expr> {
        let start = self.expect_keyword("if")?;
        self.expect(&Token::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        self.expect_keyword("then")?;
        let then = self.parse_expr_single()?;
        self.expect_keyword("else")?;
        let otherwise = self.parse_expr_single()?;
        let span = start.merge(otherwise.span);
        Ok(Expr::new(
            ExprKind::If {
                cond: Box::new(cond),
                then: Box::new(then),
                otherwise: Box::new(otherwise),
            },
            span,
        ))
    }

    fn parse_quantified(&mut self, kw: &str) -> SyntaxResult<Expr> {
        let kind = if kw == "some" {
            Quantifier::Some
        } else {
            Quantifier::Every
        };
        let start = self.next()?.1; // some/every
        let mut bindings = Vec::new();
        loop {
            let (var, _) = self.expect_var()?;
            self.expect_keyword("in")?;
            let expr = self.parse_expr_single()?;
            bindings.push((var, expr));
            if !self.eat_token(&Token::Comma)? {
                break;
            }
        }
        self.expect_keyword("satisfies")?;
        let satisfies = self.parse_expr_single()?;
        let span = start.merge(satisfies.span);
        Ok(Expr::new(
            ExprKind::Quantified {
                kind,
                bindings,
                satisfies: Box::new(satisfies.clone()),
            },
            span,
        ))
    }

    fn parse_computed_constructor(&mut self, kw: &str) -> SyntaxResult<Expr> {
        let start = self.next()?.1; // element/attribute/text
        if kw == "text" {
            self.expect(&Token::LBrace)?;
            let content = if self.peek()? == &Token::RBrace {
                None
            } else {
                Some(Box::new(self.parse_expr()?))
            };
            let end = self.expect(&Token::RBrace)?;
            return Ok(Expr::new(ExprKind::ComputedText(content), start.merge(end)));
        }
        let (name, _) = self.expect_name()?;
        self.expect(&Token::LBrace)?;
        let content = if self.peek()? == &Token::RBrace {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let end = self.expect(&Token::RBrace)?;
        let span = start.merge(end);
        Ok(Expr::new(
            if kw == "element" {
                ExprKind::ComputedElement { name, content }
            } else {
                ExprKind::ComputedAttribute { name, content }
            },
            span,
        ))
    }

    // ---- FLWOR ----------------------------------------------------------

    fn parse_flwor(&mut self) -> SyntaxResult<Expr> {
        let start = self.peek_span()?;
        let mut clauses = Vec::new();
        loop {
            if self.at_keyword("for")? && matches!(self.peek2()?, Token::VarName(_)) {
                self.next()?;
                let mut bindings = Vec::new();
                loop {
                    let (var, _) = self.expect_var()?;
                    let ty = self.try_parse_type_declaration()?;
                    let at = if self.at_keyword("at")? && matches!(self.peek2()?, Token::VarName(_))
                    {
                        self.next()?;
                        Some(self.expect_var()?.0)
                    } else {
                        None
                    };
                    self.expect_keyword("in")?;
                    let expr = self.parse_expr_single()?;
                    bindings.push(ForBinding { var, at, ty, expr });
                    if !self.eat_token(&Token::Comma)? {
                        break;
                    }
                }
                clauses.push(InitialClause::For(bindings));
            } else if self.at_keyword("for")?
                && matches!(self.peek2()?, Token::NCName(s) if s == "tumbling" || s == "sliding")
            {
                self.next()?;
                clauses.push(InitialClause::Window(Box::new(self.parse_window_clause()?)));
            } else if self.at_keyword("let")? && matches!(self.peek2()?, Token::VarName(_)) {
                self.next()?;
                clauses.push(InitialClause::Let(self.parse_let_bindings()?));
            } else if self.at_keyword("count")? && matches!(self.peek2()?, Token::VarName(_)) {
                self.next()?;
                clauses.push(InitialClause::Count(self.expect_var()?.0));
            } else {
                break;
            }
        }
        if clauses.is_empty() {
            return Err(self.error_here("FLWOR expression requires at least one for/let clause"));
        }

        let where_clause = if self.eat_keyword("where")? {
            Some(self.parse_expr_single()?)
        } else {
            None
        };

        let group_by = if self.at_keyword("group")? {
            self.next()?;
            self.expect_keyword("by")?;
            Some(self.parse_group_by_body()?)
        } else {
            None
        };

        let mut post_group_clauses = Vec::new();
        let mut post_group_where = None;
        if group_by.is_some() {
            loop {
                if self.at_keyword("let")? && matches!(self.peek2()?, Token::VarName(_)) {
                    self.next()?;
                    post_group_clauses.extend(
                        self.parse_let_bindings()?
                            .into_iter()
                            .map(PostGroupClause::Let),
                    );
                } else if self.at_keyword("count")? && matches!(self.peek2()?, Token::VarName(_)) {
                    self.next()?;
                    post_group_clauses.push(PostGroupClause::Count(self.expect_var()?.0));
                } else {
                    break;
                }
            }
            if self.eat_keyword("where")? {
                post_group_where = Some(self.parse_expr_single()?);
            }
        }

        let order_by = self.try_parse_order_by()?;

        self.expect_keyword("return")?;
        let return_at = if self.at_keyword("at")? && matches!(self.peek2()?, Token::VarName(_)) {
            self.next()?;
            Some(self.expect_var()?.0)
        } else {
            None
        };
        let return_expr = self.parse_expr_single()?;
        let span = start.merge(return_expr.span);
        Ok(Expr::new(
            ExprKind::Flwor(Box::new(Flwor {
                clauses,
                where_clause,
                group_by,
                post_group_clauses,
                post_group_where,
                order_by,
                return_at,
                return_expr,
            })),
            span,
        ))
    }

    fn parse_let_bindings(&mut self) -> SyntaxResult<Vec<LetBinding>> {
        let mut bindings = Vec::new();
        loop {
            let (var, _) = self.expect_var()?;
            let ty = self.try_parse_type_declaration()?;
            self.expect(&Token::Assign)?;
            let expr = self.parse_expr_single()?;
            bindings.push(LetBinding { var, ty, expr });
            if !self.eat_token(&Token::Comma)? {
                break;
            }
        }
        Ok(bindings)
    }

    /// A window clause; `for` has been consumed, `tumbling`/`sliding`
    /// is the current token.
    fn parse_window_clause(&mut self) -> SyntaxResult<WindowClause> {
        let sliding = if self.eat_keyword("sliding")? {
            true
        } else {
            self.expect_keyword("tumbling")?;
            false
        };
        self.expect_keyword("window")?;
        let (var, _) = self.expect_var()?;
        self.expect_keyword("in")?;
        let expr = self.parse_expr_single()?;
        self.expect_keyword("start")?;
        let start = self.parse_window_condition()?;
        let mut only_end = false;
        let end = if self.at_keyword("only")?
            && matches!(self.peek2()?, Token::NCName(s) if s == "end")
        {
            self.next()?;
            self.next()?;
            only_end = true;
            Some(self.parse_window_condition()?)
        } else if self.at_keyword("end")? {
            // `end` must introduce a window condition, not be a path
            // step: peek for the condition shape.
            self.next()?;
            Some(self.parse_window_condition()?)
        } else {
            None
        };
        if sliding && end.is_none() {
            return Err(self.error_here("sliding windows require an end condition"));
        }
        Ok(WindowClause {
            sliding,
            var,
            expr,
            start,
            end,
            only_end,
        })
    }

    /// `($cur)? ("at" $p)? ("previous" $x)? ("next" $y)? "when" Expr`
    fn parse_window_condition(&mut self) -> SyntaxResult<WindowCondition> {
        let item_var = if matches!(self.peek()?, Token::VarName(_)) {
            Some(self.expect_var()?.0)
        } else {
            None
        };
        let at_var = if self.at_keyword("at")? && matches!(self.peek2()?, Token::VarName(_)) {
            self.next()?;
            Some(self.expect_var()?.0)
        } else {
            None
        };
        let previous_var =
            if self.at_keyword("previous")? && matches!(self.peek2()?, Token::VarName(_)) {
                self.next()?;
                Some(self.expect_var()?.0)
            } else {
                None
            };
        let next_var = if self.at_keyword("next")? && matches!(self.peek2()?, Token::VarName(_)) {
            self.next()?;
            Some(self.expect_var()?.0)
        } else {
            None
        };
        self.expect_keyword("when")?;
        let when = self.parse_expr_single()?;
        Ok(WindowCondition {
            item_var,
            at_var,
            previous_var,
            next_var,
            when,
        })
    }

    /// The body of `group by` (keywords `group by` already consumed).
    fn parse_group_by_body(&mut self) -> SyntaxResult<GroupByClause> {
        let mut keys = Vec::new();
        loop {
            let expr = self.parse_expr_single()?;
            self.expect_keyword("into")?;
            let (var, _) = self.expect_var()?;
            let using = if self.eat_keyword("using")? {
                Some(self.expect_name()?.0)
            } else {
                None
            };
            keys.push(GroupKey { expr, var, using });
            if !self.eat_token(&Token::Comma)? {
                break;
            }
        }
        let mut nests = Vec::new();
        if self.eat_keyword("nest")? {
            loop {
                let expr = self.parse_expr_single()?;
                let order_by = self.try_parse_order_by()?;
                self.expect_keyword("into")?;
                let (var, _) = self.expect_var()?;
                nests.push(NestBinding {
                    expr,
                    order_by,
                    var,
                });
                if !self.eat_token(&Token::Comma)? {
                    break;
                }
            }
        }
        Ok(GroupByClause { keys, nests })
    }

    fn try_parse_order_by(&mut self) -> SyntaxResult<Option<OrderByClause>> {
        let stable = if self.at_keyword("stable")?
            && matches!(self.peek2()?, Token::NCName(s) if s == "order")
        {
            self.next()?;
            true
        } else {
            false
        };
        if !self.at_keyword("order")? || !matches!(self.peek2()?, Token::NCName(s) if s == "by") {
            if stable {
                return Err(self.error_here("expected 'order by' after 'stable'"));
            }
            return Ok(None);
        }
        self.next()?; // order
        self.next()?; // by
        let mut specs = Vec::new();
        loop {
            let expr = self.parse_expr_single()?;
            let descending = if self.eat_keyword("descending")? {
                true
            } else {
                self.eat_keyword("ascending")?;
                false
            };
            let empty = if self.at_keyword("empty")?
                && matches!(self.peek2()?, Token::NCName(s) if s == "greatest" || s == "least")
            {
                self.next()?;
                if self.eat_keyword("greatest")? {
                    Some(EmptyOrder::Greatest)
                } else {
                    self.expect_keyword("least")?;
                    Some(EmptyOrder::Least)
                }
            } else {
                None
            };
            specs.push(OrderSpec {
                expr,
                descending,
                empty,
            });
            if !self.eat_token(&Token::Comma)? {
                break;
            }
        }
        Ok(Some(OrderByClause { stable, specs }))
    }

    // ---- binary operator levels -----------------------------------------

    fn parse_or_expr(&mut self) -> SyntaxResult<Expr> {
        let mut lhs = self.parse_and_expr()?;
        while self.at_keyword("or")? {
            self.next()?;
            let rhs = self.parse_and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Or(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    // Note on the paper's §3.3 `local:set-equal`: as printed it reads
    // `... satisfies A and every $x in ... satisfies B`. Under the real
    // XQuery grammar that is a syntax error (quantified expressions are
    // not `and` operands), and any lenient parse silently moves the
    // `and` *inside* the innermost `satisfies` — changing the meaning
    // (the empty sequence would then merge into arbitrary groups). We
    // therefore keep the strict grammar; the function must be written
    // with explicit parentheses: `(every ... satisfies some ...
    // satisfies $i1 eq $i2) and (every ...)`.
    fn parse_and_expr(&mut self) -> SyntaxResult<Expr> {
        let mut lhs = self.parse_comparison_expr()?;
        while self.at_keyword("and")? {
            self.next()?;
            let rhs = self.parse_comparison_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::And(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn parse_comparison_expr(&mut self) -> SyntaxResult<Expr> {
        let lhs = self.parse_range_expr()?;
        // General comparisons.
        let general = match self.peek()? {
            Token::Eq => Some(Comparison::Eq),
            Token::Ne => Some(Comparison::Ne),
            Token::Lt => Some(Comparison::Lt),
            Token::Le => Some(Comparison::Le),
            Token::Gt => Some(Comparison::Gt),
            Token::Ge => Some(Comparison::Ge),
            _ => None,
        };
        if let Some(op) = general {
            self.next()?;
            let rhs = self.parse_range_expr()?;
            let span = lhs.span.merge(rhs.span);
            return Ok(Expr::new(
                ExprKind::GeneralComp(op, Box::new(lhs), Box::new(rhs)),
                span,
            ));
        }
        // Node comparisons (token forms).
        let node_cmp = match self.peek()? {
            Token::Precedes => Some(NodeComparison::Precedes),
            Token::Follows => Some(NodeComparison::Follows),
            _ => None,
        };
        if let Some(op) = node_cmp {
            self.next()?;
            let rhs = self.parse_range_expr()?;
            let span = lhs.span.merge(rhs.span);
            return Ok(Expr::new(
                ExprKind::NodeComp(op, Box::new(lhs), Box::new(rhs)),
                span,
            ));
        }
        // Keyword comparisons.
        if let Token::NCName(kw) = self.peek()? {
            let value = match kw.as_str() {
                "eq" => Some(Comparison::Eq),
                "ne" => Some(Comparison::Ne),
                "lt" => Some(Comparison::Lt),
                "le" => Some(Comparison::Le),
                "gt" => Some(Comparison::Gt),
                "ge" => Some(Comparison::Ge),
                _ => None,
            };
            if let Some(op) = value {
                self.next()?;
                let rhs = self.parse_range_expr()?;
                let span = lhs.span.merge(rhs.span);
                return Ok(Expr::new(
                    ExprKind::ValueComp(op, Box::new(lhs), Box::new(rhs)),
                    span,
                ));
            }
            if kw == "is" {
                self.next()?;
                let rhs = self.parse_range_expr()?;
                let span = lhs.span.merge(rhs.span);
                return Ok(Expr::new(
                    ExprKind::NodeComp(NodeComparison::Is, Box::new(lhs), Box::new(rhs)),
                    span,
                ));
            }
        }
        Ok(lhs)
    }

    fn parse_range_expr(&mut self) -> SyntaxResult<Expr> {
        let lhs = self.parse_additive_expr()?;
        if self.at_keyword("to")? {
            self.next()?;
            let rhs = self.parse_additive_expr()?;
            let span = lhs.span.merge(rhs.span);
            return Ok(Expr::new(
                ExprKind::Range(Box::new(lhs), Box::new(rhs)),
                span,
            ));
        }
        Ok(lhs)
    }

    fn parse_additive_expr(&mut self) -> SyntaxResult<Expr> {
        let mut lhs = self.parse_multiplicative_expr()?;
        loop {
            let op = match self.peek()? {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => break,
            };
            self.next()?;
            let rhs = self.parse_multiplicative_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Arith(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn parse_multiplicative_expr(&mut self) -> SyntaxResult<Expr> {
        let mut lhs = self.parse_union_expr()?;
        loop {
            let op = match self.peek()? {
                Token::Star => ArithOp::Mul,
                Token::NCName(s) if s == "div" => ArithOp::Div,
                Token::NCName(s) if s == "idiv" => ArithOp::IDiv,
                Token::NCName(s) if s == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.next()?;
            let rhs = self.parse_union_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Arith(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn parse_union_expr(&mut self) -> SyntaxResult<Expr> {
        let mut lhs = self.parse_intersect_expr()?;
        loop {
            let is_union = matches!(self.peek()?, Token::Pipe)
                || matches!(self.peek()?, Token::NCName(s) if s == "union");
            if !is_union {
                break;
            }
            self.next()?;
            let rhs = self.parse_intersect_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::SetOp(SetOp::Union, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_intersect_expr(&mut self) -> SyntaxResult<Expr> {
        let mut lhs = self.parse_instanceof_expr()?;
        loop {
            let op = match self.peek()? {
                Token::NCName(s) if s == "intersect" => SetOp::Intersect,
                Token::NCName(s) if s == "except" => SetOp::Except,
                _ => break,
            };
            self.next()?;
            let rhs = self.parse_instanceof_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::SetOp(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn parse_instanceof_expr(&mut self) -> SyntaxResult<Expr> {
        let lhs = self.parse_cast_expr()?;
        if self.at_keyword("instance")? && matches!(self.peek2()?, Token::NCName(s) if s == "of") {
            self.next()?;
            self.next()?;
            let ty = self.parse_sequence_type()?;
            let span = lhs.span;
            return Ok(Expr::new(ExprKind::InstanceOf(Box::new(lhs), ty), span));
        }
        Ok(lhs)
    }

    fn parse_cast_expr(&mut self) -> SyntaxResult<Expr> {
        let lhs = self.parse_castable_expr()?;
        if self.at_keyword("cast")? && matches!(self.peek2()?, Token::NCName(s) if s == "as") {
            self.next()?;
            self.next()?;
            let (name, _) = self.expect_name()?;
            let optional = self.eat_token(&Token::Question)?;
            let span = lhs.span;
            return Ok(Expr::new(
                ExprKind::CastAs(Box::new(lhs), name, optional),
                span,
            ));
        }
        Ok(lhs)
    }

    fn parse_castable_expr(&mut self) -> SyntaxResult<Expr> {
        let lhs = self.parse_unary_expr()?;
        if self.at_keyword("castable")? && matches!(self.peek2()?, Token::NCName(s) if s == "as") {
            self.next()?;
            self.next()?;
            let (name, _) = self.expect_name()?;
            let optional = self.eat_token(&Token::Question)?;
            let span = lhs.span;
            return Ok(Expr::new(
                ExprKind::CastableAs(Box::new(lhs), name, optional),
                span,
            ));
        }
        Ok(lhs)
    }

    fn parse_unary_expr(&mut self) -> SyntaxResult<Expr> {
        match self.peek()? {
            Token::Minus => {
                let start = self.next()?.1;
                let inner = self.parse_unary_expr()?;
                let span = start.merge(inner.span);
                Ok(Expr::new(
                    ExprKind::Unary(UnaryOp::Neg, Box::new(inner)),
                    span,
                ))
            }
            Token::Plus => {
                let start = self.next()?.1;
                let inner = self.parse_unary_expr()?;
                let span = start.merge(inner.span);
                Ok(Expr::new(
                    ExprKind::Unary(UnaryOp::Plus, Box::new(inner)),
                    span,
                ))
            }
            _ => self.parse_path_expr(),
        }
    }

    // ---- paths -----------------------------------------------------------

    fn parse_path_expr(&mut self) -> SyntaxResult<Expr> {
        let start_span = self.peek_span()?;
        match self.peek()? {
            Token::Slash => {
                self.next()?;
                if self.starts_step()? {
                    self.parse_relative_path(PathStart::Root, Vec::new(), start_span, true)
                } else {
                    Ok(Expr::new(
                        ExprKind::Path(Box::new(Path {
                            start: PathStart::Root,
                            steps: Vec::new(),
                        })),
                        start_span,
                    ))
                }
            }
            Token::DoubleSlash => {
                self.next()?;
                let steps = vec![descendant_or_self_step()];
                self.parse_relative_path(PathStart::Root, steps, start_span, true)
            }
            _ => {
                let first = self.parse_step()?;
                let continues = matches!(self.peek()?, Token::Slash | Token::DoubleSlash);
                match first {
                    StepOrExpr::Primary { expr, predicates } if !continues => {
                        if predicates.is_empty() {
                            Ok(expr)
                        } else {
                            let span = expr.span;
                            Ok(Expr::new(
                                ExprKind::Filter {
                                    base: Box::new(expr),
                                    predicates,
                                },
                                span,
                            ))
                        }
                    }
                    StepOrExpr::Primary { expr, predicates } => {
                        let base = if predicates.is_empty() {
                            expr
                        } else {
                            let span = expr.span;
                            Expr::new(
                                ExprKind::Filter {
                                    base: Box::new(expr),
                                    predicates,
                                },
                                span,
                            )
                        };
                        self.parse_relative_path(
                            PathStart::Expr(base),
                            Vec::new(),
                            start_span,
                            false,
                        )
                    }
                    StepOrExpr::Step(step) => self.parse_relative_path(
                        PathStart::Context,
                        vec![Step::Axis(step)],
                        start_span,
                        false,
                    ),
                }
            }
        }
    }

    /// Continue a path after its start: `("/" | "//") StepExpr` repeats.
    /// `need_step` is true when the caller already consumed a leading
    /// `/` or `//`, making the first step mandatory.
    fn parse_relative_path(
        &mut self,
        start: PathStart,
        mut steps: Vec<Step>,
        start_span: Span,
        mut need_step: bool,
    ) -> SyntaxResult<Expr> {
        loop {
            if need_step || matches!(self.peek()?, Token::Slash | Token::DoubleSlash) {
                if !need_step {
                    match self.next()?.0 {
                        Token::Slash => {}
                        Token::DoubleSlash => steps.push(descendant_or_self_step()),
                        _ => unreachable!(),
                    }
                }
                need_step = false;
                let step = self.parse_step()?;
                match step {
                    StepOrExpr::Step(s) => steps.push(Step::Axis(s)),
                    StepOrExpr::Primary { expr, predicates } => {
                        steps.push(Step::Expr { expr, predicates })
                    }
                }
            } else {
                break;
            }
        }
        let end = steps.last().map(step_span).unwrap_or(start_span);
        let span = start_span.merge(end);
        Ok(Expr::new(
            ExprKind::Path(Box::new(Path { start, steps })),
            span,
        ))
    }

    /// Can the current token begin a path step?
    fn starts_step(&mut self) -> SyntaxResult<bool> {
        Ok(matches!(
            self.peek()?,
            Token::NCName(_)
                | Token::QName(..)
                | Token::Star
                | Token::At
                | Token::Dot
                | Token::DotDot
                | Token::VarName(_)
                | Token::LParen
                | Token::StringLit(_)
                | Token::Integer(_)
                | Token::Decimal(_)
                | Token::Double(_)
        ))
    }

    fn parse_step(&mut self) -> SyntaxResult<StepOrExpr> {
        match self.peek()? {
            Token::At => {
                self.next()?;
                let test = self.parse_node_test()?;
                let predicates = self.parse_predicates()?;
                Ok(StepOrExpr::Step(AxisStep {
                    axis: Axis::Attribute,
                    test,
                    predicates,
                }))
            }
            Token::DotDot => {
                self.next()?;
                let predicates = self.parse_predicates()?;
                Ok(StepOrExpr::Step(AxisStep {
                    axis: Axis::Parent,
                    test: NodeTest::AnyKind,
                    predicates,
                }))
            }
            Token::NCName(name) => {
                let name = name.clone();
                // Explicit axis?
                if self.peek2()? == &Token::ColonColon {
                    let axis = axis_from_name(&name)
                        .ok_or_else(|| self.error_here(format!("unknown axis {name:?}")))?;
                    self.next()?; // axis
                    self.next()?; // ::
                    let test = self.parse_node_test()?;
                    let predicates = self.parse_predicates()?;
                    return Ok(StepOrExpr::Step(AxisStep {
                        axis,
                        test,
                        predicates,
                    }));
                }
                // Kind test or function call?
                if self.peek2()? == &Token::LParen {
                    if let Some(test) = self.try_parse_kind_test()? {
                        let predicates = self.parse_predicates()?;
                        let axis = default_axis_for_test(&test);
                        return Ok(StepOrExpr::Step(AxisStep {
                            axis,
                            test,
                            predicates,
                        }));
                    }
                    if RESERVED_FUNCTION_NAMES.contains(&name.as_str()) {
                        return Err(self.error_here(format!(
                            "{name:?} is reserved and cannot be called here"
                        )));
                    }
                    let expr = self.parse_function_call()?;
                    let predicates = self.parse_predicates()?;
                    return Ok(StepOrExpr::Primary { expr, predicates });
                }
                // Plain name test on the child axis.
                self.next()?;
                let predicates = self.parse_predicates()?;
                Ok(StepOrExpr::Step(AxisStep {
                    axis: Axis::Child,
                    test: NodeTest::Name(Name::local(name)),
                    predicates,
                }))
            }
            Token::QName(..) => {
                if self.peek2()? == &Token::LParen {
                    let expr = self.parse_function_call()?;
                    let predicates = self.parse_predicates()?;
                    return Ok(StepOrExpr::Primary { expr, predicates });
                }
                let (name, _) = self.expect_name()?;
                let predicates = self.parse_predicates()?;
                Ok(StepOrExpr::Step(AxisStep {
                    axis: Axis::Child,
                    test: NodeTest::Name(name),
                    predicates,
                }))
            }
            Token::Star => {
                self.next()?;
                let predicates = self.parse_predicates()?;
                Ok(StepOrExpr::Step(AxisStep {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                    predicates,
                }))
            }
            _ => {
                let expr = self.parse_primary()?;
                let predicates = self.parse_predicates()?;
                Ok(StepOrExpr::Primary { expr, predicates })
            }
        }
    }

    /// Try a kind test at `NCName (`; leaves the input untouched when the
    /// name is not a kind-test name.
    fn try_parse_kind_test(&mut self) -> SyntaxResult<Option<NodeTest>> {
        let name = match self.peek()? {
            Token::NCName(s) => s.clone(),
            _ => return Ok(None),
        };
        let test = match name.as_str() {
            "node" => NodeTest::AnyKind,
            "text" => NodeTest::Text,
            "comment" => NodeTest::Comment,
            "document-node" => NodeTest::Document,
            "processing-instruction" => {
                self.next()?;
                self.expect(&Token::LParen)?;
                let target = match self.peek()? {
                    Token::StringLit(s) => {
                        let s = s.clone();
                        self.next()?;
                        Some(s)
                    }
                    Token::NCName(s) => {
                        let s = s.clone();
                        self.next()?;
                        Some(s)
                    }
                    _ => None,
                };
                self.expect(&Token::RParen)?;
                return Ok(Some(NodeTest::ProcessingInstruction(target)));
            }
            "element" | "attribute" => {
                self.next()?;
                self.expect(&Token::LParen)?;
                let inner = if self.peek()? == &Token::RParen || self.eat_token(&Token::Star)? {
                    None
                } else {
                    Some(self.expect_name()?.0)
                };
                self.expect(&Token::RParen)?;
                return Ok(Some(if name == "element" {
                    NodeTest::Element(inner)
                } else {
                    NodeTest::Attribute(inner)
                }));
            }
            _ => return Ok(None),
        };
        self.next()?;
        self.expect(&Token::LParen)?;
        self.expect(&Token::RParen)?;
        Ok(Some(test))
    }

    fn parse_node_test(&mut self) -> SyntaxResult<NodeTest> {
        if self.peek()? == &Token::Star {
            self.next()?;
            return Ok(NodeTest::Wildcard);
        }
        if self.peek2()? == &Token::LParen {
            if let Some(test) = self.try_parse_kind_test()? {
                return Ok(test);
            }
        }
        let (name, _) = self.expect_name()?;
        Ok(NodeTest::Name(name))
    }

    fn parse_predicates(&mut self) -> SyntaxResult<Vec<Expr>> {
        let mut predicates = Vec::new();
        while self.eat_token(&Token::LBracket)? {
            predicates.push(self.parse_expr()?);
            self.expect(&Token::RBracket)?;
        }
        Ok(predicates)
    }

    fn parse_function_call(&mut self) -> SyntaxResult<Expr> {
        let (name, start) = self.expect_name()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek()? != &Token::RParen {
            loop {
                args.push(self.parse_expr_single()?);
                if !self.eat_token(&Token::Comma)? {
                    break;
                }
            }
        }
        let end = self.expect(&Token::RParen)?;
        Ok(Expr::new(
            ExprKind::FunctionCall { name, args },
            start.merge(end),
        ))
    }

    // ---- primary expressions ----------------------------------------------

    fn parse_primary(&mut self) -> SyntaxResult<Expr> {
        let (token, span) = self.next()?;
        match token {
            Token::Integer(v) => Ok(Expr::new(ExprKind::IntegerLit(v), span)),
            Token::Decimal(s) => Ok(Expr::new(ExprKind::DecimalLit(s), span)),
            Token::Double(v) => Ok(Expr::new(ExprKind::DoubleLit(v), span)),
            Token::StringLit(s) => Ok(Expr::new(ExprKind::StringLit(s), span)),
            Token::VarName(v) => Ok(Expr::new(ExprKind::VarRef(v), span)),
            Token::Dot => Ok(Expr::new(ExprKind::ContextItem, span)),
            Token::LParen => {
                if self.eat_token(&Token::RParen)? {
                    return Ok(Expr::new(ExprKind::Sequence(Vec::new()), span));
                }
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::StartTagOpen(name) => self.parse_direct_element(name, span),
            Token::CommentStart => {
                self.assert_raw_ready();
                let text = self.lexer.raw_until("-->")?;
                Ok(Expr::new(ExprKind::DirectComment(text), span))
            }
            Token::PiStart => {
                self.assert_raw_ready();
                let target = self.lexer.raw_name()?;
                self.lexer.raw_skip_ws();
                let data = self.lexer.raw_until("?>")?;
                Ok(Expr::new(
                    ExprKind::DirectPi(target.to_string(), data),
                    span,
                ))
            }
            other => Err(SyntaxError::at(
                self.lexer.source(),
                span.start,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }

    /// Raw-mode operations require an empty token buffer — a buffered
    /// token would mean the lexer cursor has already moved past the raw
    /// text we are about to scan.
    fn assert_raw_ready(&self) {
        debug_assert!(
            self.buffer.is_empty(),
            "token lookahead must be empty before raw mode"
        );
    }

    // ---- direct constructors -----------------------------------------------

    /// Parse a direct element; the `<name` token has been consumed.
    fn parse_direct_element(&mut self, name: Name, start: Span) -> SyntaxResult<Expr> {
        self.assert_raw_ready();
        let mut attributes = Vec::new();
        // Attribute list in raw mode (whitespace significant-ish).
        loop {
            self.lexer.raw_skip_ws();
            if self.lexer.raw_eat("/>") {
                let span = Span::new(start.start, self.lexer.position());
                return Ok(Expr::new(
                    ExprKind::DirectElement(Box::new(DirectElement {
                        name,
                        attributes,
                        content: Vec::new(),
                    })),
                    span,
                ));
            }
            if self.lexer.raw_eat(">") {
                break;
            }
            let attr_name = self.lexer.raw_name()?;
            self.lexer.raw_skip_ws();
            self.lexer.raw_expect("=")?;
            self.lexer.raw_skip_ws();
            let quote = if self.lexer.raw_eat("\"") {
                '"'
            } else if self.lexer.raw_eat("'") {
                '\''
            } else {
                return Err(self.error_here("expected quoted attribute value"));
            };
            let mut parts = Vec::new();
            loop {
                let (text, end) = self.lexer.raw_attr_chunk(quote)?;
                if !text.is_empty() {
                    parts.push(AttrPart::Literal(text));
                }
                match end {
                    AttrChunkEnd::CloseQuote => break,
                    AttrChunkEnd::OpenBrace => {
                        let expr = self.parse_expr()?;
                        self.expect(&Token::RBrace)?;
                        self.assert_raw_ready();
                        parts.push(AttrPart::Enclosed(expr));
                    }
                }
            }
            attributes.push((attr_name, parts));
        }
        // Content in raw mode.
        let mut content = Vec::new();
        loop {
            let (text, end) = self.lexer.raw_content_chunk()?;
            if !text.is_empty() && !text.chars().all(|c| c.is_ascii_whitespace()) {
                content.push(ContentPart::Literal(text));
            } else if !text.is_empty() {
                // Boundary whitespace: stripped (default boundary-space
                // policy), matching the paper's examples where indented
                // constructors produce no stray text nodes.
            }
            match end {
                ContentChunkEnd::EndTagOpen => {
                    let end_name = self.lexer.raw_name()?;
                    if end_name != name {
                        return Err(self
                            .error_here(format!("mismatched end tag </{end_name}> for <{name}>")));
                    }
                    self.lexer.raw_skip_ws();
                    self.lexer.raw_expect(">")?;
                    break;
                }
                ContentChunkEnd::StartTagOpen => {
                    let child_start = Span::new(self.lexer.position(), self.lexer.position());
                    let child_name = self.lexer.raw_name()?;
                    let child = self.parse_direct_element(child_name, child_start)?;
                    content.push(ContentPart::Child(child));
                }
                ContentChunkEnd::OpenBrace => {
                    let expr = self.parse_expr()?;
                    self.expect(&Token::RBrace)?;
                    self.assert_raw_ready();
                    content.push(ContentPart::Enclosed(expr));
                }
                ContentChunkEnd::CommentStart => {
                    let text = self.lexer.raw_until("-->")?;
                    let span = Span::new(start.start, self.lexer.position());
                    content.push(ContentPart::Child(Expr::new(
                        ExprKind::DirectComment(text),
                        span,
                    )));
                }
                ContentChunkEnd::PiStart => {
                    let target = self.lexer.raw_name()?;
                    self.lexer.raw_skip_ws();
                    let data = self.lexer.raw_until("?>")?;
                    let span = Span::new(start.start, self.lexer.position());
                    content.push(ContentPart::Child(Expr::new(
                        ExprKind::DirectPi(target.to_string(), data),
                        span,
                    )));
                }
            }
        }
        let span = Span::new(start.start, self.lexer.position());
        Ok(Expr::new(
            ExprKind::DirectElement(Box::new(DirectElement {
                name,
                attributes,
                content,
            })),
            span,
        ))
    }
}

fn descendant_or_self_step() -> Step {
    Step::Axis(AxisStep {
        axis: Axis::DescendantOrSelf,
        test: NodeTest::AnyKind,
        predicates: Vec::new(),
    })
}

fn axis_from_name(name: &str) -> Option<Axis> {
    Some(match name {
        "child" => Axis::Child,
        "descendant" => Axis::Descendant,
        "descendant-or-self" => Axis::DescendantOrSelf,
        "attribute" => Axis::Attribute,
        "self" => Axis::SelfAxis,
        "parent" => Axis::Parent,
        "ancestor" => Axis::Ancestor,
        "ancestor-or-self" => Axis::AncestorOrSelf,
        "following-sibling" => Axis::FollowingSibling,
        "preceding-sibling" => Axis::PrecedingSibling,
        _ => return None,
    })
}

/// Attribute kind tests select from the attribute axis; all others from
/// the child axis.
fn default_axis_for_test(test: &NodeTest) -> Axis {
    match test {
        NodeTest::Attribute(_) => Axis::Attribute,
        _ => Axis::Child,
    }
}

fn step_span(step: &Step) -> Span {
    match step {
        Step::Axis(s) => s.predicates.last().map(|p| p.span).unwrap_or_default(),
        Step::Expr { expr, predicates } => predicates.last().map(|p| p.span).unwrap_or(expr.span),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expression(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
    }

    fn query(src: &str) -> Module {
        parse_query(src).unwrap_or_else(|e| panic!("parse failed: {e}"))
    }

    #[test]
    fn literals() {
        assert!(matches!(expr("42").kind, ExprKind::IntegerLit(42)));
        assert!(matches!(expr("59.95").kind, ExprKind::DecimalLit(_)));
        assert!(matches!(expr("1e3").kind, ExprKind::DoubleLit(_)));
        assert!(matches!(expr(r#""hello""#).kind, ExprKind::StringLit(_)));
        assert!(matches!(expr("()").kind, ExprKind::Sequence(ref v) if v.is_empty()));
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        match expr("1 + 2 * 3").kind {
            ExprKind::Arith(ArithOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Arith(ArithOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // division keyword
        assert!(matches!(
            expr("$a div $b").kind,
            ExprKind::Arith(ArithOp::Div, _, _)
        ));
        assert!(matches!(expr("-$x").kind, ExprKind::Unary(UnaryOp::Neg, _)));
    }

    #[test]
    fn comparisons() {
        assert!(matches!(
            expr("$a = 5").kind,
            ExprKind::GeneralComp(Comparison::Eq, _, _)
        ));
        assert!(matches!(
            expr("$a eq 5").kind,
            ExprKind::ValueComp(Comparison::Eq, _, _)
        ));
        assert!(matches!(
            expr("$a >= $b").kind,
            ExprKind::GeneralComp(Comparison::Ge, _, _)
        ));
        assert!(matches!(
            expr("$a is $b").kind,
            ExprKind::NodeComp(NodeComparison::Is, _, _)
        ));
        assert!(matches!(expr("$a and $b or $c").kind, ExprKind::Or(_, _)));
    }

    #[test]
    fn range_expression() {
        assert!(matches!(expr("1 to 10").kind, ExprKind::Range(_, _)));
    }

    #[test]
    fn simple_paths() {
        // //book
        match expr("//book").kind {
            ExprKind::Path(p) => {
                assert_eq!(p.start, PathStart::Root);
                assert_eq!(p.steps.len(), 2);
                assert!(matches!(
                    &p.steps[0],
                    Step::Axis(AxisStep {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::AnyKind,
                        ..
                    })
                ));
                assert!(matches!(
                    &p.steps[1],
                    Step::Axis(AxisStep { axis: Axis::Child, test: NodeTest::Name(n), .. }) if n.local == "book"
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_rooted_path() {
        match expr("$b/price").kind {
            ExprKind::Path(p) => {
                assert!(
                    matches!(&p.start, PathStart::Expr(e) if matches!(e.kind, ExprKind::VarRef(_)))
                );
                assert_eq!(p.steps.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn path_with_predicate() {
        match expr(r#"//book[author = "Jim Melton"]"#).kind {
            ExprKind::Path(p) => match &p.steps[1] {
                Step::Axis(s) => assert_eq!(s.predicates.len(), 1),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parenthesized_step_and_function_step() {
        // Q3's parenthesized arithmetic step
        match expr("$region-sales/(quantity * price)").kind {
            ExprKind::Path(p) => {
                assert_eq!(p.steps.len(), 1);
                assert!(matches!(&p.steps[0], Step::Expr { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // function call as a step
        match expr("//sale/year-from-dateTime(timestamp)").kind {
            ExprKind::Path(p) => {
                assert!(matches!(p.steps.last().unwrap(), Step::Expr { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_and_parent_steps() {
        match expr("@year").kind {
            ExprKind::Path(p) => {
                assert!(matches!(
                    &p.steps[0],
                    Step::Axis(AxisStep {
                        axis: Axis::Attribute,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        match expr("../price").kind {
            ExprKind::Path(p) => {
                assert!(matches!(
                    &p.steps[0],
                    Step::Axis(AxisStep {
                        axis: Axis::Parent,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_axes_and_kind_tests() {
        match expr("child::book/descendant::text()").kind {
            ExprKind::Path(p) => {
                assert!(matches!(
                    &p.steps[0],
                    Step::Axis(AxisStep {
                        axis: Axis::Child,
                        ..
                    })
                ));
                assert!(matches!(
                    &p.steps[1],
                    Step::Axis(AxisStep {
                        axis: Axis::Descendant,
                        test: NodeTest::Text,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        match expr("self::node()").kind {
            ExprKind::Path(p) => {
                assert!(matches!(
                    &p.steps[0],
                    Step::Axis(AxisStep {
                        axis: Axis::SelfAxis,
                        test: NodeTest::AnyKind,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_step() {
        match expr("$b/categories/*").kind {
            ExprKind::Path(p) => {
                assert!(matches!(
                    p.steps.last().unwrap(),
                    Step::Axis(AxisStep {
                        test: NodeTest::Wildcard,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_calls() {
        match expr("avg($netprices)").kind {
            ExprKind::FunctionCall { name, args } => {
                assert_eq!(name, Name::local("avg"));
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match expr("local:paths($b/categories/*)").kind {
            ExprKind::FunctionCall { name, .. } => {
                assert_eq!(name, Name::prefixed("local", "paths"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filter_on_variable() {
        match expr("$items[3]").kind {
            ExprKind::Filter { predicates, .. } => assert_eq!(predicates.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn basic_flwor() {
        let e = expr("for $b in //book return $b/title");
        match e.kind {
            ExprKind::Flwor(f) => {
                assert_eq!(f.clauses.len(), 1);
                assert!(f.where_clause.is_none());
                assert!(f.group_by.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flwor_with_all_clauses() {
        let e = expr(
            "for $b at $i in //book \
             let $p := $b/price \
             where $p > 100 \
             order by $p descending, $b/title ascending empty least \
             return $b",
        );
        match e.kind {
            ExprKind::Flwor(f) => {
                assert_eq!(f.clauses.len(), 2);
                match &f.clauses[0] {
                    InitialClause::For(bs) => {
                        assert_eq!(bs[0].var, "b");
                        assert_eq!(bs[0].at.as_deref(), Some("i"));
                    }
                    other => panic!("unexpected {other:?}"),
                }
                assert!(f.where_clause.is_some());
                let ob = f.order_by.unwrap();
                assert_eq!(ob.specs.len(), 2);
                assert!(ob.specs[0].descending);
                assert!(!ob.specs[1].descending);
                assert_eq!(ob.specs[1].empty, Some(EmptyOrder::Least));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_clause_paper_q1() {
        let e = expr(
            "for $b in //book \
             group by $b/publisher into $p, $b/year into $y \
             nest $b/price - $b/discount into $netprices \
             return avg($netprices)",
        );
        match e.kind {
            ExprKind::Flwor(f) => {
                let g = f.group_by.unwrap();
                assert_eq!(g.keys.len(), 2);
                assert_eq!(g.keys[0].var, "p");
                assert_eq!(g.keys[1].var, "y");
                assert_eq!(g.nests.len(), 1);
                assert_eq!(g.nests[0].var, "netprices");
                assert!(g.nests[0].order_by.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_with_using_q2a() {
        let e = expr(
            "for $b in //book \
             group by $b/author into $a using local:set-equal \
             nest $b/price into $prices \
             return avg($prices)",
        );
        match e.kind {
            ExprKind::Flwor(f) => {
                let g = f.group_by.unwrap();
                assert_eq!(g.keys[0].using, Some(Name::prefixed("local", "set-equal")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_post_let_where_q4() {
        let e = expr(
            "for $b in //book \
             group by $b/publisher into $pub nest $b/price into $prices \
             let $avgprice := avg($prices) \
             where $avgprice > 100 \
             order by $avgprice descending \
             return $pub",
        );
        match e.kind {
            ExprKind::Flwor(f) => {
                assert!(f.group_by.is_some());
                assert_eq!(f.post_group_clauses.len(), 1);
                assert!(matches!(&f.post_group_clauses[0],
                    PostGroupClause::Let(b) if b.var == "avgprice"));
                assert!(f.post_group_where.is_some());
                assert!(f.order_by.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nest_with_order_by_q8() {
        let e = expr(
            "for $s in //sale \
             group by $s/region into $region \
             nest $s order by $s/timestamp into $rs \
             return $rs",
        );
        match e.kind {
            ExprKind::Flwor(f) => {
                let g = f.group_by.unwrap();
                assert!(g.nests[0].order_by.is_some());
                assert_eq!(g.nests[0].var, "rs");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn return_at_rank_q9b() {
        let e = expr(
            "for $b in //book \
             order by $b/price descending \
             return at $rank $b",
        );
        match e.kind {
            ExprKind::Flwor(f) => assert_eq!(f.return_at.as_deref(), Some("rank")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantified_expressions() {
        let e = expr("every $i1 in $arg1 satisfies some $i2 in $arg2 satisfies $i1 eq $i2");
        match e.kind {
            ExprKind::Quantified { kind, bindings, .. } => {
                assert_eq!(kind, Quantifier::Every);
                assert_eq!(bindings.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_expression() {
        let e = expr("if (empty($p)) then <publisher/> else $p");
        assert!(matches!(e.kind, ExprKind::If { .. }));
    }

    #[test]
    fn direct_constructor_simple() {
        let e = expr("<group>{$p, $y}<avg-net-price>{avg($netprices)}</avg-net-price></group>");
        match e.kind {
            ExprKind::DirectElement(el) => {
                assert_eq!(el.name, Name::local("group"));
                assert_eq!(el.content.len(), 2);
                assert!(matches!(&el.content[0], ContentPart::Enclosed(_)));
                assert!(matches!(&el.content[1], ContentPart::Child(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn direct_constructor_attribute_templates_q10() {
        let e = expr(r#"<monthly-report year="{$year}" month="{$month}">{$x}</monthly-report>"#);
        match e.kind {
            ExprKind::DirectElement(el) => {
                assert_eq!(el.attributes.len(), 2);
                let (name, parts) = &el.attributes[0];
                assert_eq!(name, &Name::local("year"));
                assert!(matches!(&parts[0], AttrPart::Enclosed(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn direct_constructor_mixed_attr_template() {
        let e = expr(r#"<r label="year {$y}!"/>"#);
        match e.kind {
            ExprKind::DirectElement(el) => {
                let (_, parts) = &el.attributes[0];
                assert_eq!(parts.len(), 3);
                assert!(matches!(&parts[0], AttrPart::Literal(s) if s == "year "));
                assert!(matches!(&parts[2], AttrPart::Literal(s) if s == "!"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn direct_constructor_literal_text_kept() {
        let e = expr("<name>Morgan Kaufmann</name>");
        match e.kind {
            ExprKind::DirectElement(el) => {
                assert!(
                    matches!(&el.content[0], ContentPart::Literal(s) if s == "Morgan Kaufmann")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn direct_constructor_boundary_whitespace_stripped() {
        let e = expr("<a>\n  <b/>\n</a>");
        match e.kind {
            ExprKind::DirectElement(el) => {
                assert_eq!(el.content.len(), 1);
                assert!(matches!(&el.content[0], ContentPart::Child(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_direct_constructors() {
        let e = expr("<publisher><name>{string($pub)}</name><books>{$b}</books></publisher>");
        match e.kind {
            ExprKind::DirectElement(el) => assert_eq!(el.content.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn computed_constructors() {
        assert!(matches!(
            expr("element result { 1, 2 }").kind,
            ExprKind::ComputedElement { .. }
        ));
        assert!(matches!(
            expr("attribute year { 2004 }").kind,
            ExprKind::ComputedAttribute { .. }
        ));
        assert!(matches!(
            expr("text { \"hi\" }").kind,
            ExprKind::ComputedText(_)
        ));
        assert!(matches!(
            expr("element e {}").kind,
            ExprKind::ComputedElement { content: None, .. }
        ));
    }

    #[test]
    fn prolog_function_declaration() {
        let m = query(
            "declare function local:set-equal($arg1 as item()*, $arg2 as item()*) as xs:boolean \
             { every $i1 in $arg1 satisfies some $i2 in $arg2 satisfies $i1 eq $i2 }; \
             1",
        );
        assert_eq!(m.prolog.functions.len(), 1);
        let f = &m.prolog.functions[0];
        assert_eq!(f.name, Name::prefixed("local", "set-equal"));
        assert_eq!(f.params.len(), 2);
        assert_eq!(
            f.params[0].ty.as_ref().unwrap().occurrence,
            Occurrence::ZeroOrMore
        );
        assert_eq!(
            f.return_type.as_ref().unwrap().item,
            ItemType::Atomic(Name::prefixed("xs", "boolean"))
        );
    }

    #[test]
    fn prolog_variable_and_ordering() {
        let m = query("declare ordering unordered; declare variable $n := 10; $n");
        assert_eq!(m.prolog.ordering, Some(OrderingMode::Unordered));
        assert_eq!(m.prolog.variables.len(), 1);
        assert_eq!(m.prolog.variables[0].name, "n");
    }

    #[test]
    fn xquery_version_declaration() {
        let m = query("xquery version \"1.0\"; 42");
        assert!(matches!(m.body.kind, ExprKind::IntegerLit(42)));
        assert!(parse_query("xquery version \"9.9\"; 42").is_err());
    }

    #[test]
    fn recursive_function_q11_paths() {
        let m = query(
            "declare function local:paths($cats as element()*) as xs:string* { \
               for $c in $cats \
               return ( string(node-name($c)), \
                        for $p in local:paths($c/*) \
                        return concat(string(node-name($c)), \"/\", $p) ) }; \
             local:paths(//book/categories/*)",
        );
        assert_eq!(m.prolog.functions.len(), 1);
    }

    #[test]
    fn keywords_usable_as_element_names() {
        // 'for', 'order', 'group' as path steps
        match expr("$x/for/order/group").kind {
            ExprKind::Path(p) => assert_eq!(p.steps.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_of_and_cast() {
        assert!(matches!(
            expr("$x instance of xs:integer").kind,
            ExprKind::InstanceOf(_, _)
        ));
        assert!(matches!(
            expr("$x cast as xs:integer?").kind,
            ExprKind::CastAs(_, _, true)
        ));
    }

    #[test]
    fn set_operations() {
        assert!(matches!(
            expr("$a | $b").kind,
            ExprKind::SetOp(SetOp::Union, _, _)
        ));
        assert!(matches!(
            expr("$a union $b").kind,
            ExprKind::SetOp(SetOp::Union, _, _)
        ));
        assert!(matches!(
            expr("$a intersect $b").kind,
            ExprKind::SetOp(SetOp::Intersect, _, _)
        ));
        assert!(matches!(
            expr("$a except $b").kind,
            ExprKind::SetOp(SetOp::Except, _, _)
        ));
    }

    #[test]
    fn error_cases() {
        assert!(parse_expression("for $b in").is_err());
        assert!(
            parse_expression("for $b in //book").is_err(),
            "missing return"
        );
        assert!(parse_expression("<a></b>").is_err(), "mismatched tags");
        assert!(
            parse_expression("group by $x into $y").is_err(),
            "group by without for"
        );
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("//").is_err());
        assert!(parse_expression("$x[").is_err());
        assert!(parse_expression("1 2").is_err(), "trailing token");
    }

    #[test]
    fn group_by_without_nest_q5() {
        let e = expr(
            "for $b in //book \
             group by $b/publisher into $pub, $b/title into $title \
             order by $pub, $title \
             return <pair>{$pub, $title}</pair>",
        );
        match e.kind {
            ExprKind::Flwor(f) => {
                let g = f.group_by.unwrap();
                assert_eq!(g.keys.len(), 2);
                assert!(g.nests.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_nests() {
        let e = expr(
            "for $s in //sale \
             group by $s/region into $r \
             nest $s/quantity into $qs, $s/price order by $s/timestamp into $ps \
             return count($qs)",
        );
        match e.kind {
            ExprKind::Flwor(f) => {
                let g = f.group_by.unwrap();
                assert_eq!(g.nests.len(), 2);
                assert!(g.nests[0].order_by.is_none());
                assert!(g.nests[1].order_by.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whole_paper_query_q10_parses() {
        let src = r#"
            for $s in //sale
            group by year-from-dateTime($s/timestamp) into $year,
                     month-from-dateTime($s/timestamp) into $month
            nest $s into $month-sales
            order by $year, $month
            return
              <monthly-report year="{$year}" month="{$month}">
                {for $ms in $month-sales
                 group by $ms/region into $region
                 nest $ms/quantity * $ms/price into $sales-amounts
                 let $sum := sum($sales-amounts)
                 order by $sum descending
                 return at $rank
                   <regional-results>
                     <rank> {$rank} </rank>
                     { $region }
                     <total-sales> {$sum} </total-sales>
                   </regional-results>}
              </monthly-report>"#;
        let e = expr(src);
        assert!(matches!(e.kind, ExprKind::Flwor(_)));
    }
}
