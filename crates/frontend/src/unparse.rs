//! AST → source text (unparser).
//!
//! Produces a canonical, re-parseable rendering of any AST. Used for
//! diagnostics (showing what a rewrite produced) and for the round-trip
//! property `parse(unparse(parse(q))) == parse(q)` that exercises the
//! parser against every construct.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole module.
pub fn unparse_module(module: &Module) -> String {
    let mut out = String::new();
    if let Some(mode) = module.prolog.ordering {
        let _ = writeln!(
            out,
            "declare ordering {};",
            match mode {
                OrderingMode::Ordered => "ordered",
                OrderingMode::Unordered => "unordered",
            }
        );
    }
    for f in &module.prolog.functions {
        let _ = write!(out, "declare function {}(", f.name);
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "${}", p.name);
            if let Some(ty) = &p.ty {
                let _ = write!(out, " as {}", unparse_sequence_type(ty));
            }
        }
        out.push(')');
        if let Some(ty) = &f.return_type {
            let _ = write!(out, " as {}", unparse_sequence_type(ty));
        }
        let _ = writeln!(out, " {{ {} }};", unparse_expr(&f.body));
    }
    for v in &module.prolog.variables {
        let _ = write!(out, "declare variable ${}", v.name);
        if let Some(ty) = &v.ty {
            let _ = write!(out, " as {}", unparse_sequence_type(ty));
        }
        let _ = writeln!(out, " := {};", unparse_expr(&v.init));
    }
    out.push_str(&unparse_expr(&module.body));
    out
}

/// Render a sequence type.
pub fn unparse_sequence_type(ty: &SequenceType) -> String {
    let item = match &ty.item {
        ItemType::AnyItem => "item()".to_string(),
        ItemType::AnyNode => "node()".to_string(),
        ItemType::Element(None) => "element()".to_string(),
        ItemType::Element(Some(n)) => format!("element({n})"),
        ItemType::Attribute(None) => "attribute()".to_string(),
        ItemType::Attribute(Some(n)) => format!("attribute({n})"),
        ItemType::Document => "document-node()".to_string(),
        ItemType::Text => "text()".to_string(),
        ItemType::Comment => "comment()".to_string(),
        ItemType::ProcessingInstruction => "processing-instruction()".to_string(),
        ItemType::Atomic(n) => n.to_string(),
        ItemType::EmptySequence => return "empty-sequence()".to_string(),
    };
    let occ = match ty.occurrence {
        Occurrence::One => "",
        Occurrence::Optional => "?",
        Occurrence::ZeroOrMore => "*",
        Occurrence::OneOrMore => "+",
    };
    format!("{item}{occ}")
}

/// Render an expression. Output is fully parenthesized where precedence
/// could be ambiguous, so it always re-parses to the same tree.
pub fn unparse_expr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e);
    out
}

fn write_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::StringLit(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\"\""),
                    '&' => out.push_str("&amp;"),
                    '<' => out.push_str("&lt;"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        ExprKind::IntegerLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::DecimalLit(s) => out.push_str(s),
        ExprKind::DoubleLit(v) => {
            // Always exponent form so it re-lexes as a double.
            let _ = write!(out, "{v:e}");
        }
        ExprKind::VarRef(name) => {
            let _ = write!(out, "${name}");
        }
        ExprKind::ContextItem => out.push('.'),
        ExprKind::Sequence(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item);
            }
            out.push(')');
        }
        ExprKind::Range(a, b) => binary(out, a, " to ", b),
        ExprKind::Arith(op, a, b) => {
            let symbol = match op {
                ArithOp::Add => " + ",
                ArithOp::Sub => " - ",
                ArithOp::Mul => " * ",
                ArithOp::Div => " div ",
                ArithOp::IDiv => " idiv ",
                ArithOp::Mod => " mod ",
            };
            binary(out, a, symbol, b);
        }
        ExprKind::Unary(UnaryOp::Neg, a) => {
            out.push('-');
            paren(out, a);
        }
        ExprKind::Unary(UnaryOp::Plus, a) => {
            out.push('+');
            paren(out, a);
        }
        ExprKind::GeneralComp(op, a, b) => {
            let symbol = match op {
                Comparison::Eq => " = ",
                Comparison::Ne => " != ",
                Comparison::Lt => " < ",
                Comparison::Le => " <= ",
                Comparison::Gt => " > ",
                Comparison::Ge => " >= ",
            };
            binary(out, a, symbol, b);
        }
        ExprKind::ValueComp(op, a, b) => {
            let symbol = match op {
                Comparison::Eq => " eq ",
                Comparison::Ne => " ne ",
                Comparison::Lt => " lt ",
                Comparison::Le => " le ",
                Comparison::Gt => " gt ",
                Comparison::Ge => " ge ",
            };
            binary(out, a, symbol, b);
        }
        ExprKind::NodeComp(op, a, b) => {
            let symbol = match op {
                NodeComparison::Is => " is ",
                NodeComparison::Precedes => " << ",
                NodeComparison::Follows => " >> ",
            };
            binary(out, a, symbol, b);
        }
        ExprKind::And(a, b) => binary(out, a, " and ", b),
        ExprKind::Or(a, b) => binary(out, a, " or ", b),
        ExprKind::SetOp(op, a, b) => {
            let symbol = match op {
                SetOp::Union => " union ",
                SetOp::Intersect => " intersect ",
                SetOp::Except => " except ",
            };
            binary(out, a, symbol, b);
        }
        ExprKind::If {
            cond,
            then,
            otherwise,
        } => {
            out.push_str("if (");
            write_expr(out, cond);
            out.push_str(") then ");
            paren(out, then);
            out.push_str(" else ");
            paren(out, otherwise);
        }
        ExprKind::Quantified {
            kind,
            bindings,
            satisfies,
        } => {
            out.push_str(match kind {
                Quantifier::Some => "some ",
                Quantifier::Every => "every ",
            });
            for (i, (var, expr)) in bindings.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "${var} in ");
                paren(out, expr);
            }
            out.push_str(" satisfies ");
            paren(out, satisfies);
        }
        ExprKind::Flwor(f) => write_flwor(out, f),
        ExprKind::Path(p) => write_path(out, p),
        ExprKind::Filter { base, predicates } => {
            paren(out, base);
            for pred in predicates {
                out.push('[');
                write_expr(out, pred);
                out.push(']');
            }
        }
        ExprKind::FunctionCall { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::DirectElement(el) => write_direct_element(out, el),
        ExprKind::DirectComment(text) => {
            let _ = write!(out, "<!--{text}-->");
        }
        ExprKind::DirectPi(target, data) => {
            let _ = write!(out, "<?{target} {data}?>");
        }
        ExprKind::ComputedElement { name, content } => {
            let _ = write!(out, "element {name} {{");
            if let Some(c) = content {
                write_expr(out, c);
            }
            out.push('}');
        }
        ExprKind::ComputedAttribute { name, content } => {
            let _ = write!(out, "attribute {name} {{");
            if let Some(c) = content {
                write_expr(out, c);
            }
            out.push('}');
        }
        ExprKind::ComputedText(content) => {
            out.push_str("text {");
            if let Some(c) = content {
                write_expr(out, c);
            }
            out.push('}');
        }
        ExprKind::InstanceOf(a, ty) => {
            paren(out, a);
            let _ = write!(out, " instance of {}", unparse_sequence_type(ty));
        }
        ExprKind::CastAs(a, name, optional) => {
            paren(out, a);
            let _ = write!(out, " cast as {name}{}", if *optional { "?" } else { "" });
        }
        ExprKind::CastableAs(a, name, optional) => {
            paren(out, a);
            let _ = write!(
                out,
                " castable as {name}{}",
                if *optional { "?" } else { "" }
            );
        }
    }
}

/// Is the expression self-delimiting (safe to embed without parens)?
fn is_atomic_form(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::StringLit(_)
            | ExprKind::IntegerLit(_)
            | ExprKind::DecimalLit(_)
            | ExprKind::VarRef(_)
            | ExprKind::ContextItem
            | ExprKind::Sequence(_)
            | ExprKind::FunctionCall { .. }
            | ExprKind::Path(_)
            | ExprKind::DirectElement(_)
            | ExprKind::DirectComment(_)
            | ExprKind::DirectPi(..)
    )
}

fn paren(out: &mut String, e: &Expr) {
    if is_atomic_form(e) {
        write_expr(out, e);
    } else {
        out.push('(');
        write_expr(out, e);
        out.push(')');
    }
}

fn binary(out: &mut String, a: &Expr, op: &str, b: &Expr) {
    paren(out, a);
    out.push_str(op);
    paren(out, b);
}

fn write_flwor(out: &mut String, f: &Flwor) {
    for clause in &f.clauses {
        match clause {
            InitialClause::For(bindings) => {
                out.push_str("for ");
                for (i, b) in bindings.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "${}", b.var);
                    if let Some(ty) = &b.ty {
                        let _ = write!(out, " as {}", unparse_sequence_type(ty));
                    }
                    if let Some(at) = &b.at {
                        let _ = write!(out, " at ${at}");
                    }
                    out.push_str(" in ");
                    paren(out, &b.expr);
                }
                out.push(' ');
            }
            InitialClause::Let(bindings) => {
                out.push_str("let ");
                for (i, b) in bindings.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "${}", b.var);
                    if let Some(ty) = &b.ty {
                        let _ = write!(out, " as {}", unparse_sequence_type(ty));
                    }
                    out.push_str(" := ");
                    paren(out, &b.expr);
                }
                out.push(' ');
            }
            InitialClause::Count(var) => {
                let _ = write!(out, "count ${var} ");
            }
            InitialClause::Window(w) => {
                let _ = write!(
                    out,
                    "for {} window ${} in ",
                    if w.sliding { "sliding" } else { "tumbling" },
                    w.var
                );
                paren(out, &w.expr);
                out.push_str(" start ");
                write_window_condition(out, &w.start);
                if let Some(end) = &w.end {
                    out.push_str(if w.only_end { " only end " } else { " end " });
                    write_window_condition(out, end);
                }
                out.push(' ');
            }
        }
    }
    if let Some(w) = &f.where_clause {
        out.push_str("where ");
        paren(out, w);
        out.push(' ');
    }
    if let Some(g) = &f.group_by {
        out.push_str("group by ");
        for (i, key) in g.keys.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            paren(out, &key.expr);
            let _ = write!(out, " into ${}", key.var);
            if let Some(using) = &key.using {
                let _ = write!(out, " using {using}");
            }
        }
        if !g.nests.is_empty() {
            out.push_str(" nest ");
            for (i, nest) in g.nests.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                paren(out, &nest.expr);
                if let Some(ob) = &nest.order_by {
                    out.push(' ');
                    write_order_by(out, ob);
                }
                let _ = write!(out, " into ${}", nest.var);
            }
        }
        out.push(' ');
        for clause in &f.post_group_clauses {
            match clause {
                PostGroupClause::Let(b) => {
                    let _ = write!(out, "let ${} := ", b.var);
                    paren(out, &b.expr);
                    out.push(' ');
                }
                PostGroupClause::Count(var) => {
                    let _ = write!(out, "count ${var} ");
                }
            }
        }
        if let Some(w) = &f.post_group_where {
            out.push_str("where ");
            paren(out, w);
            out.push(' ');
        }
    }
    if let Some(ob) = &f.order_by {
        write_order_by(out, ob);
        out.push(' ');
    }
    out.push_str("return ");
    if let Some(at) = &f.return_at {
        let _ = write!(out, "at ${at} ");
    }
    paren(out, &f.return_expr);
}

fn write_window_condition(out: &mut String, c: &WindowCondition) {
    if let Some(v) = &c.item_var {
        let _ = write!(out, "${v} ");
    }
    if let Some(v) = &c.at_var {
        let _ = write!(out, "at ${v} ");
    }
    if let Some(v) = &c.previous_var {
        let _ = write!(out, "previous ${v} ");
    }
    if let Some(v) = &c.next_var {
        let _ = write!(out, "next ${v} ");
    }
    out.push_str("when ");
    paren(out, &c.when);
}

fn write_order_by(out: &mut String, ob: &OrderByClause) {
    if ob.stable {
        out.push_str("stable ");
    }
    out.push_str("order by ");
    for (i, spec) in ob.specs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        paren(out, &spec.expr);
        if spec.descending {
            out.push_str(" descending");
        }
        match spec.empty {
            Some(EmptyOrder::Greatest) => out.push_str(" empty greatest"),
            Some(EmptyOrder::Least) => out.push_str(" empty least"),
            None => {}
        }
    }
}

fn write_path(out: &mut String, p: &Path) {
    let mut need_slash = match &p.start {
        PathStart::Context => false,
        PathStart::Root => {
            out.push('/');
            false
        }
        PathStart::Expr(e) => {
            paren(out, e);
            true
        }
    };
    for step in &p.steps {
        match step {
            Step::Axis(s) => {
                // descendant-or-self::node() renders back as `//` when a
                // further step follows; standalone it stays explicit.
                if need_slash {
                    out.push('/');
                }
                let axis = match s.axis {
                    Axis::Child => "child",
                    Axis::Descendant => "descendant",
                    Axis::DescendantOrSelf => "descendant-or-self",
                    Axis::Attribute => "attribute",
                    Axis::SelfAxis => "self",
                    Axis::Parent => "parent",
                    Axis::Ancestor => "ancestor",
                    Axis::AncestorOrSelf => "ancestor-or-self",
                    Axis::FollowingSibling => "following-sibling",
                    Axis::PrecedingSibling => "preceding-sibling",
                };
                let _ = write!(out, "{axis}::{}", unparse_node_test(&s.test));
                for pred in &s.predicates {
                    out.push('[');
                    write_expr(out, pred);
                    out.push(']');
                }
            }
            Step::Expr { expr, predicates } => {
                if need_slash {
                    out.push('/');
                }
                paren_step(out, expr);
                for pred in predicates {
                    out.push('[');
                    write_expr(out, pred);
                    out.push(']');
                }
            }
        }
        need_slash = true;
    }
}

/// Steps must stay single StepExpr tokens; wrap anything non-primary.
fn paren_step(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::FunctionCall { .. }
        | ExprKind::VarRef(_)
        | ExprKind::ContextItem
        | ExprKind::StringLit(_)
        | ExprKind::IntegerLit(_)
        | ExprKind::DecimalLit(_)
        | ExprKind::Sequence(_) => write_expr(out, e),
        _ => {
            out.push('(');
            write_expr(out, e);
            out.push(')');
        }
    }
}

fn unparse_node_test(test: &NodeTest) -> String {
    match test {
        NodeTest::Name(n) => n.to_string(),
        NodeTest::Wildcard => "*".to_string(),
        NodeTest::AnyKind => "node()".to_string(),
        NodeTest::Text => "text()".to_string(),
        NodeTest::Comment => "comment()".to_string(),
        NodeTest::ProcessingInstruction(Some(t)) => format!("processing-instruction(\"{t}\")"),
        NodeTest::ProcessingInstruction(None) => "processing-instruction()".to_string(),
        NodeTest::Element(Some(n)) => format!("element({n})"),
        NodeTest::Element(None) => "element()".to_string(),
        NodeTest::Attribute(Some(n)) => format!("attribute({n})"),
        NodeTest::Attribute(None) => "attribute()".to_string(),
        NodeTest::Document => "document-node()".to_string(),
    }
}

fn write_direct_element(out: &mut String, el: &DirectElement) {
    let _ = write!(out, "<{}", el.name);
    for (name, parts) in &el.attributes {
        let _ = write!(out, " {name}=\"");
        for part in parts {
            match part {
                AttrPart::Literal(s) => {
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("&quot;"),
                            '&' => out.push_str("&amp;"),
                            '<' => out.push_str("&lt;"),
                            '{' => out.push_str("{{"),
                            '}' => out.push_str("}}"),
                            _ => out.push(c),
                        }
                    }
                }
                AttrPart::Enclosed(e) => {
                    out.push('{');
                    write_expr(out, e);
                    out.push('}');
                }
            }
        }
        out.push('"');
    }
    if el.content.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for part in &el.content {
        match part {
            ContentPart::Literal(s) => {
                for c in s.chars() {
                    match c {
                        '&' => out.push_str("&amp;"),
                        '<' => out.push_str("&lt;"),
                        '{' => out.push_str("{{"),
                        '}' => out.push_str("}}"),
                        _ => out.push(c),
                    }
                }
            }
            ContentPart::Enclosed(e) => {
                out.push('{');
                write_expr(out, e);
                out.push('}');
            }
            ContentPart::Child(e) => write_expr(out, e),
        }
    }
    let _ = write!(out, "</{}>", el.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    /// Parse → unparse → parse must yield the same tree (spans differ,
    /// so compare the unparses of both trees).
    fn roundtrip(src: &str) {
        let first = parse_query(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        let printed = unparse_module(&first);
        let second = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed:\n{printed}"));
        let printed2 = unparse_module(&second);
        assert_eq!(printed, printed2, "unparse not a fixed point for {src}");
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip("1 + 2 * 3");
        roundtrip("(1, 2, 3)[2]");
        roundtrip("-(3 - 5)");
        roundtrip("\"it\"\"s\"");
        roundtrip("1.5e0 + 2");
        roundtrip("$x and ($y or $z)");
        roundtrip("if (1 < 2) then \"a\" else \"b\"");
    }

    #[test]
    fn roundtrip_paths() {
        roundtrip("//book/title");
        roundtrip("/bib/book[price > 50]/author");
        roundtrip("$b/price");
        roundtrip("$rs/(quantity * price)");
        roundtrip("//sale/year-from-dateTime(timestamp)");
        roundtrip("//book/@year");
        roundtrip("child::book/descendant::text()");
        roundtrip("..");
    }

    #[test]
    fn roundtrip_flwor_with_extensions() {
        roundtrip(
            "for $b in //book group by $b/publisher into $p, $b/year into $y \
             nest $b/price - $b/discount into $n \
             let $avg := avg($n) where $avg > 10 \
             order by $p descending empty greatest, $y \
             return at $r <g rank=\"{$r}\">{$p, $y, $avg}</g>",
        );
        roundtrip(
            "for $s in //sale group by $s/region into $r \
             nest $s order by $s/timestamp descending into $rs \
             return count($rs)",
        );
        roundtrip(
            "declare function local:eq($a as item()*, $b as item()*) as xs:boolean { true() }; \
             for $x in (1,2) group by $x into $k using local:eq return $k",
        );
    }

    #[test]
    fn roundtrip_prolog() {
        roundtrip("declare ordering unordered; declare variable $n := 3; $n");
        roundtrip(
            "declare function local:f($x as xs:integer) as xs:integer { $x + 1 }; local:f(1)",
        );
    }

    #[test]
    fn roundtrip_constructors() {
        roundtrip("<a b=\"1\" c=\"x{1 + 1}y\">text{$v}<nested/></a>");
        roundtrip("element r { attribute a { 1 }, text { \"t\" } }");
        roundtrip("<!--note-->");
        roundtrip("<r>a{{b}}c</r>");
    }

    #[test]
    fn roundtrip_types_and_quantifiers() {
        roundtrip("$x instance of element(book)");
        roundtrip("\"5\" cast as xs:integer?");
        roundtrip("\"5\" castable as xs:date");
        roundtrip("some $x in (1, 2), $y in (3, 4) satisfies $x = $y");
    }

    #[test]
    fn unparse_is_deterministic() {
        let src = "for $b in //book return $b";
        let m = parse_query(src).unwrap();
        assert_eq!(unparse_module(&m), unparse_module(&m));
    }
}
