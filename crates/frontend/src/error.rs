//! Syntax errors with line/column rendering.

use std::fmt;

/// A static (parse-time) error: W3C class `XPST0003` unless noted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
    /// Byte offset into the source.
    pub offset: u32,
    /// Description of the problem.
    pub message: String,
}

impl SyntaxError {
    /// Create an error at a byte offset, computing line/column from the
    /// source text.
    pub fn at(source: &str, offset: u32, message: impl Into<String>) -> SyntaxError {
        let mut line = 1u32;
        let mut column = 1u32;
        for (i, c) in source.char_indices() {
            if i as u32 >= offset {
                break;
            }
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        SyntaxError {
            line,
            column,
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for SyntaxError {}

/// Result alias for the frontend.
pub type SyntaxResult<T> = Result<T, SyntaxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_column_from_offset() {
        let src = "for $b in //book\nreturn $b";
        let e = SyntaxError::at(src, 17, "boom");
        assert_eq!((e.line, e.column), (2, 1));
        let e2 = SyntaxError::at(src, 4, "boom");
        assert_eq!((e2.line, e2.column), (1, 5));
    }

    #[test]
    fn display_format() {
        let e = SyntaxError::at("x", 0, "unexpected end");
        assert_eq!(e.to_string(), "syntax error at 1:1: unexpected end");
    }
}
