//! Hand-written lexer for the XQuery subset.
//!
//! XQuery is not lexable with a fixed token stream: direct element
//! constructors switch the language into an XML-like character mode, and
//! most keywords are also legal names. This lexer therefore exposes two
//! interfaces:
//!
//! 1. [`Lexer::next_token`] — expression mode; skips whitespace and
//!    `(: ... :)` comments (which nest), and produces [`Token`]s.
//!    Keywords are *not* distinguished from names — the parser matches
//!    [`Token::NCName`] text contextually, as XQuery requires.
//! 2. Raw mode — a family of `raw_*` methods the parser drives while
//!    inside a direct constructor, where whitespace is significant.
//!
//! A `<` immediately followed by a name-start character is lexed as
//! [`Token::StartTagOpen`] (a direct-constructor opener); `a < b`
//! therefore needs the space, as in every practical XQuery processor.

use crate::ast::{Name, Span};
use crate::error::{SyntaxError, SyntaxResult};
use xqa_xdm::qname::{is_ncname_char, is_ncname_start};

/// Expression-mode tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A name with no colon (may be a keyword; parser decides).
    NCName(String),
    /// A prefixed name lexed as one token (`local:paths`).
    QName(String, String),
    /// `$name` or `$prefix:name`.
    VarName(String),
    /// Integer literal.
    Integer(i64),
    /// Decimal literal (kept lexical for exactness).
    Decimal(String),
    /// Double literal (had an exponent).
    Double(f64),
    /// String literal (escapes and entities resolved).
    StringLit(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:=`
    Assign,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Precedes,
    /// `>>`
    Follows,
    /// `|`
    Pipe,
    /// `?`
    Question,
    /// `::`
    ColonColon,
    /// `<name` — the start of a direct element constructor.
    StartTagOpen(Name),
    /// `<!--` — a direct comment constructor.
    CommentStart,
    /// `<?` — a direct PI constructor.
    PiStart,
    /// End of input.
    Eof,
}

impl Token {
    /// The NCName text if this token is a bare name.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Token::NCName(s) => Some(s),
            _ => None,
        }
    }

    /// Short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::NCName(s) => format!("name {s:?}"),
            Token::QName(p, l) => format!("name \"{p}:{l}\""),
            Token::VarName(v) => format!("variable ${v}"),
            Token::Integer(v) => format!("integer {v}"),
            Token::Decimal(v) => format!("decimal {v}"),
            Token::Double(v) => format!("double {v}"),
            Token::StringLit(_) => "string literal".to_string(),
            Token::StartTagOpen(n) => format!("start tag <{n}"),
            Token::CommentStart => "'<!--'".to_string(),
            Token::PiStart => "'<?'".to_string(),
            Token::Eof => "end of query".to_string(),
            other => format!("'{}'", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Token::LParen => "(",
            Token::RParen => ")",
            Token::LBracket => "[",
            Token::RBracket => "]",
            Token::LBrace => "{",
            Token::RBrace => "}",
            Token::Comma => ",",
            Token::Semicolon => ";",
            Token::Assign => ":=",
            Token::Slash => "/",
            Token::DoubleSlash => "//",
            Token::Dot => ".",
            Token::DotDot => "..",
            Token::At => "@",
            Token::Star => "*",
            Token::Plus => "+",
            Token::Minus => "-",
            Token::Eq => "=",
            Token::Ne => "!=",
            Token::Lt => "<",
            Token::Le => "<=",
            Token::Gt => ">",
            Token::Ge => ">=",
            Token::Precedes => "<<",
            Token::Follows => ">>",
            Token::Pipe => "|",
            Token::Question => "?",
            Token::ColonColon => "::",
            _ => "?",
        }
    }
}

/// The scanner. The parser owns one and drives it, switching between
/// token mode and raw mode.
pub struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `input`.
    pub fn new(input: &'a str) -> Lexer<'a> {
        Lexer { input, pos: 0 }
    }

    /// Current byte position (for spans).
    pub fn position(&self) -> u32 {
        self.pos as u32
    }

    /// The full source (for error rendering).
    pub fn source(&self) -> &'a str {
        self.input
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek_char(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_char2(&self) -> Option<char> {
        let mut it = self.rest().chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn error(&self, message: impl Into<String>) -> SyntaxError {
        SyntaxError::at(self.input, self.pos as u32, message)
    }

    /// Skip whitespace and nested `(: ... :)` comments.
    fn skip_trivia(&mut self) -> SyntaxResult<()> {
        loop {
            match self.peek_char() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('(') if self.rest().starts_with("(:") => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1;
                    while depth > 0 {
                        if self.eat("(:") {
                            depth += 1;
                        } else if self.eat(":)") {
                            depth -= 1;
                        } else if self.bump().is_none() {
                            self.pos = start;
                            return Err(self.error("unterminated comment"));
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Next token in expression mode, with its span.
    pub fn next_token(&mut self) -> SyntaxResult<(Token, Span)> {
        self.skip_trivia()?;
        let start = self.pos as u32;
        let token = self.scan_token()?;
        Ok((token, Span::new(start, self.pos as u32)))
    }

    fn scan_token(&mut self) -> SyntaxResult<Token> {
        let c = match self.peek_char() {
            None => return Ok(Token::Eof),
            Some(c) => c,
        };
        match c {
            '(' => {
                self.bump();
                Ok(Token::LParen)
            }
            ')' => {
                self.bump();
                Ok(Token::RParen)
            }
            '[' => {
                self.bump();
                Ok(Token::LBracket)
            }
            ']' => {
                self.bump();
                Ok(Token::RBracket)
            }
            '{' => {
                self.bump();
                Ok(Token::LBrace)
            }
            '}' => {
                self.bump();
                Ok(Token::RBrace)
            }
            ',' => {
                self.bump();
                Ok(Token::Comma)
            }
            ';' => {
                self.bump();
                Ok(Token::Semicolon)
            }
            '@' => {
                self.bump();
                Ok(Token::At)
            }
            '*' => {
                self.bump();
                Ok(Token::Star)
            }
            '+' => {
                self.bump();
                Ok(Token::Plus)
            }
            '-' => {
                self.bump();
                Ok(Token::Minus)
            }
            '|' => {
                self.bump();
                Ok(Token::Pipe)
            }
            '?' => {
                self.bump();
                Ok(Token::Question)
            }
            '=' => {
                self.bump();
                Ok(Token::Eq)
            }
            '!' => {
                self.bump();
                if self.eat("=") {
                    Ok(Token::Ne)
                } else {
                    Err(self.error("expected '=' after '!'"))
                }
            }
            ':' => {
                self.bump();
                if self.eat("=") {
                    Ok(Token::Assign)
                } else if self.eat(":") {
                    Ok(Token::ColonColon)
                } else {
                    Err(self.error("unexpected ':'"))
                }
            }
            '/' => {
                self.bump();
                if self.eat("/") {
                    Ok(Token::DoubleSlash)
                } else {
                    Ok(Token::Slash)
                }
            }
            '<' => {
                // Direct constructor? '<' + name-start with no space.
                if let Some(c2) = self.peek_char2() {
                    if is_ncname_start(c2) {
                        self.bump(); // '<'
                        let name = self.raw_name()?;
                        return Ok(Token::StartTagOpen(name));
                    }
                }
                if self.rest().starts_with("<!--") {
                    self.pos += 4;
                    return Ok(Token::CommentStart);
                }
                self.bump();
                if self.eat("=") {
                    Ok(Token::Le)
                } else if self.eat("<") {
                    Ok(Token::Precedes)
                } else if self.eat("?") {
                    Ok(Token::PiStart)
                } else {
                    Ok(Token::Lt)
                }
            }
            '>' => {
                self.bump();
                if self.eat("=") {
                    Ok(Token::Ge)
                } else if self.eat(">") {
                    Ok(Token::Follows)
                } else {
                    Ok(Token::Gt)
                }
            }
            '.' => {
                if matches!(self.peek_char2(), Some(d) if d.is_ascii_digit()) {
                    return self.scan_number();
                }
                self.bump();
                if self.eat(".") {
                    Ok(Token::DotDot)
                } else {
                    Ok(Token::Dot)
                }
            }
            '$' => {
                self.bump();
                let name = self.raw_name()?;
                Ok(Token::VarName(name.to_string()))
            }
            '"' | '\'' => self.scan_string(c),
            c if c.is_ascii_digit() => self.scan_number(),
            c if is_ncname_start(c) => {
                let name = self.raw_name()?;
                match name.prefix {
                    Some(p) => Ok(Token::QName(p, name.local)),
                    None => Ok(Token::NCName(name.local)),
                }
            }
            other => Err(self.error(format!("unexpected character {other:?}"))),
        }
    }

    fn scan_number(&mut self) -> SyntaxResult<Token> {
        let start = self.pos;
        while matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_decimal = false;
        if self.peek_char() == Some('.') {
            // Don't confuse `1..2` (error anyway) or `1.foo`; a decimal
            // point not followed by a digit still makes "1." a decimal.
            if self.peek_char2() != Some('.') {
                is_decimal = true;
                self.bump();
                while matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let mut is_double = false;
        if matches!(self.peek_char(), Some('e' | 'E')) {
            // Exponent: e [+-]? digits
            let save = self.pos;
            self.bump();
            if matches!(self.peek_char(), Some('+' | '-')) {
                self.bump();
            }
            if matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
                is_double = true;
                while matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text = &self.input[start..self.pos];
        // A number immediately followed by a name char is malformed
        // ("1foo"); report it rather than silently splitting.
        if matches!(self.peek_char(), Some(c) if is_ncname_start(c)) {
            return Err(self.error(format!("invalid numeric literal {text:?}")));
        }
        if is_double {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error(format!("invalid double literal {text:?}")))?;
            Ok(Token::Double(v))
        } else if is_decimal {
            Ok(Token::Decimal(text.to_string()))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Token::Integer(v)),
                // Out-of-range integers become decimals (spec: integer
                // literals outside implementation limits may overflow; we
                // widen instead).
                Err(_) => Ok(Token::Decimal(text.to_string())),
            }
        }
    }

    fn scan_string(&mut self, quote: char) -> SyntaxResult<Token> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek_char() {
                None => return Err(self.error("unterminated string literal")),
                Some(c) if c == quote => {
                    self.bump();
                    // Doubled quote = escaped quote.
                    if self.peek_char() == Some(quote) {
                        self.bump();
                        out.push(quote);
                    } else {
                        return Ok(Token::StringLit(out));
                    }
                }
                Some('&') => out.push_str(&self.raw_entity()?),
                Some(c) => {
                    self.bump();
                    out.push(c);
                }
            }
        }
    }

    // ---- raw mode (direct constructors) ------------------------------

    /// Raw: skip XML whitespace.
    pub fn raw_skip_ws(&mut self) {
        while matches!(self.peek_char(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    /// Raw: the next character without consuming.
    pub fn raw_peek(&self) -> Option<char> {
        self.peek_char()
    }

    /// Raw: true when the input continues with `s`.
    pub fn raw_starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Raw: consume `s` or fail.
    pub fn raw_expect(&mut self, s: &str) -> SyntaxResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected {s:?}")))
        }
    }

    /// Raw: consume `s` if present.
    pub fn raw_eat(&mut self, s: &str) -> bool {
        self.eat(s)
    }

    /// Raw: scan a (possibly prefixed) name.
    pub fn raw_name(&mut self) -> SyntaxResult<Name> {
        let local_or_prefix = self.raw_ncname()?;
        // Prefixed name only when the colon is immediately adjacent.
        if self.peek_char() == Some(':')
            && matches!(self.peek_char2(), Some(c) if is_ncname_start(c))
        {
            self.bump();
            let local = self.raw_ncname()?;
            Ok(Name::prefixed(local_or_prefix, local))
        } else {
            Ok(Name::local(local_or_prefix))
        }
    }

    fn raw_ncname(&mut self) -> SyntaxResult<String> {
        match self.peek_char() {
            Some(c) if is_ncname_start(c) => {}
            _ => return Err(self.error("expected a name")),
        }
        let start = self.pos;
        while matches!(self.peek_char(), Some(c) if is_ncname_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    /// Raw: an entity or character reference starting at `&`.
    fn raw_entity(&mut self) -> SyntaxResult<String> {
        debug_assert_eq!(self.peek_char(), Some('&'));
        self.bump();
        let start = self.pos;
        while matches!(self.peek_char(), Some(c) if c != ';') {
            self.bump();
        }
        let name = &self.input[start..self.pos];
        if self.bump() != Some(';') {
            return Err(self.error("unterminated entity reference"));
        }
        let ch = match name {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let v = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.error(format!("bad character reference &{name};")))?;
                char::from_u32(v).ok_or_else(|| self.error("invalid code point"))?
            }
            _ if name.starts_with('#') => {
                let v: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.error(format!("bad character reference &{name};")))?;
                char::from_u32(v).ok_or_else(|| self.error("invalid code point"))?
            }
            _ => return Err(self.error(format!("unknown entity &{name};"))),
        };
        Ok(ch.to_string())
    }

    /// Raw: an attribute value template. Consumes the opening quote
    /// first; returns the literal/enclosed boundary markers.
    ///
    /// Produces `(literal_chunk, saw_open_brace)` pairs: the caller
    /// parses an enclosed expression after each `true` and resumes.
    pub fn raw_attr_chunk(&mut self, quote: char) -> SyntaxResult<(String, AttrChunkEnd)> {
        let mut out = String::new();
        loop {
            match self.peek_char() {
                None => return Err(self.error("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.bump();
                    // Doubled quote escapes the quote inside the value.
                    if self.peek_char() == Some(quote) {
                        self.bump();
                        out.push(quote);
                    } else {
                        return Ok((out, AttrChunkEnd::CloseQuote));
                    }
                }
                Some('{') => {
                    self.bump();
                    if self.peek_char() == Some('{') {
                        self.bump();
                        out.push('{');
                    } else {
                        return Ok((out, AttrChunkEnd::OpenBrace));
                    }
                }
                Some('}') => {
                    self.bump();
                    if self.peek_char() == Some('}') {
                        self.bump();
                        out.push('}');
                    } else {
                        return Err(self.error("'}' must be doubled in attribute values"));
                    }
                }
                Some('<') => return Err(self.error("'<' not allowed in attribute values")),
                Some('&') => out.push_str(&self.raw_entity()?),
                Some(c) => {
                    self.bump();
                    out.push(c);
                }
            }
        }
    }

    /// Raw: one chunk of element content, ending at a significant
    /// boundary.
    pub fn raw_content_chunk(&mut self) -> SyntaxResult<(String, ContentChunkEnd)> {
        let mut out = String::new();
        loop {
            match self.peek_char() {
                None => return Err(self.error("unterminated element content")),
                Some('<') => {
                    if self.raw_starts_with("</") {
                        self.pos += 2;
                        return Ok((out, ContentChunkEnd::EndTagOpen));
                    }
                    if self.raw_starts_with("<!--") {
                        self.pos += 4;
                        return Ok((out, ContentChunkEnd::CommentStart));
                    }
                    if self.raw_starts_with("<![CDATA[") {
                        self.pos += 9;
                        let end = self
                            .rest()
                            .find("]]>")
                            .ok_or_else(|| self.error("unterminated CDATA section"))?;
                        out.push_str(&self.rest()[..end]);
                        self.pos += end + 3;
                        continue;
                    }
                    if self.raw_starts_with("<?") {
                        self.pos += 2;
                        return Ok((out, ContentChunkEnd::PiStart));
                    }
                    self.pos += 1;
                    return Ok((out, ContentChunkEnd::StartTagOpen));
                }
                Some('{') => {
                    self.bump();
                    if self.peek_char() == Some('{') {
                        self.bump();
                        out.push('{');
                    } else {
                        return Ok((out, ContentChunkEnd::OpenBrace));
                    }
                }
                Some('}') => {
                    self.bump();
                    if self.peek_char() == Some('}') {
                        self.bump();
                        out.push('}');
                    } else {
                        return Err(self.error("'}' must be doubled in element content"));
                    }
                }
                Some('&') => out.push_str(&self.raw_entity()?),
                Some(c) => {
                    self.bump();
                    out.push(c);
                }
            }
        }
    }

    /// Raw: the body of a direct comment constructor up to `-->`.
    pub fn raw_until(&mut self, marker: &str) -> SyntaxResult<String> {
        match self.rest().find(marker) {
            Some(end) => {
                let text = self.rest()[..end].to_string();
                self.pos += end + marker.len();
                Ok(text)
            }
            None => Err(self.error(format!("expected {marker:?}"))),
        }
    }
}

/// Why an attribute-value chunk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrChunkEnd {
    /// The closing quote — value complete.
    CloseQuote,
    /// `{` — an enclosed expression follows.
    OpenBrace,
}

/// Why an element-content chunk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentChunkEnd {
    /// `</` — the end tag follows.
    EndTagOpen,
    /// `<` + name — a child element follows.
    StartTagOpen,
    /// `{` — an enclosed expression follows.
    OpenBrace,
    /// `<!--` — a nested comment constructor.
    CommentStart,
    /// `<?` — a nested PI constructor.
    PiStart,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let (t, _) = lx.next_token().unwrap();
            if t == Token::Eof {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn basic_punctuation_and_operators() {
        assert_eq!(
            tokens(":= :: // / .. . @ * |"),
            vec![
                Token::Assign,
                Token::ColonColon,
                Token::DoubleSlash,
                Token::Slash,
                Token::DotDot,
                Token::Dot,
                Token::At,
                Token::Star,
                Token::Pipe,
            ]
        );
    }

    #[test]
    fn comparisons_need_space_before_names() {
        assert_eq!(
            tokens("$a < $b"),
            vec![
                Token::VarName("a".into()),
                Token::Lt,
                Token::VarName("b".into())
            ]
        );
        // '<' + name = start tag
        assert_eq!(tokens("<b"), vec![Token::StartTagOpen(Name::local("b"))]);
        assert_eq!(
            tokens("<= >= != << >>"),
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Precedes,
                Token::Follows
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(tokens("42"), vec![Token::Integer(42)]);
        assert_eq!(tokens("59.95"), vec![Token::Decimal("59.95".into())]);
        assert_eq!(tokens(".5"), vec![Token::Decimal(".5".into())]);
        assert_eq!(tokens("1e3"), vec![Token::Double(1000.0)]);
        assert_eq!(tokens("1.5E-2"), vec![Token::Double(0.015)]);
        // 100 div 10 — 'div' is a name token here
        assert_eq!(
            tokens("100 div 10"),
            vec![
                Token::Integer(100),
                Token::NCName("div".into()),
                Token::Integer(10)
            ]
        );
    }

    #[test]
    fn huge_integer_widens_to_decimal() {
        assert_eq!(
            tokens("99999999999999999999"),
            vec![Token::Decimal("99999999999999999999".into())]
        );
    }

    #[test]
    fn strings_with_escapes_and_entities() {
        assert_eq!(
            tokens(r#""Jim ""The"" Gray""#),
            vec![Token::StringLit(r#"Jim "The" Gray"#.into())]
        );
        assert_eq!(tokens("'it''s'"), vec![Token::StringLit("it's".into())]);
        assert_eq!(tokens(r#""a&amp;b""#), vec![Token::StringLit("a&b".into())]);
    }

    #[test]
    fn variables_and_qnames() {
        assert_eq!(
            tokens("$region-sales"),
            vec![Token::VarName("region-sales".into())]
        );
        assert_eq!(
            tokens("local:set-equal"),
            vec![Token::QName("local".into(), "set-equal".into())]
        );
        assert_eq!(
            tokens("fn:avg"),
            vec![Token::QName("fn".into(), "avg".into())]
        );
    }

    #[test]
    fn axis_colon_colon_not_confused_with_qname() {
        assert_eq!(
            tokens("child::book"),
            vec![
                Token::NCName("child".into()),
                Token::ColonColon,
                Token::NCName("book".into())
            ]
        );
    }

    #[test]
    fn comments_nest_and_are_skipped() {
        assert_eq!(
            tokens("1 (: outer (: inner :) still :) 2"),
            vec![Token::Integer(1), Token::Integer(2)]
        );
        let mut lx = Lexer::new("(: never closed");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn tag_open_lexes_name() {
        assert_eq!(
            tokens("<monthly-report"),
            vec![Token::StartTagOpen(Name::local("monthly-report"))]
        );
        assert_eq!(
            tokens("<x:r"),
            vec![Token::StartTagOpen(Name::prefixed("x", "r"))]
        );
    }

    #[test]
    fn raw_content_chunks() {
        let mut lx = Lexer::new("hello {$x} <b></b>");
        let (text, end) = lx.raw_content_chunk().unwrap();
        assert_eq!(text, "hello ");
        assert_eq!(end, ContentChunkEnd::OpenBrace);
        // caller would parse $x and the '}' in token mode
        let (t, _) = lx.next_token().unwrap();
        assert_eq!(t, Token::VarName("x".into()));
        let (t, _) = lx.next_token().unwrap();
        assert_eq!(t, Token::RBrace);
        let (text, end) = lx.raw_content_chunk().unwrap();
        assert_eq!(text, " ");
        assert_eq!(end, ContentChunkEnd::StartTagOpen);
    }

    #[test]
    fn raw_content_escaped_braces_and_entities() {
        let mut lx = Lexer::new("a{{b}}c&lt;d</");
        let (text, end) = lx.raw_content_chunk().unwrap();
        assert_eq!(text, "a{b}c<d");
        assert_eq!(end, ContentChunkEnd::EndTagOpen);
    }

    #[test]
    fn raw_attr_chunks() {
        let mut lx = Lexer::new(r#"year {$y}!" rest"#);
        let (text, end) = lx.raw_attr_chunk('"').unwrap();
        assert_eq!(text, "year ");
        assert_eq!(end, AttrChunkEnd::OpenBrace);
    }

    #[test]
    fn raw_cdata_in_content() {
        let mut lx = Lexer::new("a<![CDATA[<raw>&]]>b</");
        let (text, _) = lx.raw_content_chunk().unwrap();
        assert_eq!(text, "a<raw>&b");
    }

    #[test]
    fn error_positions_are_reported() {
        let mut lx = Lexer::new("   #");
        let err = lx.next_token().unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }
}
