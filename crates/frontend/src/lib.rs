//! # xqa-frontend — XQuery lexer, AST and parser
//!
//! Parses the XQuery 1.0 subset required by *"Extending XQuery for
//! Analytics"* (SIGMOD 2005) plus the paper's proposed extensions:
//!
//! - `group by Expr into $v (using QName)?` with `nest Expr (order by
//!   ...)? into $v`, post-group `let`/`where` (§3);
//! - output numbering `return at $v Expr` (§4).
//!
//! Entry points: [`parse_query`] (prolog + body) and
//! [`parse_expression`] (body only).

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod unparse;

pub use error::{SyntaxError, SyntaxResult};
pub use parser::{parse_expression, parse_query};
pub use unparse::{unparse_expr, unparse_module};
