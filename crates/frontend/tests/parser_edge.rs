//! Parser edge cases beyond the unit tests: error positions, nasty
//! constructor content, keyword/name ambiguity, deep nesting.

use xqa_frontend::ast::*;
use xqa_frontend::{parse_expression, parse_query, unparse_expr};

fn expr(src: &str) -> Expr {
    parse_expression(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
}

#[test]
fn error_positions_point_at_the_problem() {
    let err = parse_expression("for $b in //book\nreturn $b +").unwrap_err();
    assert_eq!(err.line, 2, "{err}");
    let err = parse_expression("1 +\n+\n#").unwrap_err();
    assert_eq!(err.line, 3, "{err}");
}

#[test]
fn keywords_as_names_everywhere() {
    // Clause keywords are fine as element names in paths and tags.
    expr("//group/by/into/nest/using");
    expr("<for><let>x</let></for>");
    expr("$x/return");
    expr("//order[where = 1]");
    // and as function-local variable names
    expr("for $for in (1,2) let $let := $for return $let");
}

#[test]
fn cdata_in_constructor_content() {
    let e = expr("<code><![CDATA[if (a < b) { return; }]]></code>");
    match e.kind {
        ExprKind::DirectElement(el) => {
            assert!(matches!(
                &el.content[0],
                ContentPart::Literal(s) if s == "if (a < b) { return; }"
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn nested_comment_constructors_and_pis() {
    let e = expr("<r><!--a comment--><?target some data?></r>");
    match e.kind {
        ExprKind::DirectElement(el) => {
            assert_eq!(el.content.len(), 2);
            assert!(matches!(&el.content[0], ContentPart::Child(c)
                if matches!(&c.kind, ExprKind::DirectComment(s) if s == "a comment")));
            assert!(matches!(&el.content[1], ContentPart::Child(c)
                if matches!(&c.kind, ExprKind::DirectPi(t, d) if t == "target" && d == "some data")));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn single_quoted_attributes_and_entities() {
    let e = expr("<r a='x{1}y' b='&lt;&amp;'/>");
    match e.kind {
        ExprKind::DirectElement(el) => {
            assert_eq!(el.attributes.len(), 2);
            let (_, parts) = &el.attributes[1];
            assert!(matches!(&parts[0], AttrPart::Literal(s) if s == "<&"));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn deeply_nested_expressions_parse_up_to_the_limit() {
    // Parser frames are large in debug builds, so run the deep cases on
    // a thread with a production-sized stack (the depth cap is sized
    // for the default 8 MB main-thread stack).
    std::thread::Builder::new()
        .stack_size(16 * 1024 * 1024)
        .spawn(|| {
            // 60 levels of parens parse; 200 levels error cleanly
            // instead of overflowing the stack.
            let ok = format!("{}1{}", "(".repeat(60), ")".repeat(60));
            expr(&ok);
            let too_deep = format!("{}1{}", "(".repeat(200), ")".repeat(200));
            let err = parse_expression(&too_deep).unwrap_err();
            assert!(err.to_string().contains("nesting"), "{err}");
            // deeply nested elements (content recursion is shallower)
            let open: String = (0..40).map(|i| format!("<e{i}>")).collect();
            let close: String = (0..40).rev().map(|i| format!("</e{i}>")).collect();
            expr(&format!("{open}x{close}"));
        })
        .expect("spawn")
        .join()
        .expect("deep parse thread");
}

#[test]
fn flwor_clause_order_is_enforced() {
    // where before group by is pre-group; a second where without group
    // by is an error.
    assert!(parse_expression("for $x in (1) where 1 where 2 return $x").is_err());
    // order by cannot precede where
    assert!(parse_expression("for $x in (1) order by $x where 1 return $x").is_err());
    // nest before group keys is an error
    assert!(parse_expression("for $x in (1) group by nest $x into $n return $n").is_err());
    // using must name a function
    assert!(parse_expression("for $x in (1) group by $x into $k using 42 return $k").is_err());
}

#[test]
fn group_by_clause_boundaries() {
    // `nest` only after all keys; post-group let/where attach correctly.
    let e = expr(
        "for $x in (1,2,3) \
         group by $x mod 2 into $k nest $x into $xs, $x * 2 into $ds \
         let $n := count($xs) let $m := count($ds) \
         where $n > 0 \
         return ($k, $n, $m)",
    );
    match e.kind {
        ExprKind::Flwor(f) => {
            let g = f.group_by.unwrap();
            assert_eq!(g.keys.len(), 1);
            assert_eq!(g.nests.len(), 2);
            assert_eq!(f.post_group_clauses.len(), 2);
            assert!(f.post_group_where.is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn return_at_requires_variable() {
    // `return at` followed by non-variable parses `at` as a path step
    // start and then fails cleanly.
    assert!(parse_expression("for $x in (1) return at 5").is_err());
}

#[test]
fn comments_allowed_between_any_tokens() {
    let e = expr(
        "for (: iterate :) $b (: the book :) in (: over :) //book \
         group (: ! :) by $b/year into $y \
         return (: emit :) $y",
    );
    assert!(matches!(e.kind, ExprKind::Flwor(_)));
}

#[test]
fn operators_vs_names_need_whitespace() {
    // `$a-$b` is a name problem in XQuery: `a-$b` can't be a name, so
    // the lexer sees `$a` then `-$b`... actually `-` binds to the
    // following token; this parses as subtraction because `$a` ends at
    // the `-` (variable names can't contain `-` followed by `$`).
    let e = expr("$a -$b");
    assert!(matches!(e.kind, ExprKind::Arith(ArithOp::Sub, _, _)));
    // but a hyphenated variable is one name
    let e = expr("$region-sales");
    assert!(matches!(e.kind, ExprKind::VarRef(ref n) if n == "region-sales"));
}

#[test]
fn unparse_handles_every_escape() {
    let cases = [
        r#""quote""inside""#,
        "<r>{1}{2}</r>",
        "<r a=\"{{literal brace}}\"/>",
    ];
    for src in cases {
        let e = expr(src);
        let printed = unparse_expr(&e);
        let again = parse_expression(&printed)
            .unwrap_or_else(|err| panic!("unparse of {src:?} gave unparseable {printed:?}: {err}"));
        assert_eq!(unparse_expr(&again), printed);
    }
}

#[test]
fn version_prolog_variants() {
    assert!(parse_query("xquery version \"1.0\"; 1").is_ok());
    assert!(parse_query("xquery version \"3.0\"; 1").is_ok());
    assert!(parse_query("xquery version \"2.99\"; 1").is_err());
}

#[test]
fn declare_requires_known_declaration() {
    // `declare` followed by something else is treated as a path step,
    // which then fails to parse as a full query body.
    assert!(parse_query("declare frobnicate x; 1").is_err());
}

#[test]
fn empty_and_whitespace_queries_fail_cleanly() {
    assert!(parse_query("").is_err());
    assert!(parse_query("   \n\t  ").is_err());
    assert!(parse_query("(: only a comment :)").is_err());
}
