//! # xqa — Extending XQuery for Analytics
//!
//! A from-scratch Rust implementation of the XQuery analytics
//! extensions proposed by Beyer, Chamberlin, Colby, Özcan, Pirahesh and
//! Xu in *"Extending XQuery for Analytics"* (SIGMOD 2005):
//!
//! - an explicit **`group by`** clause for FLWOR expressions, with
//!   `nest ... into` bindings, deep-equal grouping over complex keys,
//!   custom equality via `using`, per-nest `order by` for windowing,
//!   and post-group `let`/`where`;
//! - **output numbering** via `return at $rank`;
//!
//! on top of a complete substrate built for this reproduction: an XDM
//! value layer, an XML parser/serializer, an XQuery-1.0-subset frontend,
//! and a compiling evaluator.
//!
//! ## Quickstart
//!
//! ```
//! use xqa::{Engine, DynamicContext, parse_document, serialize_sequence};
//!
//! let doc = parse_document(
//!     "<bib>\
//!        <book><publisher>MK</publisher><price>10.00</price></book>\
//!        <book><publisher>MK</publisher><price>20.00</price></book>\
//!        <book><publisher>AW</publisher><price>40.00</price></book>\
//!      </bib>").unwrap();
//!
//! let engine = Engine::new();
//! let query = engine.compile(
//!     "for $b in //book
//!      group by $b/publisher into $p
//!      nest $b/price into $prices
//!      order by $p
//!      return <r>{string($p)}: {avg($prices)}</r>").unwrap();
//!
//! let mut ctx = DynamicContext::new();
//! ctx.set_context_document(&doc);
//! let result = query.run(&ctx).unwrap();
//! assert_eq!(serialize_sequence(&result), "<r>AW: 40</r><r>MK: 15</r>");
//! ```

#![warn(missing_docs)]

pub use xqa_engine::{
    resolve_access_path, resolve_expr_eval, resolve_join, resolve_threads, AccessPathMode, Clock,
    DynamicContext, Engine, EngineError, EngineOptions, EngineResult, EvalStats, EvalStatsSnapshot,
    ExprEvalMode, Focus, JoinMode, MonotonicClock, OpKind, PreparedQuery, QueryProfile,
    RewriteKind, RewriteNote, TickClock, TraceEvent, TracePhase, TraceRing, TraceSink, Tracer,
};
pub use xqa_xmlparse::{
    parse_document, parse_document_with, parse_fragment, serialize_node, serialize_node_with,
    serialize_sequence, serialize_sequence_with, ParseError, ParseOptions, SerializeOptions,
};

/// The data-model layer (items, nodes, atomic values).
pub use xqa_xdm as xdm;

/// The frontend (lexer, AST, parser) for tooling that wants syntax trees.
pub use xqa_frontend as frontend;

/// The serving layer (document catalog, plan cache, HTTP server) behind
/// `xqa serve`.
pub use xqa_service as service;

/// The indexed document-store layer: dictionary-encoded names,
/// structural interval labels, element postings, typed-value indexes
/// and the per-path statistics the planner consults.
pub use xqa_storage as storage;

use xqa_xdm::Sequence;

/// One-shot convenience: compile `query`, run it against `xml`, and
/// serialize the result compactly.
///
/// ```
/// assert_eq!(xqa::run_query("sum(//v)", "<r><v>1</v><v>2</v></r>").unwrap(), "3");
/// ```
pub fn run_query(query: &str, xml: &str) -> EngineResult<String> {
    Ok(serialize_sequence(&run_query_items(query, xml)?))
}

/// One-shot convenience returning the raw result sequence.
pub fn run_query_items(query: &str, xml: &str) -> EngineResult<Sequence> {
    let engine = Engine::new();
    let compiled = engine.compile(query)?;
    let doc = parse_document(xml).map_err(|e| EngineError::Static {
        code: xqa_xdm::ErrorCode::Other,
        message: e.to_string(),
    })?;
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    compiled.run(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_query_convenience() {
        assert_eq!(run_query("1 + 1", "<x/>").unwrap(), "2");
        assert_eq!(
            run_query(
                "for $v in //v group by $v into $k return string($k)",
                "<r><v>a</v><v>a</v></r>"
            )
            .unwrap(),
            "a"
        );
    }

    #[test]
    fn run_query_propagates_errors() {
        assert!(run_query("$nope", "<x/>").is_err());
        assert!(run_query("1", "<not closed").is_err());
    }
}
