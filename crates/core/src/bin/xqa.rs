//! `xqa` — command-line XQuery-with-analytics runner and server.
//!
//! ```text
//! xqa [OPTIONS] <query.xq | -q "query text"> [input.xml]
//!
//!   -q, --query <TEXT>          inline query text instead of a file
//!   -i, --input <FILE>          input XML document (context item)
//!       --doc NAME=FILE         register a document for fn:doc("NAME")
//!       --collection NAME=F,..  register a collection for fn:collection("NAME")
//!       --pretty                pretty-print the result
//!       --stats                 print evaluator statistics to stderr
//!       --stats-json            print stats (and profile) as JSON to stderr
//!       --profile               run profiled; print `explain analyze` to stderr
//!       --trace-json FILE       write compile/execute trace events to FILE
//!       --diag-json FILE        write one diagnostics object (plan fingerprint,
//!                               rewrites, stats, profile with spans and
//!                               q-errors, trace events) to FILE
//!       --deterministic-clock   profile with a fixed-tick clock (for tests)
//!       --detect-groupby        enable the implicit group-by rewrite
//!       --threads N             intra-query parallelism (default: all cores;
//!                               1 = serial)
//!       --expr-eval MODE        scalar expression evaluation: auto | bytecode
//!                               | tree (default auto)
//!       --join MODE             joinable nested-FLWOR execution: auto | hash
//!                               | nested (default auto)
//!   -h, --help                  this help
//!
//! xqa serve [OPTIONS]           start the HTTP query service
//!
//!       --addr HOST:PORT        bind address (default 127.0.0.1:8399)
//!   -i, --input FILE            context document served to every query
//!       --doc NAME=FILE         as above
//!       --collection NAME=F,..  as above
//!       --workers N             worker threads (default: one per core)
//!       --query-threads N       intra-query parallelism per request
//!                               (default: all cores; 1 = serial)
//!       --cache-size N          prepared-plan cache capacity (default 128)
//!       --max-queue N           admitted connections allowed to wait for a
//!                               worker; excess shed with 429 (default 128)
//!       --max-inflight-per-client N
//!                               admitted connections per client IP
//!                               (default 64)
//!       --max-requests-per-conn N
//!                               keep-alive requests served per connection
//!                               before the server closes it (default 1000)
//!       --slow-query-ms N       log queries slower than N ms to stderr
//!       --flight-recorder-capacity N
//!                               per-query records kept for /debug/* endpoints
//!                               (default 256; 0 disables the recorder)
//!       --detect-groupby        as above
//!       --expr-eval MODE        as above (auto|bytecode|tree)
//!       --join MODE             as above (auto|hash|nested)
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use xqa::{
    parse_document, serialize_sequence_with, AccessPathMode, Clock, DynamicContext, Engine,
    EngineOptions, ExprEvalMode, JoinMode, MonotonicClock, SerializeOptions, TickClock, TracePhase,
    TraceRing, TraceSink, Tracer,
};
use xqa_service::{DocumentCatalog, Server, ServiceConfig};

/// Tick width of the `--deterministic-clock` profile clock: 1ms per
/// clock read, so golden profile output is stable across machines.
const DETERMINISTIC_TICK_NANOS: u64 = 1_000_000;

/// Capacity of the `--trace-json` event ring (events beyond this drop
/// oldest-first; a single compile-and-run emits far fewer).
const TRACE_RING_CAPACITY: usize = 1024;

struct Args {
    query_text: Option<String>,
    query_file: Option<String>,
    input: Option<String>,
    docs: Vec<(String, String)>,
    collections: Vec<(String, Vec<String>)>,
    pretty: bool,
    stats: bool,
    stats_json: bool,
    explain: bool,
    profile: bool,
    trace_json: Option<String>,
    diag_json: Option<String>,
    deterministic_clock: bool,
    detect_groupby: bool,
    threads: usize,
    access_path: AccessPathMode,
    expr_eval: ExprEvalMode,
    join: JoinMode,
}

const USAGE: &str = "usage: xqa [OPTIONS] <query.xq | -q QUERY> [input.xml]
       xqa serve [OPTIONS]
options:
  -q, --query TEXT          inline query text
  -i, --input FILE          input XML document (context item)
      --doc NAME=FILE       register a document for fn:doc(\"NAME\")
      --collection NAME=FILE[,FILE...]
                            register a collection for fn:collection(\"NAME\")
      --pretty              pretty-print the result
      --stats               print evaluator statistics to stderr
      --stats-json          print statistics (and the profile, with --profile)
                            as one JSON object on stderr
      --explain             print the compiled plan to stderr before running
      --profile             run with per-operator profiling and print
                            `explain analyze` to stderr
      --trace-json FILE     write structured trace events (parse, rewrites,
                            compile, execute) to FILE as JSON
      --diag-json FILE      write one diagnostics JSON object to FILE: the
                            plan fingerprint, applied rewrites, evaluator
                            stats, the full profile (operator est/actual
                            counters, q-errors, span timeline) and the
                            compile/execute trace events
      --deterministic-clock profile with a fixed-tick clock so timings are
                            reproducible (for tests and goldens)
      --detect-groupby      enable the implicit group-by detection rewrite
      --threads N           intra-query parallelism: worker threads for
                            eligible FLWORs (default: all cores, or
                            XQA_THREADS; 1 = serial)
      --access-path MODE    scan access path: auto (statistics decide),
                            walk (always tree-walk), index (force index
                            scans); default auto, overridable with
                            XQA_FORCE_ACCESS_PATH
      --expr-eval MODE      scalar expression evaluation: auto (bytecode
                            where lowering succeeds), bytecode (same,
                            explicit), tree (always tree-walk); default
                            auto, overridable with XQA_FORCE_EXPR_EVAL
      --join MODE           joinable nested-FLWOR execution: auto
                            (statistics decide), hash (always unnest to a
                            hash join), nested (never); default auto,
                            overridable with XQA_FORCE_JOIN
  -h, --help                show this help
serve options:
      --addr HOST:PORT      bind address (default 127.0.0.1:8399)
      --workers N           worker threads (default: one per core)
      --query-threads N     intra-query parallelism per request (default:
                            all cores, or XQA_THREADS; 1 = serial)
      --cache-size N        prepared-plan cache capacity (default 128)
      --max-queue N         admitted connections allowed to wait for a
                            worker beyond the workers themselves; excess
                            connections are shed with 429 + Retry-After
                            (default 128)
      --max-inflight-per-client N
                            admitted connections allowed per client IP at
                            once (default 64)
      --max-requests-per-conn N
                            keep-alive requests served on one connection
                            before the server closes it (default 1000)
      --slow-query-ms N     log queries slower than N ms to stderr
      --flight-recorder-capacity N
                            completed-query records retained for the
                            /debug/queries, /debug/query/<id> and
                            /debug/plans endpoints (default 256;
                            0 disables the recorder)
      --access-path MODE    as above (auto|walk|index)
      --expr-eval MODE      as above (auto|bytecode|tree)
      --join MODE           as above (auto|hash|nested)";

fn parse_doc_spec(spec: &str) -> Result<(String, String), String> {
    let (name, file) = spec
        .split_once('=')
        .ok_or("--doc requires NAME=FILE syntax")?;
    Ok((name.to_string(), file.to_string()))
}

fn parse_collection_spec(spec: &str) -> Result<(String, Vec<String>), String> {
    let (name, files) = spec
        .split_once('=')
        .ok_or("--collection requires NAME=FILE[,FILE...] syntax")?;
    let files: Vec<String> = files
        .split(',')
        .filter(|f| !f.is_empty())
        .map(str::to_string)
        .collect();
    if files.is_empty() {
        return Err("--collection requires at least one file".to_string());
    }
    Ok((name.to_string(), files))
}

fn parse_args(raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        query_text: None,
        query_file: None,
        input: None,
        docs: Vec::new(),
        collections: Vec::new(),
        pretty: false,
        stats: false,
        stats_json: false,
        explain: false,
        profile: false,
        trace_json: None,
        diag_json: None,
        deterministic_clock: false,
        detect_groupby: false,
        threads: 0,
        access_path: AccessPathMode::Auto,
        expr_eval: ExprEvalMode::Auto,
        join: JoinMode::Auto,
    };
    let mut it = raw;
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-q" | "--query" => {
                args.query_text = Some(it.next().ok_or_else(|| format!("{arg} requires a value"))?);
            }
            "-i" | "--input" => {
                args.input = Some(it.next().ok_or_else(|| format!("{arg} requires a value"))?);
            }
            "--doc" => {
                let spec = it.next().ok_or("--doc requires NAME=FILE")?;
                args.docs.push(parse_doc_spec(&spec)?);
            }
            "--collection" => {
                let spec = it
                    .next()
                    .ok_or("--collection requires NAME=FILE[,FILE...]")?;
                args.collections.push(parse_collection_spec(&spec)?);
            }
            "--pretty" => args.pretty = true,
            "--stats" => args.stats = true,
            "--stats-json" => args.stats_json = true,
            "--explain" => args.explain = true,
            "--profile" => args.profile = true,
            "--trace-json" => {
                args.trace_json = Some(it.next().ok_or("--trace-json requires a file")?);
            }
            "--diag-json" => {
                args.diag_json = Some(it.next().ok_or("--diag-json requires a file")?);
            }
            "--deterministic-clock" => args.deterministic_clock = true,
            "--detect-groupby" => args.detect_groupby = true,
            "--threads" => {
                let n = it.next().ok_or("--threads requires a number")?;
                args.threads = n.parse().map_err(|_| format!("invalid thread count {n}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--access-path" => {
                let mode = it.next().ok_or("--access-path requires a mode")?;
                args.access_path = AccessPathMode::parse(&mode)
                    .ok_or_else(|| format!("invalid access path {mode} (auto|walk|index)"))?;
            }
            "--expr-eval" => {
                let mode = it.next().ok_or("--expr-eval requires a mode")?;
                args.expr_eval = ExprEvalMode::parse(&mode)
                    .ok_or_else(|| format!("invalid expr eval mode {mode} (auto|bytecode|tree)"))?;
            }
            "--join" => {
                let mode = it.next().ok_or("--join requires a mode")?;
                args.join = JoinMode::parse(&mode)
                    .ok_or_else(|| format!("invalid join mode {mode} (auto|hash|nested)"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    if args.query_text.is_none() {
        args.query_file = Some(positional.next().ok_or("missing query (file or -q)")?);
    }
    if args.input.is_none() {
        args.input = positional.next();
    }
    if let Some(extra) = positional.next() {
        return Err(format!("unexpected argument {extra}"));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let query_source = match (&args.query_text, &args.query_file) {
        (Some(text), _) => text.clone(),
        (None, Some(file)) => {
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?
        }
        (None, None) => unreachable!("parse_args guarantees a query"),
    };
    // One clock serves both the trace timestamps and the profile
    // timings, so `--deterministic-clock` pins every reading.
    let clock: Arc<dyn Clock> = if args.deterministic_clock {
        Arc::new(TickClock::new(DETERMINISTIC_TICK_NANOS))
    } else {
        Arc::new(MonotonicClock::new())
    };
    // Load documents before compiling: the indexed stores built over
    // them yield the statistics the planner's access-path decisions
    // consult.
    let mut ctx = DynamicContext::new();
    ctx.set_clock(Arc::clone(&clock));
    if args.profile || args.diag_json.is_some() {
        ctx.enable_profiling();
    }
    if let Some(input) = &args.input {
        let text =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
        let doc = parse_document(&text).map_err(|e| format!("{input}: {e}"))?;
        ctx.set_context_document(&doc);
    }
    // Hold registered docs alive for the duration of the run.
    let mut registered = Vec::new();
    for (name, file) in &args.docs {
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let doc = parse_document(&text).map_err(|e| format!("{file}: {e}"))?;
        ctx.register_document(name.clone(), &doc);
        registered.push(doc);
    }
    for (name, files) in &args.collections {
        let mut roots = Vec::with_capacity(files.len());
        for file in files {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let doc = parse_document(&text).map_err(|e| format!("{file}: {e}"))?;
            roots.push(doc.root());
            registered.push(doc);
        }
        ctx.register_collection(name.clone(), roots);
    }
    ctx.index_documents();
    let statistics = Arc::new(xqa::storage::CatalogStatistics::from_stores(
        ctx.stores().map(Arc::as_ref),
    ));
    let engine = Engine::with_options(EngineOptions {
        detect_implicit_groupby: args.detect_groupby,
        threads: args.threads,
        access_path: args.access_path,
        expr_eval: args.expr_eval,
        join: args.join,
        ..Default::default()
    })
    .with_statistics(statistics);
    let trace_ring = (args.trace_json.is_some() || args.diag_json.is_some())
        .then(|| Arc::new(TraceRing::new(TRACE_RING_CAPACITY)));
    let tracer = trace_ring.as_ref().map(|ring| {
        Tracer::new(
            1,
            Arc::clone(&clock),
            Arc::clone(ring) as Arc<dyn TraceSink>,
        )
    });
    let query = engine
        .compile_traced(&query_source, tracer.as_ref())
        .map_err(|e| e.to_string())?;
    for rewrite in query.applied_rewrites() {
        eprintln!("rewrite: {rewrite}");
    }
    if args.explain {
        eprint!("{}", query.explain());
    }
    let result = query.run(&ctx).map_err(|e| e.to_string())?;
    if let Some(t) = &tracer {
        t.emit(
            TracePhase::Execute,
            format!("evaluated: {} item(s) in result", result.len()),
        );
    }
    let options = if args.pretty {
        SerializeOptions::pretty()
    } else {
        SerializeOptions::default()
    };
    println!("{}", serialize_sequence_with(&result, options));
    let profile = if args.profile || args.diag_json.is_some() {
        let p = ctx.take_profile().unwrap_or_default();
        if args.profile {
            eprint!("{}", query.explain_analyze(&p));
        }
        Some(p)
    } else {
        None
    };
    if args.stats {
        let s = ctx.stats.snapshot();
        eprintln!(
            "stats: nodes_visited={} tuples_grouped={} groups_emitted={} comparisons={} \
             tuples_produced={} pruned_filter={} pruned_topk={}",
            s.nodes_visited,
            s.tuples_grouped,
            s.groups_emitted,
            s.comparisons,
            s.tuples_produced,
            s.tuples_pruned_filter,
            s.tuples_pruned_topk
        );
    }
    if args.stats_json {
        let s = ctx.stats.snapshot();
        match &profile {
            Some(p) => eprintln!("{{\"stats\":{},\"profile\":{}}}", s.to_json(), p.to_json()),
            None => eprintln!("{{\"stats\":{}}}", s.to_json()),
        }
    }
    if let (Some(file), Some(ring)) = (&args.trace_json, &trace_ring) {
        std::fs::write(file, ring.to_json()).map_err(|e| format!("cannot write {file}: {e}"))?;
    }
    if let Some(file) = &args.diag_json {
        // One self-contained diagnostics object — the CLI's offline
        // equivalent of a server-side flight record.
        let rewrites = query
            .applied_rewrites()
            .iter()
            .map(|r| format!("\"{}\"", xqa_service::http::json_escape(&r.to_string())))
            .collect::<Vec<_>>()
            .join(",");
        let diag = format!(
            "{{\"fingerprint\":\"{:016x}\",\"rewrites\":[{rewrites}],\"stats\":{},\
             \"profile\":{},\"trace\":{}}}",
            query.fingerprint(),
            ctx.stats.snapshot().to_json(),
            profile.as_ref().expect("profiling enabled").to_json(),
            trace_ring
                .as_ref()
                .map_or_else(|| "[]".to_string(), |r| r.to_json()),
        );
        std::fs::write(file, diag).map_err(|e| format!("cannot write {file}: {e}"))?;
    }
    Ok(())
}

struct ServeArgs {
    addr: String,
    input: Option<String>,
    docs: Vec<(String, String)>,
    collections: Vec<(String, Vec<String>)>,
    workers: usize,
    query_threads: usize,
    cache_size: usize,
    max_queue: usize,
    max_inflight_per_client: usize,
    max_requests_per_conn: usize,
    slow_query_ms: Option<u64>,
    flight_recorder_capacity: usize,
    detect_groupby: bool,
    access_path: AccessPathMode,
    expr_eval: ExprEvalMode,
    join: JoinMode,
}

fn parse_serve_args(raw: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        addr: "127.0.0.1:8399".to_string(),
        input: None,
        docs: Vec::new(),
        collections: Vec::new(),
        workers: 0,
        query_threads: 0,
        cache_size: 128,
        max_queue: ServiceConfig::default().max_queue,
        max_inflight_per_client: ServiceConfig::default().max_inflight_per_client,
        max_requests_per_conn: ServiceConfig::default().max_requests_per_conn,
        slow_query_ms: None,
        flight_recorder_capacity: ServiceConfig::default().flight_recorder_capacity,
        detect_groupby: false,
        access_path: AccessPathMode::Auto,
        expr_eval: ExprEvalMode::Auto,
        join: JoinMode::Auto,
    };
    let mut it = raw;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "--addr" => {
                args.addr = it.next().ok_or("--addr requires HOST:PORT")?;
            }
            "-i" | "--input" => {
                args.input = Some(it.next().ok_or_else(|| format!("{arg} requires a value"))?);
            }
            "--doc" => {
                let spec = it.next().ok_or("--doc requires NAME=FILE")?;
                args.docs.push(parse_doc_spec(&spec)?);
            }
            "--collection" => {
                let spec = it
                    .next()
                    .ok_or("--collection requires NAME=FILE[,FILE...]")?;
                args.collections.push(parse_collection_spec(&spec)?);
            }
            "--workers" => {
                let n = it.next().ok_or("--workers requires a number")?;
                args.workers = n.parse().map_err(|_| format!("invalid worker count {n}"))?;
            }
            "--query-threads" => {
                let n = it.next().ok_or("--query-threads requires a number")?;
                args.query_threads = n.parse().map_err(|_| format!("invalid thread count {n}"))?;
                if args.query_threads == 0 {
                    return Err("--query-threads must be at least 1".to_string());
                }
            }
            "--cache-size" => {
                let n = it.next().ok_or("--cache-size requires a number")?;
                args.cache_size = n.parse().map_err(|_| format!("invalid cache size {n}"))?;
            }
            "--max-queue" => {
                let n = it.next().ok_or("--max-queue requires a number")?;
                args.max_queue = n.parse().map_err(|_| format!("invalid queue bound {n}"))?;
            }
            "--max-inflight-per-client" => {
                let n = it
                    .next()
                    .ok_or("--max-inflight-per-client requires a number")?;
                args.max_inflight_per_client =
                    n.parse().map_err(|_| format!("invalid quota {n}"))?;
                if args.max_inflight_per_client == 0 {
                    return Err("--max-inflight-per-client must be at least 1".to_string());
                }
            }
            "--max-requests-per-conn" => {
                let n = it
                    .next()
                    .ok_or("--max-requests-per-conn requires a number")?;
                args.max_requests_per_conn =
                    n.parse().map_err(|_| format!("invalid request cap {n}"))?;
                if args.max_requests_per_conn == 0 {
                    return Err("--max-requests-per-conn must be at least 1".to_string());
                }
            }
            "--slow-query-ms" => {
                let n = it.next().ok_or("--slow-query-ms requires a number")?;
                args.slow_query_ms = Some(n.parse().map_err(|_| format!("invalid threshold {n}"))?);
            }
            "--flight-recorder-capacity" => {
                let n = it
                    .next()
                    .ok_or("--flight-recorder-capacity requires a number")?;
                args.flight_recorder_capacity =
                    n.parse().map_err(|_| format!("invalid capacity {n}"))?;
            }
            "--detect-groupby" => args.detect_groupby = true,
            "--access-path" => {
                let mode = it.next().ok_or("--access-path requires a mode")?;
                args.access_path = AccessPathMode::parse(&mode)
                    .ok_or_else(|| format!("invalid access path {mode} (auto|walk|index)"))?;
            }
            "--expr-eval" => {
                let mode = it.next().ok_or("--expr-eval requires a mode")?;
                args.expr_eval = ExprEvalMode::parse(&mode)
                    .ok_or_else(|| format!("invalid expr eval mode {mode} (auto|bytecode|tree)"))?;
            }
            "--join" => {
                let mode = it.next().ok_or("--join requires a mode")?;
                args.join = JoinMode::parse(&mode)
                    .ok_or_else(|| format!("invalid join mode {mode} (auto|hash|nested)"))?;
            }
            other => return Err(format!("unknown serve option {other}")),
        }
    }
    Ok(args)
}

fn serve(args: &ServeArgs) -> Result<(), String> {
    let mut catalog = DocumentCatalog::new();
    if let Some(input) = &args.input {
        catalog.set_context_file(input).map_err(|e| e.to_string())?;
    }
    for (name, file) in &args.docs {
        catalog
            .add_document_file(name, file)
            .map_err(|e| e.to_string())?;
    }
    for (name, files) in &args.collections {
        catalog
            .add_collection_files(name, files)
            .map_err(|e| e.to_string())?;
    }
    let config = ServiceConfig {
        workers: args.workers,
        plan_cache_capacity: args.cache_size,
        engine_options: EngineOptions {
            detect_implicit_groupby: args.detect_groupby,
            threads: args.query_threads,
            access_path: args.access_path,
            expr_eval: args.expr_eval,
            join: args.join,
            ..Default::default()
        },
        max_queue: args.max_queue,
        max_inflight_per_client: args.max_inflight_per_client,
        max_requests_per_conn: args.max_requests_per_conn,
        slow_query_ms: args.slow_query_ms,
        flight_recorder_capacity: args.flight_recorder_capacity,
        ..Default::default()
    };
    let server = Server::start(&args.addr, &catalog, config)
        .map_err(|e| format!("cannot bind {}: {e}", args.addr))?;
    // Announce the bound address (with the real port when --addr used
    // port 0) so callers can connect; then serve until killed.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        let args = match parse_serve_args(argv) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        };
        return match serve(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("xqa: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xqa: {msg}");
            ExitCode::FAILURE
        }
    }
}
