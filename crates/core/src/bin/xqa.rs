//! `xqa` — command-line XQuery-with-analytics runner.
//!
//! ```text
//! xqa [OPTIONS] <query.xq | -q "query text"> [input.xml]
//!
//!   -q, --query <TEXT>     inline query text instead of a file
//!   -i, --input <FILE>     input XML document (context item)
//!       --doc NAME=FILE    register a document for fn:doc("NAME")
//!       --pretty           pretty-print the result
//!       --stats            print evaluator statistics to stderr
//!       --detect-groupby   enable the implicit group-by rewrite
//!   -h, --help             this help
//! ```

use std::process::ExitCode;
use xqa::{
    parse_document, serialize_sequence_with, DynamicContext, Engine, EngineOptions,
    SerializeOptions,
};

struct Args {
    query_text: Option<String>,
    query_file: Option<String>,
    input: Option<String>,
    docs: Vec<(String, String)>,
    pretty: bool,
    stats: bool,
    explain: bool,
    detect_groupby: bool,
}

const USAGE: &str = "usage: xqa [OPTIONS] <query.xq | -q QUERY> [input.xml]
options:
  -q, --query TEXT     inline query text
  -i, --input FILE     input XML document (context item)
      --doc NAME=FILE  register a document for fn:doc(\"NAME\")
      --pretty         pretty-print the result
      --stats          print evaluator statistics to stderr
      --explain        print the compiled plan to stderr before running
      --detect-groupby enable the implicit group-by detection rewrite
  -h, --help           show this help";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        query_text: None,
        query_file: None,
        input: None,
        docs: Vec::new(),
        pretty: false,
        stats: false,
        explain: false,
        detect_groupby: false,
    };
    let mut it = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-q" | "--query" => {
                args.query_text =
                    Some(it.next().ok_or_else(|| format!("{arg} requires a value"))?);
            }
            "-i" | "--input" => {
                args.input = Some(it.next().ok_or_else(|| format!("{arg} requires a value"))?);
            }
            "--doc" => {
                let spec = it.next().ok_or("--doc requires NAME=FILE")?;
                let (name, file) =
                    spec.split_once('=').ok_or("--doc requires NAME=FILE syntax")?;
                args.docs.push((name.to_string(), file.to_string()));
            }
            "--pretty" => args.pretty = true,
            "--stats" => args.stats = true,
            "--explain" => args.explain = true,
            "--detect-groupby" => args.detect_groupby = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    if args.query_text.is_none() {
        args.query_file = Some(positional.next().ok_or("missing query (file or -q)")?);
    }
    if args.input.is_none() {
        args.input = positional.next();
    }
    if let Some(extra) = positional.next() {
        return Err(format!("unexpected argument {extra}"));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let query_source = match (&args.query_text, &args.query_file) {
        (Some(text), _) => text.clone(),
        (None, Some(file)) => {
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?
        }
        (None, None) => unreachable!("parse_args guarantees a query"),
    };
    let engine =
        Engine::with_options(EngineOptions { detect_implicit_groupby: args.detect_groupby, ..Default::default() });
    let query = engine.compile(&query_source).map_err(|e| e.to_string())?;
    for rewrite in query.applied_rewrites() {
        eprintln!("rewrite: {rewrite}");
    }
    if args.explain {
        eprint!("{}", query.explain());
    }
    let mut ctx = DynamicContext::new();
    if let Some(input) = &args.input {
        let text =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
        let doc = parse_document(&text).map_err(|e| format!("{input}: {e}"))?;
        ctx.set_context_document(&doc);
    }
    // Hold registered docs alive for the duration of the run.
    let mut registered = Vec::new();
    for (name, file) in &args.docs {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let doc = parse_document(&text).map_err(|e| format!("{file}: {e}"))?;
        ctx.register_document(name.clone(), &doc);
        registered.push(doc);
    }
    let result = query.run(&ctx).map_err(|e| e.to_string())?;
    let options =
        if args.pretty { SerializeOptions::pretty() } else { SerializeOptions::default() };
    println!("{}", serialize_sequence_with(&result, options));
    if args.stats {
        eprintln!(
            "stats: nodes_visited={} tuples_grouped={} groups_emitted={} comparisons={}",
            ctx.stats.nodes_visited.get(),
            ctx.stats.tuples_grouped.get(),
            ctx.stats.groups_emitted.get(),
            ctx.stats.comparisons.get()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xqa: {msg}");
            ExitCode::FAILURE
        }
    }
}
