//! End-to-end tests of the `xqa` CLI binary.

use std::io::Write;
use std::process::Command;

fn xqa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xqa"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xqa-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn inline_query_against_input_file() {
    let input = write_temp(
        "books.xml",
        "<bib><book><price>10</price></book><book><price>20</price></book></bib>",
    );
    let out = xqa()
        .args(["-q", "sum(//price)"])
        .arg(&input)
        .output()
        .expect("run xqa");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "30");
}

#[test]
fn query_file_with_group_by() {
    let query = write_temp(
        "group.xq",
        "for $b in //book group by $b/publisher into $p nest $b/price into $prices \
         order by $p return <r>{string($p)}:{sum($prices)}</r>",
    );
    let input = write_temp(
        "bib2.xml",
        "<bib><book><publisher>A</publisher><price>1</price></book>\
         <book><publisher>B</publisher><price>2</price></book>\
         <book><publisher>A</publisher><price>3</price></book></bib>",
    );
    let out = xqa().arg(&query).arg(&input).output().expect("run xqa");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<r>A:4</r><r>B:2</r>"
    );
}

#[test]
fn stats_and_explain_go_to_stderr() {
    let input = write_temp("v.xml", "<r><v>1</v><v>1</v></r>");
    let out = xqa()
        .args([
            "-q",
            "for $v in //v group by $v into $k return $k",
            "--stats",
            "--explain",
        ])
        .arg(&input)
        .output()
        .expect("run xqa");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("group-by (hash, deep-equal)"), "{stderr}");
    assert!(stderr.contains("tuples_grouped=2"), "{stderr}");
    assert!(stderr.contains("groups_emitted=1"), "{stderr}");
    // stdout has only the result
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "<v>1</v>");
}

#[test]
fn pretty_printing() {
    let input = write_temp("p.xml", "<r><a>1</a></r>");
    let out = xqa()
        .args(["-q", "<out><inner>{//a}</inner></out>", "--pretty"])
        .arg(&input)
        .output()
        .expect("run xqa");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<out>\n  <inner>"), "{stdout}");
}

#[test]
fn doc_registration() {
    let input = write_temp("main.xml", "<main/>");
    let extra = write_temp("extra.xml", "<data><v>7</v></data>");
    let out = xqa()
        .args(["-q", "sum(doc(\"extra\")//v)"])
        .args(["--doc".to_string(), format!("extra={}", extra.display())])
        .arg(&input)
        .output()
        .expect("run xqa");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "7");
}

#[test]
fn detect_groupby_announces_rewrite() {
    let input = write_temp(
        "orders.xml",
        "<orders><order><lineitem><m>A</m></lineitem><lineitem><m>A</m></lineitem>\
         <lineitem><m>B</m></lineitem></order></orders>",
    );
    let out = xqa()
        .args([
            "-q",
            "for $a in distinct-values(//order/lineitem/m) \
             let $items := for $i in //order/lineitem where $i/m = $a return $i \
             return <r>{$a}|{count($items)}</r>",
            "--detect-groupby",
        ])
        .arg(&input)
        .output()
        .expect("run xqa");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("implicit group-by detected"), "{stderr}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<r>A|2</r><r>B|1</r>"
    );
}

#[test]
fn bad_query_exits_nonzero_with_message() {
    let out = xqa().args(["-q", "1 +"]).output().expect("run xqa");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("syntax error"));
}

#[test]
fn missing_input_file_reports_cleanly() {
    let out = xqa()
        .args(["-q", "1", "-i", "/nonexistent/nope.xml"])
        .output()
        .expect("run xqa");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_and_unknown_flags() {
    let out = xqa().arg("--help").output().expect("run xqa");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: xqa"));
    let out = xqa()
        .args(["--frobnicate", "-q", "1"])
        .output()
        .expect("run xqa");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn no_input_document_queries_still_work() {
    let out = xqa()
        .args(["-q", "(1 to 5)[. mod 2 = 1]"])
        .output()
        .expect("run xqa");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "1 3 5");
}

#[test]
fn collection_registration() {
    let input = write_temp("coll-main.xml", "<main/>");
    let a = write_temp("coll-a.xml", "<part><v>1</v></part>");
    let b = write_temp("coll-b.xml", "<part><v>2</v><v>3</v></part>");
    let out = xqa()
        .args([
            "-q",
            "sum(for $d in collection(\"parts\") return sum($d//v))",
        ])
        .args([
            "--collection".to_string(),
            format!("parts={},{}", a.display(), b.display()),
        ])
        .arg(&input)
        .output()
        .expect("run xqa");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "6");
    // Malformed spec is a usage error.
    let out = xqa()
        .args(["-q", "1", "--collection", "nofiles="])
        .output()
        .expect("run xqa");
    assert_eq!(out.status.code(), Some(2));
}

/// Spawn `xqa serve` on an ephemeral port and run HTTP requests
/// against it, comparing with one-shot CLI output.
#[test]
fn serve_answers_queries_like_one_shot_runs() {
    use std::io::{BufRead, BufReader, Read};
    use std::net::TcpStream;

    let input = write_temp(
        "serve-bib.xml",
        "<bib><book><publisher>A</publisher><price>1</price></book>\
         <book><publisher>B</publisher><price>2</price></book>\
         <book><publisher>A</publisher><price>3</price></book></bib>",
    );
    let query = "for $b in //book group by $b/publisher into $p \
                 nest $b/price into $prices order by $p \
                 return <r>{string($p)}:{sum($prices)}</r>";

    // Reference: a one-shot CLI run of the same query over the same file.
    let one_shot = xqa()
        .args(["-q", query])
        .arg(&input)
        .output()
        .expect("one-shot run");
    assert!(
        one_shot.status.success(),
        "{}",
        String::from_utf8_lossy(&one_shot.stderr)
    );
    let expected = String::from_utf8_lossy(&one_shot.stdout).trim().to_string();

    let mut child = xqa()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2", "-i"])
        .arg(&input)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn xqa serve");
    // The server prints "listening on HOST:PORT" once bound.
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("child stdout"))
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("listen line")
        .to_string();

    let served = (|| -> std::io::Result<String> {
        let mut stream = TcpStream::connect(&addr)?;
        use std::io::Write as _;
        write!(
            stream,
            "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{query}",
            query.len()
        )?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        Ok(response)
    })();
    let _ = child.kill();
    let _ = child.wait();

    let response = served.expect("query over HTTP");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or(("", ""));
    // Streamed responses arrive chunked; reassemble the payload.
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        let mut out = String::new();
        let mut rest = body;
        while let Some((size_line, after)) = rest.split_once("\r\n") {
            let size = usize::from_str_radix(size_line.trim(), 16).expect("chunk size");
            if size == 0 {
                break;
            }
            out.push_str(&after[..size]);
            rest = &after[size + 2..];
        }
        out
    } else {
        body.to_string()
    };
    assert_eq!(body, expected);
}

#[test]
fn join_flag_controls_unnesting() {
    let input = write_temp(
        "join.xml",
        "<r><order><lineitem><shipmode>AIR</shipmode></lineitem>\
         <lineitem><shipmode>RAIL</shipmode></lineitem></order>\
         <order><lineitem><shipmode>AIR</shipmode></lineitem></order></r>",
    );
    let query = "for $m in distinct-values(//order/lineitem/shipmode) \
                 let $items := for $li in //order/lineitem where $li/shipmode = $m return $li \
                 order by string($m) \
                 return <g>{string($m)}:{count($items)}</g>";
    let run = |mode: &str| {
        let out = xqa()
            .args(["-q", query, "--explain", "--join", mode])
            .arg(&input)
            .output()
            .expect("run xqa");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "<g>AIR:2</g><g>RAIL:1</g>"
        );
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    assert!(run("hash").contains("[hash join"), "hash mode must unnest");
    assert!(
        !run("nested").contains("[hash join"),
        "nested mode must not unnest"
    );
    // The CLI builds catalog statistics from the input, so auto mode
    // unnests too.
    assert!(run("auto").contains("[hash join"), "auto mode must unnest");
    let bad = xqa()
        .args(["-q", "1", "--join", "sideways"])
        .output()
        .expect("run xqa");
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("invalid join mode"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
}
