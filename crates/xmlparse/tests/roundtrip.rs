//! Round-trip tests on deterministically generated trees: they survive
//! serialize → parse → serialize as a fixed point, and deep-equal is
//! preserved.

use std::sync::Arc;
use xqa_xdm::node::{Document, DocumentBuilder};
use xqa_xdm::{node_deep_equal, QName};
use xqa_xmlparse::{parse_document, serialize_node};

/// Minimal splitmix64 (same algorithm as `xqa_workload::DetRng`),
/// inlined to keep this crate dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A recursive element-tree description.
#[derive(Debug, Clone)]
enum Tree {
    Element {
        name: usize,
        attrs: Vec<(usize, String)>,
        children: Vec<Tree>,
    },
    Text(String),
}

const NAMES: [&str; 6] = ["book", "title", "author", "sale", "region", "price"];
const ATTR_NAMES: [&str; 4] = ["id", "year", "month", "kind"];
/// Text alphabet includes XML-significant characters to exercise
/// escaping; generated strings are never whitespace-only (the parser
/// strips whitespace-only text nodes by default).
const TEXT_CHARS: &[u8] = b"abcXYZ019<>&'\" ";

fn gen_text(rng: &mut Rng) -> String {
    loop {
        let len = 1 + rng.below(12) as usize;
        let s: String = (0..len)
            .map(|_| TEXT_CHARS[rng.below(TEXT_CHARS.len() as u64) as usize] as char)
            .collect();
        if !s.chars().all(|c| c.is_ascii_whitespace()) {
            return s;
        }
    }
}

fn gen_attrs(rng: &mut Rng) -> Vec<(usize, String)> {
    let mut attrs: Vec<(usize, String)> = (0..rng.below(3))
        .map(|_| (rng.below(ATTR_NAMES.len() as u64) as usize, gen_text(rng)))
        .collect();
    attrs.sort_by_key(|(i, _)| *i);
    attrs.dedup_by_key(|(i, _)| *i);
    attrs
}

/// Generate a random tree of bounded depth.
fn gen_tree(rng: &mut Rng, depth: usize) -> Tree {
    if depth == 0 || rng.below(4) == 0 {
        if rng.below(2) == 0 {
            return Tree::Text(gen_text(rng));
        }
        return Tree::Element {
            name: rng.below(NAMES.len() as u64) as usize,
            attrs: gen_attrs(rng),
            children: Vec::new(),
        };
    }
    let children = (0..rng.below(5))
        .map(|_| gen_tree(rng, depth - 1))
        .collect();
    Tree::Element {
        name: rng.below(NAMES.len() as u64) as usize,
        attrs: gen_attrs(rng),
        children,
    }
}

fn build(tree: &Tree) -> Arc<Document> {
    let mut b = DocumentBuilder::new();
    // Ensure a single element root: wrap when the root is text.
    match tree {
        Tree::Element { .. } => build_into(&mut b, tree),
        Tree::Text(_) => {
            b.start_element(QName::local("wrapper"));
            build_into(&mut b, tree);
            b.end_element();
        }
    }
    b.finish()
}

fn build_into(b: &mut DocumentBuilder, tree: &Tree) {
    match tree {
        Tree::Text(t) => {
            b.text(t);
        }
        Tree::Element {
            name,
            attrs,
            children,
        } => {
            b.start_element(QName::local(NAMES[*name]));
            for (attr, value) in attrs {
                b.attribute(QName::local(ATTR_NAMES[*attr]), value.as_str());
            }
            for child in children {
                build_into(b, child);
            }
            b.end_element();
        }
    }
}

/// serialize → parse → serialize is a fixed point.
#[test]
fn serialize_parse_fixed_point() {
    let mut rng = Rng(0xF1);
    for _ in 0..128 {
        let tree = gen_tree(&mut rng, 4);
        let doc = build(&tree);
        let text1 = serialize_node(&doc.root());
        let reparsed = parse_document(&text1).unwrap();
        let text2 = serialize_node(&reparsed.root());
        assert_eq!(text1, text2);
    }
}

/// Parsing a serialization yields a deep-equal tree.
#[test]
fn roundtrip_preserves_deep_equality() {
    let mut rng = Rng(0xF2);
    for _ in 0..128 {
        let tree = gen_tree(&mut rng, 4);
        let doc = build(&tree);
        let text = serialize_node(&doc.root());
        let reparsed = parse_document(&text).unwrap();
        assert!(
            node_deep_equal(&doc.root(), &reparsed.root()),
            "round-trip changed the tree: {text}"
        );
    }
}

#[test]
fn deep_documents_error_instead_of_overflowing() {
    std::thread::Builder::new()
        .stack_size(16 * 1024 * 1024)
        .spawn(|| {
            let ok = format!("{}x{}", "<e>".repeat(200), "</e>".repeat(200));
            assert!(parse_document(&ok).is_ok());
            let deep = format!("{}x{}", "<e>".repeat(100_000), "</e>".repeat(100_000));
            let err = parse_document(&deep).unwrap_err();
            assert!(err.to_string().contains("nesting"), "{err}");
        })
        .expect("spawn")
        .join()
        .expect("deep XML thread");
}
