//! Property-based round-trip tests: generated trees survive
//! serialize → parse → serialize as a fixed point, and deep-equal is
//! preserved.

use proptest::prelude::*;
use std::rc::Rc;
use xqa_xdm::node::{Document, DocumentBuilder};
use xqa_xdm::{node_deep_equal, QName};
use xqa_xmlparse::{parse_document, serialize_node};

/// A recursive element-tree description.
#[derive(Debug, Clone)]
enum Tree {
    Element { name: usize, attrs: Vec<(usize, String)>, children: Vec<Tree> },
    Text(String),
}

const NAMES: [&str; 6] = ["book", "title", "author", "sale", "region", "price"];
const ATTR_NAMES: [&str; 4] = ["id", "year", "month", "kind"];

fn text_strategy() -> impl Strategy<Value = String> {
    // Non-whitespace-only text (the parser strips whitespace-only nodes
    // by default); may contain XML-significant characters to exercise
    // escaping.
    "[a-zA-Z0-9<>&'\" ]{1,12}".prop_filter("not whitespace-only", |s| {
        !s.chars().all(|c| c.is_ascii_whitespace())
    })
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Tree::Text),
        (0..NAMES.len(), proptest::collection::vec((0..ATTR_NAMES.len(), text_strategy()), 0..3))
            .prop_map(|(name, mut attrs)| {
                attrs.sort_by_key(|(i, _)| *i);
                attrs.dedup_by_key(|(i, _)| *i);
                Tree::Element { name, attrs, children: Vec::new() }
            }),
    ];
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            0..NAMES.len(),
            proptest::collection::vec((0..ATTR_NAMES.len(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, mut attrs, children)| {
                attrs.sort_by_key(|(i, _)| *i);
                attrs.dedup_by_key(|(i, _)| *i);
                Tree::Element { name, attrs, children }
            })
    })
}

fn build(tree: &Tree) -> Rc<Document> {
    let mut b = DocumentBuilder::new();
    // Ensure a single element root: wrap when the root is text.
    match tree {
        Tree::Element { .. } => build_into(&mut b, tree),
        Tree::Text(_) => {
            b.start_element(QName::local("wrapper"));
            build_into(&mut b, tree);
            b.end_element();
        }
    }
    b.finish()
}

fn build_into(b: &mut DocumentBuilder, tree: &Tree) {
    match tree {
        Tree::Text(t) => {
            b.text(t);
        }
        Tree::Element { name, attrs, children } => {
            b.start_element(QName::local(NAMES[*name]));
            for (attr, value) in attrs {
                b.attribute(QName::local(ATTR_NAMES[*attr]), value.as_str());
            }
            for child in children {
                build_into(b, child);
            }
            b.end_element();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// serialize → parse → serialize is a fixed point.
    #[test]
    fn serialize_parse_fixed_point(tree in tree_strategy()) {
        let doc = build(&tree);
        let text1 = serialize_node(&doc.root());
        let reparsed = parse_document(&text1).unwrap();
        let text2 = serialize_node(&reparsed.root());
        prop_assert_eq!(text1, text2);
    }

    /// Parsing a serialization yields a deep-equal tree.
    #[test]
    fn roundtrip_preserves_deep_equality(tree in tree_strategy()) {
        let doc = build(&tree);
        let text = serialize_node(&doc.root());
        let reparsed = parse_document(&text).unwrap();
        prop_assert!(node_deep_equal(&doc.root(), &reparsed.root()),
            "round-trip changed the tree: {text}");
    }
}

#[test]
fn deep_documents_error_instead_of_overflowing() {
    std::thread::Builder::new()
        .stack_size(16 * 1024 * 1024)
        .spawn(|| {
            let ok = format!("{}x{}", "<e>".repeat(200), "</e>".repeat(200));
            assert!(parse_document(&ok).is_ok());
            let deep = format!("{}x{}", "<e>".repeat(100_000), "</e>".repeat(100_000));
            let err = parse_document(&deep).unwrap_err();
            assert!(err.to_string().contains("nesting"), "{err}");
        })
        .expect("spawn")
        .join()
        .expect("deep XML thread");
}
