//! A from-scratch, non-validating XML 1.0 parser.
//!
//! Supports the constructs that appear in data-centric documents:
//! elements, attributes (single- or double-quoted), character data,
//! the five predefined entities plus numeric character references,
//! CDATA sections, comments, processing instructions, and an optional
//! XML declaration / doctype (skipped, not validated).
//!
//! Not supported (rejected with a clear error): external entities,
//! custom entity declarations. Namespaces are *lexical only*: prefixes
//! are kept on names but no URI resolution is performed.

use crate::error::{ParseError, ParseResult};
use std::sync::Arc;
use xqa_xdm::node::{Document, DocumentBuilder};
use xqa_xdm::qname::QName;

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Drop text nodes that consist entirely of XML whitespace
    /// (the "data-centric" convention; defaults to `true` so that
    /// indented test documents compare deep-equal to generated ones).
    pub strip_whitespace_only_text: bool,
    /// Keep comment nodes (default `true`).
    pub keep_comments: bool,
    /// Keep processing-instruction nodes (default `true`).
    pub keep_processing_instructions: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            strip_whitespace_only_text: true,
            keep_comments: true,
            keep_processing_instructions: true,
        }
    }
}

/// Parse a complete XML document (single root element).
///
/// ```
/// let doc = xqa_xmlparse::parse_document("<bib><book year=\"1993\"/></bib>").unwrap();
/// let bib = doc.root().children().next().unwrap();
/// assert_eq!(bib.name().unwrap().local_part(), "bib");
/// assert_eq!(bib.children().count(), 1);
/// ```
pub fn parse_document(input: &str) -> ParseResult<Arc<Document>> {
    parse_document_with(input, ParseOptions::default())
}

/// Parse a complete XML document with explicit options.
pub fn parse_document_with(input: &str, options: ParseOptions) -> ParseResult<Arc<Document>> {
    let mut p = Parser::new(input, options);
    p.skip_prolog()?;
    let mut roots = 0usize;
    loop {
        p.skip_misc();
        if p.at_end() {
            break;
        }
        if p.peek_str("<") {
            p.parse_content_item(&mut roots, true)?;
        } else {
            return Err(p.error("text content is not allowed at document top level"));
        }
    }
    if roots == 0 {
        return Err(ParseError::new(0, 0, "document has no root element"));
    }
    if roots > 1 {
        return Err(ParseError::new(
            0,
            0,
            "document has more than one root element",
        ));
    }
    Ok(p.builder.finish())
}

/// Parse an XML *fragment*: zero or more elements plus bare text,
/// wrapped under a synthetic document node. Handy in tests.
pub fn parse_fragment(input: &str) -> ParseResult<Arc<Document>> {
    let options = ParseOptions::default();
    let mut p = Parser::new(input, options);
    p.skip_prolog()?;
    let mut roots = 0usize;
    while !p.at_end() {
        if p.peek_str("<") {
            p.parse_content_item(&mut roots, true)?;
        } else {
            let text = p.parse_char_data()?;
            p.emit_text(&text);
        }
    }
    Ok(p.builder.finish())
}

/// Maximum element nesting depth (guards against stack overflow on
/// adversarial input; real documents stay far below this).
const MAX_XML_DEPTH: usize = 256;

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    options: ParseOptions,
    builder: DocumentBuilder,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, options: ParseOptions) -> Parser<'a> {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
            options,
            builder: DocumentBuilder::new(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_str(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect_str(&mut self, s: &str) -> ParseResult<()> {
        if self.peek_str(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.error(format!("expected {s:?}")))
        }
    }

    fn line_col(&self) -> (u32, u32) {
        let mut line = 1u32;
        let mut col = 1u32;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.line_col();
        ParseError::new(line, col, msg)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip the XML declaration and doctype, if present.
    fn skip_prolog(&mut self) -> ParseResult<()> {
        self.skip_ws();
        if self.peek_str("<?xml") {
            let end = self.input[self.pos..]
                .find("?>")
                .ok_or_else(|| self.error("unterminated XML declaration"))?;
            self.pos += end + 2;
        }
        self.skip_misc();
        if self.peek_str("<!DOCTYPE") {
            // Skip to the matching '>' (internal subsets with nested
            // brackets are handled by bracket counting).
            let mut depth = 0i32;
            while let Some(b) = self.bump() {
                match b {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    b'>' if depth == 0 => return Ok(()),
                    _ => {}
                }
            }
            return Err(self.error("unterminated DOCTYPE"));
        }
        Ok(())
    }

    /// Skip whitespace between top-level constructs.
    fn skip_misc(&mut self) {
        self.skip_ws();
    }

    /// Parse one item of content starting with `<`: element, comment,
    /// PI, or CDATA. `top_level` restricts what is allowed and counts
    /// root elements.
    fn parse_content_item(&mut self, roots: &mut usize, top_level: bool) -> ParseResult<()> {
        debug_assert!(self.peek() == Some(b'<'));
        if self.peek_str("<!--") {
            self.parse_comment()
        } else if self.peek_str("<?") {
            self.parse_pi()
        } else if self.peek_str("<![CDATA[") {
            if top_level {
                return Err(self.error("CDATA is not allowed at document top level"));
            }
            let text = self.parse_cdata()?;
            self.builder.text(&text);
            Ok(())
        } else if self.peek_str("</") {
            Err(self.error("unexpected end tag"))
        } else {
            if top_level {
                *roots += 1;
            }
            self.parse_element()
        }
    }

    fn parse_name(&mut self) -> ParseResult<QName> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_whitespace() || matches!(c, '=' | '>' | '/' | '<' | '?' | '"' | '\'') {
                break;
            }
            // Multi-byte UTF-8 is allowed in names; advance a full char.
            let ch = self.input[self.pos..].chars().next().unwrap();
            self.pos += ch.len_utf8();
        }
        let raw = &self.input[start..self.pos];
        QName::parse(raw).ok_or_else(|| self.error(format!("invalid name {raw:?}")))
    }

    fn parse_element(&mut self) -> ParseResult<()> {
        if self.depth >= MAX_XML_DEPTH {
            return Err(self.error(format!(
                "element nesting exceeds the supported depth ({MAX_XML_DEPTH})"
            )));
        }
        self.depth += 1;
        let result = self.parse_element_inner();
        self.depth -= 1;
        result
    }

    fn parse_element_inner(&mut self) -> ParseResult<()> {
        self.expect_str("<")?;
        let name = self.parse_name()?;
        self.builder.start_element(name.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.expect_str("/>")?;
                    self.builder.end_element();
                    return Ok(());
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect_str("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    self.builder.attribute(attr_name, value);
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }
        // Content.
        loop {
            if self.at_end() {
                return Err(self.error(format!("unterminated element <{name}>")));
            }
            if self.peek_str("</") {
                self.expect_str("</")?;
                let end_name = self.parse_name()?;
                if end_name != name {
                    return Err(
                        self.error(format!("mismatched end tag </{end_name}> for <{name}>"))
                    );
                }
                self.skip_ws();
                self.expect_str(">")?;
                self.builder.end_element();
                return Ok(());
            }
            if self.peek() == Some(b'<') {
                let mut dummy = 0;
                self.parse_content_item(&mut dummy, false)?;
            } else {
                let text = self.parse_char_data()?;
                self.emit_text(&text);
            }
        }
    }

    fn emit_text(&mut self, text: &str) {
        if self.options.strip_whitespace_only_text && text.chars().all(|c| c.is_ascii_whitespace())
        {
            return;
        }
        self.builder.text(text);
    }

    fn parse_attr_value(&mut self) -> ParseResult<String> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated attribute value")),
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'<') => return Err(self.error("'<' is not allowed in attribute values")),
                Some(b'&') => out.push(self.parse_entity()?),
                Some(_) => {
                    let ch = self.input[self.pos..].chars().next().unwrap();
                    self.pos += ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_char_data(&mut self) -> ParseResult<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => return Ok(out),
                Some(b'&') => out.push(self.parse_entity()?),
                Some(_) => {
                    if self.peek_str("]]>") {
                        return Err(self.error("']]>' is not allowed in character data"));
                    }
                    let ch = self.input[self.pos..].chars().next().unwrap();
                    self.pos += ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_entity(&mut self) -> ParseResult<char> {
        debug_assert!(self.peek() == Some(b'&'));
        self.pos += 1;
        let end = self.input[self.pos..]
            .find(';')
            .ok_or_else(|| self.error("unterminated entity reference"))?;
        let name = &self.input[self.pos..self.pos + end];
        self.pos += end + 1;
        match name {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "apos" => Ok('\''),
            "quot" => Ok('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.error(format!("invalid character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.error(format!("invalid code point &{name};")))
            }
            _ if name.starts_with('#') => {
                let code = name[1..]
                    .parse::<u32>()
                    .map_err(|_| self.error(format!("invalid character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.error(format!("invalid code point &{name};")))
            }
            _ => Err(self.error(format!(
                "unknown entity &{name}; (external entities unsupported)"
            ))),
        }
    }

    fn parse_comment(&mut self) -> ParseResult<()> {
        self.expect_str("<!--")?;
        let end = self.input[self.pos..]
            .find("-->")
            .ok_or_else(|| self.error("unterminated comment"))?;
        let text = &self.input[self.pos..self.pos + end];
        if text.contains("--") {
            return Err(self.error("'--' is not allowed inside comments"));
        }
        self.pos += end + 3;
        if self.options.keep_comments {
            self.builder.comment(text);
        }
        Ok(())
    }

    fn parse_pi(&mut self) -> ParseResult<()> {
        self.expect_str("<?")?;
        let target = self.parse_name()?;
        if target.local_part().eq_ignore_ascii_case("xml") && target.prefix().is_none() {
            return Err(self.error("'<?xml' is only allowed at the start of the document"));
        }
        self.skip_ws();
        let end = self.input[self.pos..]
            .find("?>")
            .ok_or_else(|| self.error("unterminated processing instruction"))?;
        let data = &self.input[self.pos..self.pos + end];
        self.pos += end + 2;
        if self.options.keep_processing_instructions {
            self.builder.processing_instruction(target, data);
        }
        Ok(())
    }

    fn parse_cdata(&mut self) -> ParseResult<String> {
        self.expect_str("<![CDATA[")?;
        let end = self.input[self.pos..]
            .find("]]>")
            .ok_or_else(|| self.error("unterminated CDATA section"))?;
        let text = self.input[self.pos..self.pos + end].to_string();
        self.pos += end + 3;
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xdm::node::NodeKind;

    #[test]
    fn parse_paper_book_instance() {
        let doc = parse_document(
            r#"<book>
                <title>Transaction Processing</title>
                <author>Jim Gray</author>
                <author>Andreas Reuter</author>
                <publisher>Morgan Kaufmann</publisher>
                <year>1993</year>
                <price>65.00</price>
                <discount>5.50</discount>
               </book>"#,
        )
        .unwrap();
        let book = doc.root().children().next().unwrap();
        assert_eq!(book.name().unwrap().local_part(), "book");
        assert_eq!(book.children().count(), 7);
        let title = book.children().next().unwrap();
        assert_eq!(title.string_value(), "Transaction Processing");
    }

    #[test]
    fn whitespace_only_text_is_stripped_by_default() {
        let doc = parse_document("<a>\n  <b>x</b>\n</a>").unwrap();
        let a = doc.root().children().next().unwrap();
        assert_eq!(a.children().count(), 1);
        let keep = ParseOptions {
            strip_whitespace_only_text: false,
            ..Default::default()
        };
        let doc2 = parse_document_with("<a>\n  <b>x</b>\n</a>", keep).unwrap();
        let a2 = doc2.root().children().next().unwrap();
        assert_eq!(a2.children().count(), 3);
    }

    #[test]
    fn attributes_both_quote_styles() {
        let doc = parse_document(r#"<r a="1" b='two' c="a&amp;b"/>"#).unwrap();
        let r = doc.root().children().next().unwrap();
        let vals: Vec<String> = r.attributes().map(|a| a.string_value()).collect();
        assert_eq!(vals, ["1", "two", "a&b"]);
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse_document("<t>&lt;a&gt; &amp; &#65;&#x42;&apos;&quot;</t>").unwrap();
        let t = doc.root().children().next().unwrap();
        assert_eq!(t.string_value(), "<a> & AB'\"");
    }

    #[test]
    fn cdata_is_literal_text() {
        let doc = parse_document("<t><![CDATA[<not> & parsed]]></t>").unwrap();
        let t = doc.root().children().next().unwrap();
        assert_eq!(t.string_value(), "<not> & parsed");
    }

    #[test]
    fn comments_and_pis_round_trip() {
        let doc = parse_document("<r><!-- note --><?app data?></r>").unwrap();
        let r = doc.root().children().next().unwrap();
        let kinds: Vec<NodeKind> = r.children().map(|c| c.kind()).collect();
        assert_eq!(kinds, [NodeKind::Comment, NodeKind::ProcessingInstruction]);
    }

    #[test]
    fn xml_decl_and_doctype_skipped() {
        let doc = parse_document(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE r [<!ELEMENT r ANY>]>\n<r/>",
        )
        .unwrap();
        assert_eq!(doc.root().children().count(), 1);
    }

    #[test]
    fn self_closing_and_nested() {
        let doc =
            parse_document("<categories><software><db/><distributed/></software></categories>")
                .unwrap();
        let cats = doc.root().children().next().unwrap();
        let sw = cats.children().next().unwrap();
        let names: Vec<String> = sw
            .children()
            .map(|c| c.name().unwrap().local_part().to_string())
            .collect();
        assert_eq!(names, ["db", "distributed"]);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_document("<a>\n<b></c></a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("mismatched end tag"));
    }

    #[test]
    fn reject_malformed() {
        assert!(parse_document("").is_err());
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a></b>").is_err());
        assert!(parse_document("<a/><b/>").is_err(), "two roots");
        assert!(parse_document("text only").is_err());
        assert!(parse_document("<a b=c/>").is_err(), "unquoted attribute");
        assert!(parse_document("<a>&nbsp;</a>").is_err(), "unknown entity");
        assert!(parse_document("<1tag/>").is_err());
        assert!(parse_document("<a><!-- -- --></a>").is_err());
    }

    #[test]
    fn fragment_allows_multiple_roots_and_text() {
        let doc = parse_fragment("<a/>text<b/>").unwrap();
        assert_eq!(doc.root().children().count(), 3);
    }

    #[test]
    fn prefixed_names_kept_lexically() {
        let doc = parse_document("<x:r xmlns:x='urn:x'><x:c/></x:r>").unwrap();
        let r = doc.root().children().next().unwrap();
        assert_eq!(r.name().unwrap().to_string(), "x:r");
        // xmlns:x is kept as an ordinary attribute (lexical namespaces).
        assert_eq!(r.attributes().count(), 1);
    }

    #[test]
    fn mixed_content_preserved() {
        let doc = parse_document("<p>one <b>two</b> three</p>").unwrap();
        let p = doc.root().children().next().unwrap();
        assert_eq!(p.string_value(), "one two three");
        assert_eq!(p.children().count(), 3);
    }
}
