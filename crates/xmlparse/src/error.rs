//! Parse errors with source positions.

use std::fmt;

/// An XML well-formedness error at a line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line (0 when position is unknown).
    pub line: u32,
    /// 1-based column (0 when position is unknown).
    pub column: u32,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Create an error at the given position.
    pub fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "XML error: {}", self.message)
        } else {
            write!(
                f,
                "XML error at {}:{}: {}",
                self.line, self.column, self.message
            )
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parse operations.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_position() {
        assert_eq!(
            ParseError::new(3, 7, "boom").to_string(),
            "XML error at 3:7: boom"
        );
        assert_eq!(ParseError::new(0, 0, "boom").to_string(), "XML error: boom");
    }
}
