//! Serialization of XDM nodes back to XML text.
//!
//! Two modes: compact (no added whitespace — round-trips with the
//! parser's default whitespace stripping) and indented (for human
//! inspection, used by the CLI and examples).

use std::fmt::Write as _;
use xqa_xdm::item::Item;
use xqa_xdm::node::{NodeHandle, NodeKind};

/// Serialization configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerializeOptions {
    /// Pretty-print with the given indent width; `None` = compact.
    pub indent: Option<usize>,
}

impl SerializeOptions {
    /// Pretty-printing with a 2-space indent.
    pub fn pretty() -> Self {
        SerializeOptions { indent: Some(2) }
    }
}

/// Serialize one node (compact).
pub fn serialize_node(node: &NodeHandle) -> String {
    serialize_node_with(node, SerializeOptions::default())
}

/// Serialize one node with options.
pub fn serialize_node_with(node: &NodeHandle, options: SerializeOptions) -> String {
    let mut out = String::new();
    write_node(&mut out, node, &options, 0);
    out
}

/// Serialize a whole sequence: nodes as XML, atomics as their string
/// values, with single spaces between adjacent atomic values (the
/// XQuery serialization rule).
pub fn serialize_sequence(seq: &[Item]) -> String {
    serialize_sequence_with(seq, SerializeOptions::default())
}

/// Serialize a whole sequence with options.
pub fn serialize_sequence_with(seq: &[Item], options: SerializeOptions) -> String {
    let mut out = String::new();
    let mut ser = SequenceSerializer::new(options);
    ser.push(seq, &mut out);
    out
}

/// Incremental sequence serializer: feed the items of one logical
/// sequence across any number of [`push`](Self::push) calls and the
/// concatenated output is byte-identical to a single
/// [`serialize_sequence_with`] call over the whole sequence.
///
/// The inter-item state (the adjacent-atomic space rule and the
/// indent-mode newline between top-level nodes) is carried across
/// batch boundaries, which is what makes the streaming serving path
/// safe: the engine can hand over each 64-item pipeline batch as it is
/// pulled without changing the wire bytes.
#[derive(Debug, Clone)]
pub struct SequenceSerializer {
    options: SerializeOptions,
    /// Items serialized so far (drives the indent-mode newline rule).
    index: usize,
    /// Whether the previous item was an atomic (drives the space rule).
    prev_atomic: bool,
}

impl SequenceSerializer {
    /// Start a fresh sequence with the given options.
    pub fn new(options: SerializeOptions) -> Self {
        SequenceSerializer {
            options,
            index: 0,
            prev_atomic: false,
        }
    }

    /// Serialize the next batch of items onto `out`.
    pub fn push(&mut self, items: &[Item], out: &mut String) {
        for item in items {
            match item {
                Item::Node(n) => {
                    if self.options.indent.is_some() && self.index > 0 {
                        out.push('\n');
                    }
                    write_node(out, n, &self.options, 0);
                    self.prev_atomic = false;
                }
                Item::Atomic(a) => {
                    if self.prev_atomic {
                        out.push(' ');
                    }
                    out.push_str(&a.string_value());
                    self.prev_atomic = true;
                }
            }
            self.index += 1;
        }
    }

    /// Number of items serialized so far.
    pub fn items(&self) -> usize {
        self.index
    }
}

fn write_node(out: &mut String, node: &NodeHandle, options: &SerializeOptions, depth: usize) {
    match node.kind() {
        NodeKind::Document => {
            let mut first = true;
            for child in node.children() {
                if !first && options.indent.is_some() {
                    out.push('\n');
                }
                write_node(out, &child, options, depth);
                first = false;
            }
        }
        NodeKind::Element => write_element(out, node, options, depth),
        NodeKind::Attribute => {
            // A bare attribute outside an element serializes as name="value".
            let _ = write!(
                out,
                "{}=\"{}\"",
                node.name().expect("attribute name"),
                escape_attr(&node.string_value())
            );
        }
        NodeKind::Text => out.push_str(&escape_text(node.raw_text().unwrap_or(""))),
        NodeKind::Comment => {
            let _ = write!(out, "<!--{}-->", node.raw_text().unwrap_or(""));
        }
        NodeKind::ProcessingInstruction => {
            let _ = write!(
                out,
                "<?{} {}?>",
                node.name().expect("PI target"),
                node.raw_text().unwrap_or("")
            );
        }
    }
}

fn write_element(out: &mut String, node: &NodeHandle, options: &SerializeOptions, depth: usize) {
    let name = node.name().expect("element name");
    let pad = |out: &mut String, depth: usize| {
        if let Some(w) = options.indent {
            out.push_str(&" ".repeat(w * depth));
        }
    };
    let _ = write!(out, "<{name}");
    for attr in node.attributes() {
        let _ = write!(
            out,
            " {}=\"{}\"",
            attr.name().expect("attribute name"),
            escape_attr(&attr.string_value())
        );
    }
    let children: Vec<NodeHandle> = node.children().collect();
    if children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    // Text-only content stays inline even when indenting.
    let text_only = children.iter().all(|c| c.kind() == NodeKind::Text);
    if text_only || options.indent.is_none() {
        for child in &children {
            write_node(out, child, options, depth + 1);
        }
    } else {
        for child in &children {
            out.push('\n');
            pad(out, depth + 1);
            write_node(out, child, options, depth + 1);
        }
        out.push('\n');
        pad(out, depth);
    }
    let _ = write!(out, "</{name}>");
}

/// Escape character data: `&`, `<`, `>` (the latter for `]]>` safety).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape attribute values: also `"`.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use xqa_xdm::item::AtomicValue;

    #[test]
    fn compact_round_trip() {
        let src = r#"<book year="1993"><title>A &amp; B</title><price>65.00</price></book>"#;
        let doc = parse_document(src).unwrap();
        assert_eq!(serialize_node(&doc.root()), src);
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse_document("<c><db></db></c>").unwrap();
        assert_eq!(serialize_node(&doc.root()), "<c><db/></c>");
    }

    #[test]
    fn pretty_print_indents_structure() {
        let doc = parse_document("<r><a>1</a><b><c/></b></r>").unwrap();
        let s = serialize_node_with(&doc.root(), SerializeOptions::pretty());
        assert_eq!(s, "<r>\n  <a>1</a>\n  <b>\n    <c/>\n  </b>\n</r>");
    }

    #[test]
    fn sequence_spaces_adjacent_atomics() {
        let seq = vec![
            Item::Atomic(AtomicValue::Integer(1)),
            Item::Atomic(AtomicValue::Integer(2)),
            Item::from("x"),
        ];
        assert_eq!(serialize_sequence(&seq), "1 2 x");
    }

    #[test]
    fn sequence_mixes_nodes_and_atomics() {
        let doc = parse_document("<a>v</a>").unwrap();
        let a = doc.root().children().next().unwrap();
        let seq = vec![Item::from(1i64), Item::Node(a), Item::from(2i64)];
        assert_eq!(serialize_sequence(&seq), "1<a>v</a>2");
    }

    #[test]
    fn escaping_in_text_and_attrs() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(
            escape_attr(r#"say "hi" & <go>"#),
            "say &quot;hi&quot; &amp; &lt;go>"
        );
    }

    #[test]
    fn incremental_serializer_matches_one_shot_at_every_split() {
        let doc = parse_document("<a>v</a>").unwrap();
        let a = doc.root().children().next().unwrap();
        let seq = vec![
            Item::from(1i64),
            Item::from(2i64),
            Item::Node(a.clone()),
            Item::from("x"),
            Item::from("y"),
            Item::Node(a),
            Item::from(3i64),
        ];
        for options in [SerializeOptions::default(), SerializeOptions::pretty()] {
            let whole = serialize_sequence_with(&seq, options);
            for split in 0..=seq.len() {
                let mut ser = SequenceSerializer::new(options);
                let mut out = String::new();
                ser.push(&seq[..split], &mut out);
                ser.push(&seq[split..], &mut out);
                assert_eq!(out, whole, "split at {split} with {options:?}");
                assert_eq!(ser.items(), seq.len());
            }
        }
    }

    #[test]
    fn incremental_serializer_ignores_empty_batches() {
        let seq = [Item::from(1i64), Item::from(2i64)];
        let mut ser = SequenceSerializer::new(SerializeOptions::default());
        let mut out = String::new();
        ser.push(&seq[..1], &mut out);
        ser.push(&[], &mut out);
        ser.push(&seq[1..], &mut out);
        assert_eq!(out, "1 2");
    }

    #[test]
    fn comment_and_pi_serialization() {
        let doc = parse_document("<r><!--note--><?app data?></r>").unwrap();
        assert_eq!(
            serialize_node(&doc.root()),
            "<r><!--note--><?app data?></r>"
        );
    }
}
