//! # xqa-xmlparse — XML parsing and serialization
//!
//! A from-scratch, non-validating XML 1.0 parser producing
//! [`xqa_xdm`] documents, plus a serializer that writes XDM nodes back
//! out (compact or pretty-printed). This is the ingestion layer for the
//! paper's bibliography / sales / purchase-order documents.

#![warn(missing_docs)]

pub mod error;
pub mod parser;
pub mod serializer;

pub use error::{ParseError, ParseResult};
pub use parser::{parse_document, parse_document_with, parse_fragment, ParseOptions};
pub use serializer::{
    escape_attr, escape_text, serialize_node, serialize_node_with, serialize_sequence,
    serialize_sequence_with, SequenceSerializer, SerializeOptions,
};
