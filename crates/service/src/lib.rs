//! # xqa-service — a resident, concurrent query service
//!
//! Turns the [`xqa_engine`] evaluator into a long-lived server with
//! zero dependencies beyond `std`:
//!
//! - [`catalog::DocumentCatalog`] — named documents and collections,
//!   parsed **once** at startup and shared immutably (`Arc<Document>`)
//!   across all worker threads;
//! - [`cache::PlanCache`] — an LRU cache of prepared plans keyed by
//!   `(query text, EngineOptions)`, so repeated queries skip the
//!   parse/compile pipeline;
//! - [`pool::ThreadPool`] — a hand-rolled executor over `std::thread`
//!   and channels with graceful shutdown and panic isolation;
//! - [`server::Server`] — a minimal HTTP/1.1 endpoint
//!   (`POST /query`, `GET /healthz`, `GET /metrics`) over
//!   `std::net::TcpListener`.
//!
//! ```
//! use xqa_service::{DocumentCatalog, Server, ServiceConfig};
//!
//! let mut catalog = DocumentCatalog::new();
//! catalog.set_context_xml("<r><v>1</v><v>2</v></r>").unwrap();
//! let server = Server::start("127.0.0.1:0", &catalog, ServiceConfig::default()).unwrap();
//! let addr = server.local_addr();
//! // POST "sum(//v)" to http://{addr}/query  ->  "3"
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod catalog;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod server;

pub use admission::{Admission, ShedReason};
pub use cache::PlanCache;
pub use catalog::{CatalogError, DocumentCatalog};
pub use flight::{FlightRecord, FlightRecorder};
pub use metrics::Metrics;
pub use pool::ThreadPool;
pub use server::{Server, ServiceConfig};
