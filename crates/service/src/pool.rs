//! A hand-rolled thread-pool executor over `std::thread` and channels.
//!
//! Workers pull boxed jobs from a shared `mpsc` receiver; each job runs
//! under `catch_unwind` so a panicking query isolates to its request
//! instead of killing the worker (the panic is counted for `/metrics`).
//! Since the keep-alive refactor a job is a whole *connection* (the
//! server's per-socket request loop), not a single request, so the
//! queue depth ([`ThreadPool::queued`]) counts accepted connections
//! waiting for a worker — the signal the admission layer bounds.
//! Dropping the sender is the shutdown signal: workers drain the queue,
//! see the channel disconnect, and exit, at which point
//! [`ThreadPool::shutdown`] (or `Drop`) joins them.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads.
pub struct ThreadPool {
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    panics: Arc<AtomicU64>,
    queued: Arc<AtomicUsize>,
    size: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .field("queued", &self.queued())
            .field("panics", &self.panic_count())
            .finish()
    }
}

impl ThreadPool {
    /// Spawn `size` workers (minimum 1) named `{name}-{index}`.
    pub fn new(name: &str, size: usize) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panics = Arc::new(AtomicU64::new(0));
        let queued = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let receiver = Arc::clone(&receiver);
            let panics = Arc::clone(&panics);
            let queued = Arc::clone(&queued);
            let handle = thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || worker_loop(&receiver, &panics, &queued))
                .expect("spawn worker thread");
            workers.push(handle);
        }
        ThreadPool {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(workers),
            panics,
            queued,
            size,
        }
    }

    /// Queue a job. Returns `false` if the pool is shutting down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &*self.sender.lock().expect("pool sender poisoned") {
            Some(sender) => {
                self.queued.fetch_add(1, Ordering::Relaxed);
                let sent = sender.send(Box::new(job)).is_ok();
                if !sent {
                    self.queued.fetch_sub(1, Ordering::Relaxed);
                }
                sent
            }
            None => false,
        }
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Jobs that panicked (and were contained) so far.
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting jobs, let workers drain the
    /// queue, and join them. Idempotent.
    pub fn shutdown(&self) {
        drop(self.sender.lock().expect("pool sender poisoned").take());
        let workers = std::mem::take(&mut *self.workers.lock().expect("pool workers poisoned"));
        for handle in workers {
            // Workers contain job panics themselves; a join error would
            // mean the loop itself died, which we ignore on shutdown.
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Mutex<mpsc::Receiver<Job>>, panics: &AtomicU64, queued: &AtomicUsize) {
    loop {
        // Hold the lock only while waiting for a job, never while
        // running one, so other workers keep pulling.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                queued.fetch_sub(1, Ordering::Relaxed);
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Sender dropped: graceful shutdown.
            Err(mpsc::RecvError) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn jobs_run_on_workers() {
        let pool = ThreadPool::new("t", 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let done_tx = done_tx.clone();
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                done_tx.send(()).unwrap();
            }));
        }
        for _ in 0..100 {
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = ThreadPool::new("t", 2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        // After shutdown, jobs are refused rather than silently lost.
        assert!(!pool.execute(|| {}));
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new("t", 1);
        pool.execute(|| panic!("job panic (expected in test output)"));
        let (tx, rx) = mpsc::channel();
        // The single worker survived the panic and still runs jobs.
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 42);
        assert_eq!(pool.panic_count(), 1);
    }

    #[test]
    fn queue_depth_tracks_waiting_jobs() {
        let pool = ThreadPool::new("t", 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        // Occupy the single worker so further jobs sit in the queue.
        pool.execute(move || {
            let _ = gate_rx.recv_timeout(Duration::from_secs(10));
        });
        // Wait for the worker to pick the blocker up.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.queued() != 0 && std::time::Instant::now() < deadline {
            thread::yield_now();
        }
        for _ in 0..3 {
            pool.execute(|| {});
        }
        assert_eq!(pool.queued(), 3);
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new("t", 3);
            for _ in 0..30 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Drop blocked until every queued job finished.
        assert_eq!(counter.load(Ordering::SeqCst), 30);
    }
}
