//! A deliberately minimal HTTP/1.1 layer over `std::io`.
//!
//! Parses just enough of a request for the service's three endpoints —
//! request line, `Content-Length`, body — and writes
//! `Connection: close` responses. Hard limits on header and body size
//! keep a misbehaving client from pinning a worker.

use std::io::{BufRead, Read, Write};

/// Maximum accepted header-section size (request line included).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: method, target, headers and raw body.
#[derive(Debug, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path plus any query string).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order, names lowercased,
    /// values trimmed. Bounded by [`MAX_HEADER_BYTES`] like the rest of
    /// the header section.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed request line, header or length field.
    Malformed(&'static str),
    /// Headers or body exceeded the size limits.
    TooLarge,
    /// The connection dropped mid-request.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Malformed(what) => write!(f, "malformed request: {what}"),
            RequestError::TooLarge => write!(f, "request too large"),
            RequestError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> RequestError {
        RequestError::Io(e.kind())
    }
}

/// Read one line terminated by `\n`, stripping `\r\n`/`\n`, bounding
/// the running header total.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, RequestError> {
    let mut line = Vec::new();
    // Cap the read so a newline-free flood cannot grow unboundedly.
    let mut limited = reader.take(*budget as u64 + 1);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Err(RequestError::Malformed("unexpected end of stream"));
    }
    if n > *budget {
        return Err(RequestError::TooLarge);
    }
    *budget -= n;
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| RequestError::Malformed("non-UTF-8 header"))
}

/// Parse one HTTP/1.1 request from `reader`.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().map(str::to_string);
    let version = parts.next();
    let (target, version) = match (target, version, parts.next()) {
        (Some(t), Some(v), None) if !method.is_empty() && !t.is_empty() => (t, v),
        _ => return Err(RequestError::Malformed("request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("unsupported HTTP version"));
    }

    let mut content_length: usize = 0;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed("header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| RequestError::Malformed("content-length"))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// The canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` response.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(writer, status, content_type, &[], body)
}

/// Write a complete `Connection: close` response with extra headers
/// (e.g. `X-Request-Id`). Header values must be ASCII without CR/LF.
pub fn write_response_with_headers(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

/// The value of query parameter `key` in a request target, if present
/// (`/query?profile=true` → `Some("true")`). No percent-decoding; the
/// server's parameters are plain tokens.
pub fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    let (_, params) = target.split_once('?')?;
    params.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// Minimal JSON string escaping for error payloads.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\nsum(1)\n").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert_eq!(req.body, b"sum(1)\n");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse(b"POST /q HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nhi").unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn headers_are_retained_and_looked_up_case_insensitively() {
        let req =
            parse(b"POST /q HTTP/1.1\r\nX-Request-Id:  abc-123 \r\nContent-Length: 2\r\n\r\nhi")
                .unwrap();
        assert_eq!(req.header("x-request-id"), Some("abc-123"));
        assert_eq!(req.header("X-REQUEST-ID"), Some("abc-123"));
        assert_eq!(req.header("content-length"), Some("2"));
        assert_eq!(req.header("absent"), None);
        assert_eq!(
            req.headers,
            vec![
                ("x-request-id".to_string(), "abc-123".to_string()),
                ("content-length".to_string(), "2".to_string()),
            ]
        );
    }

    #[test]
    fn rejects_garbage_request_line() {
        assert_eq!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(RequestError::Malformed("request line"))
        );
        assert_eq!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(RequestError::Malformed("unsupported HTTP version"))
        );
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(raw.as_bytes()), Err(RequestError::TooLarge));
    }

    #[test]
    fn rejects_unbounded_headers() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        assert_eq!(parse(&raw), Err(RequestError::TooLarge));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse(b"POST /q HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, RequestError::Io(_)));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn extra_headers_land_before_the_body() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            200,
            "application/json",
            &[("X-Request-Id", "42")],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: 42\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn query_params_parse_from_the_target() {
        assert_eq!(query_param("/query?profile=true", "profile"), Some("true"));
        assert_eq!(
            query_param("/query?a=1&profile=yes&b=2", "profile"),
            Some("yes")
        );
        assert_eq!(query_param("/query?profile", "profile"), Some(""));
        assert_eq!(query_param("/query", "profile"), None);
        assert_eq!(query_param("/query?other=1", "profile"), None);
    }
}
