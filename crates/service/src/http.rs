//! A deliberately minimal HTTP/1.1 layer over `std::io`.
//!
//! Parses just enough of a request for the service's endpoints —
//! request line (with HTTP version), headers, `Content-Length`, body —
//! and writes responses either whole (with `Content-Length`) or as
//! `Transfer-Encoding: chunked` streams. Connection lifetime is the
//! caller's business: the parser reports whether the client asked for
//! keep-alive and the writers take an explicit close/keep-alive flag.
//! Hard limits on header and body size keep a misbehaving client from
//! pinning a worker.

use std::io::{BufRead, Read, Write};

/// Maximum accepted header-section size (request line included).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: method, target, headers and raw body.
#[derive(Debug, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path plus any query string).
    pub target: String,
    /// Minor HTTP/1.x version from the request line (0 or 1).
    pub minor_version: u8,
    /// Header `(name, value)` pairs in arrival order, names lowercased,
    /// values trimmed. Bounded by [`MAX_HEADER_BYTES`] like the rest of
    /// the header section.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether this request asks to reuse the connection, per HTTP/1.x
    /// semantics: an explicit `Connection: close` always wins; HTTP/1.1
    /// defaults to keep-alive, HTTP/1.0 defaults to close unless the
    /// client sent `Connection: keep-alive`.
    pub fn keep_alive_requested(&self) -> bool {
        let tokens =
            |v: &str, needle: &str| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(needle));
        match self.header("connection") {
            Some(v) if tokens(v, "close") => false,
            Some(v) if tokens(v, "keep-alive") => true,
            _ => self.minor_version >= 1,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed request line, header or length field.
    Malformed(&'static str),
    /// Headers or body exceeded the size limits.
    TooLarge,
    /// The client closed the connection cleanly before sending any
    /// byte of a request — the normal end of a keep-alive session.
    Closed,
    /// A read deadline expired mid-request (slow or stalled client).
    Timeout,
    /// The connection dropped mid-request.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Malformed(what) => write!(f, "malformed request: {what}"),
            RequestError::TooLarge => write!(f, "request too large"),
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Timeout => write!(f, "request read timed out"),
            RequestError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> RequestError {
        match e.kind() {
            // Both kinds occur for an expired socket read deadline,
            // depending on platform.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RequestError::Timeout,
            kind => RequestError::Io(kind),
        }
    }
}

/// Read one line terminated by `\n`, stripping the `\r\n`/`\n` ending,
/// bounding the running header total. `Ok(None)` is clean EOF before
/// any byte of this line. A carriage return anywhere else in the line
/// (CR-only endings, doubled CRs) is malformed.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    // Cap the read so a newline-free flood cannot grow unboundedly.
    let mut limited = reader.take(*budget as u64 + 1);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(RequestError::TooLarge);
    }
    *budget -= n;
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    if line.iter().any(|&b| b == b'\r' || b == b'\n') {
        return Err(RequestError::Malformed("bare carriage return"));
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| RequestError::Malformed("non-UTF-8 header"))
}

/// Parse one HTTP/1.x request from `reader`.
///
/// Distinguishes the ways a keep-alive connection ends: a clean EOF
/// before the first byte is [`RequestError::Closed`] (close silently),
/// an expired read deadline is [`RequestError::Timeout`] (respond 408),
/// and anything else mid-request is malformed or an I/O error.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        Some(line) => line,
        None => return Err(RequestError::Closed),
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().map(str::to_string);
    let version = parts.next();
    let (target, version) = match (target, version, parts.next()) {
        (Some(t), Some(v), None) if !method.is_empty() && !t.is_empty() => (t, v),
        _ => return Err(RequestError::Malformed("request line")),
    };
    let minor_version = match version {
        "HTTP/1.0" => 0,
        "HTTP/1.1" => 1,
        _ => return Err(RequestError::Malformed("unsupported HTTP version")),
    };

    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            Some(line) => line,
            None => return Err(RequestError::Malformed("unexpected end of stream")),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed("header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let parsed = value
                .parse()
                .map_err(|_| RequestError::Malformed("content-length"))?;
            // A request smuggling vector if ever proxied: reject
            // instead of silently taking either value.
            if content_length.replace(parsed).is_some() {
                return Err(RequestError::Malformed("duplicate content-length"));
            }
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        match RequestError::from(e) {
            // A deadline mid-body is still a timeout; a clean EOF
            // mid-body is a dropped connection, not `Closed`.
            RequestError::Timeout => RequestError::Timeout,
            other => other,
        }
    })?;
    Ok(Request {
        method,
        target,
        minor_version,
        headers,
        body,
    })
}

/// The canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` response.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(writer, status, content_type, &[], body, false)
}

/// Write a complete response with extra headers (e.g. `X-Request-Id`)
/// and an explicit connection disposition. Header values must be ASCII
/// without CR/LF.
pub fn write_response_with_headers(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        connection,
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

/// Write the head of a `Transfer-Encoding: chunked` response. Body
/// bytes follow via [`write_chunk`]; a complete response ends with
/// [`finish_chunked`], and an aborted one simply never does (closing
/// the socket without the terminal chunk is how HTTP signals a
/// truncated chunked body).
pub fn write_chunked_head(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        connection,
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")
}

/// Write one chunk of a chunked response body. Empty input writes
/// nothing (a zero-length chunk would terminate the body).
pub fn write_chunk(writer: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    // One buffered write per chunk: size line + payload + CRLF.
    let mut framed = Vec::with_capacity(data.len() + 16);
    framed.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    framed.extend_from_slice(data);
    framed.extend_from_slice(b"\r\n");
    writer.write_all(&framed)
}

/// Write the terminal chunk of a chunked response and flush.
pub fn finish_chunked(writer: &mut impl Write) -> std::io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// The value of query parameter `key` in a request target, if present
/// (`/query?profile=true` → `Some("true")`). No percent-decoding; the
/// server's parameters are plain tokens.
pub fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    let (_, params) = target.split_once('?')?;
    params.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// Minimal JSON string escaping for error payloads.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\nsum(1)\n").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert_eq!(req.minor_version, 1);
        assert_eq!(req.body, b"sum(1)\n");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse(b"POST /q HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nhi").unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn headers_are_retained_and_looked_up_case_insensitively() {
        let req =
            parse(b"POST /q HTTP/1.1\r\nX-Request-Id:  abc-123 \r\nContent-Length: 2\r\n\r\nhi")
                .unwrap();
        assert_eq!(req.header("x-request-id"), Some("abc-123"));
        assert_eq!(req.header("X-REQUEST-ID"), Some("abc-123"));
        assert_eq!(req.header("content-length"), Some("2"));
        assert_eq!(req.header("absent"), None);
        assert_eq!(
            req.headers,
            vec![
                ("x-request-id".to_string(), "abc-123".to_string()),
                ("content-length".to_string(), "2".to_string()),
            ]
        );
    }

    #[test]
    fn connection_semantics_by_version() {
        // HTTP/1.1 defaults to keep-alive; explicit close wins.
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n")
            .unwrap()
            .keep_alive_requested());
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .keep_alive_requested());
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
            .unwrap()
            .keep_alive_requested());
        // Token lists: `close` anywhere in the list still closes.
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: TE, close\r\n\r\n")
            .unwrap()
            .keep_alive_requested());
        // HTTP/1.0 defaults to close; explicit keep-alive opts in.
        assert!(!parse(b"GET / HTTP/1.0\r\n\r\n")
            .unwrap()
            .keep_alive_requested());
        assert!(parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .keep_alive_requested());
        // An unrelated Connection value falls back to the version default.
        assert!(parse(b"GET / HTTP/1.1\r\nConnection: TE\r\n\r\n")
            .unwrap()
            .keep_alive_requested());
    }

    #[test]
    fn clean_eof_before_any_byte_is_closed() {
        assert_eq!(parse(b""), Err(RequestError::Closed));
    }

    #[test]
    fn eof_mid_headers_is_malformed_not_closed() {
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(RequestError::Malformed("unexpected end of stream"))
        );
    }

    #[test]
    fn rejects_garbage_request_line() {
        assert_eq!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(RequestError::Malformed("request line"))
        );
        assert_eq!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(RequestError::Malformed("unsupported HTTP version"))
        );
        // Truncated request line: method only, no target/version.
        assert_eq!(
            parse(b"GET\r\n\r\n"),
            Err(RequestError::Malformed("request line"))
        );
        assert_eq!(
            parse(b"GET /x\r\n\r\n"),
            Err(RequestError::Malformed("request line"))
        );
        // HTTP/2-style or fractional versions are refused outright.
        assert_eq!(
            parse(b"GET / HTTP/1.2\r\n\r\n"),
            Err(RequestError::Malformed("unsupported HTTP version"))
        );
    }

    #[test]
    fn rejects_header_without_colon() {
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(RequestError::Malformed("header line"))
        );
    }

    #[test]
    fn rejects_duplicate_content_length() {
        assert_eq!(
            parse(b"POST /q HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi"),
            Err(RequestError::Malformed("duplicate content-length"))
        );
        // Even duplicates that agree are refused.
        assert_eq!(
            parse(b"POST /q HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi"),
            Err(RequestError::Malformed("duplicate content-length"))
        );
    }

    #[test]
    fn rejects_non_numeric_content_length() {
        assert_eq!(
            parse(b"POST /q HTTP/1.1\r\nContent-Length: two\r\n\r\nhi"),
            Err(RequestError::Malformed("content-length"))
        );
    }

    #[test]
    fn rejects_cr_only_line_endings() {
        assert_eq!(
            parse(b"GET / HTTP/1.1\rHost: x\r\r\n"),
            Err(RequestError::Malformed("bare carriage return"))
        );
        // Doubled CR before the LF is not a valid line ending either.
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\r\n\r\n"),
            Err(RequestError::Malformed("bare carriage return"))
        );
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(raw.as_bytes()), Err(RequestError::TooLarge));
    }

    #[test]
    fn rejects_unbounded_headers() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        assert_eq!(parse(&raw), Err(RequestError::TooLarge));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse(b"POST /q HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, RequestError::Io(_)));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn keep_alive_responses_say_so() {
        let mut out = Vec::new();
        write_response_with_headers(&mut out, 200, "text/plain", &[], b"ok", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn chunked_response_framing() {
        let mut out = Vec::new();
        write_chunked_head(
            &mut out,
            200,
            "application/xml",
            &[("X-Request-Id", "7")],
            true,
        )
        .unwrap();
        write_chunk(&mut out, b"<a/>").unwrap();
        write_chunk(&mut out, b"").unwrap(); // ignored, not terminal
        write_chunk(&mut out, &[b'x'; 16]).unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("X-Request-Id: 7\r\n"), "{text}");
        assert!(
            text.ends_with("\r\n\r\n4\r\n<a/>\r\n10\r\nxxxxxxxxxxxxxxxx\r\n0\r\n\r\n"),
            "{text}"
        );
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn extra_headers_land_before_the_body() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            200,
            "application/json",
            &[("X-Request-Id", "42")],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: 42\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn timeout_reason_phrases_exist() {
        assert_eq!(reason(408), "Request Timeout");
        assert_eq!(reason(429), "Too Many Requests");
        assert_eq!(reason(503), "Service Unavailable");
    }

    #[test]
    fn query_params_parse_from_the_target() {
        assert_eq!(query_param("/query?profile=true", "profile"), Some("true"));
        assert_eq!(
            query_param("/query?a=1&profile=yes&b=2", "profile"),
            Some("yes")
        );
        assert_eq!(query_param("/query?profile", "profile"), Some(""));
        assert_eq!(query_param("/query", "profile"), None);
        assert_eq!(query_param("/query?other=1", "profile"), None);
    }
}
