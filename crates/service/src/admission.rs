//! Bounded admission in front of the connection pool.
//!
//! The acceptor thread asks [`Admission::try_admit`] before handing a
//! freshly accepted socket to the pool. Admission is bounded two ways:
//!
//! - **Total capacity**: at most `workers + max_queue` connections may
//!   be admitted at once — the pool's workers plus a bounded backlog of
//!   connections waiting for one. Beyond that the acceptor sheds the
//!   connection with `429` + `Retry-After` instead of growing an
//!   unbounded queue of sockets nobody is serving.
//! - **Per-client quota**: at most `max_inflight_per_client` admitted
//!   connections per peer IP address, so one greedy client cannot
//!   occupy the whole pool.
//!
//! The returned [`AdmissionGuard`] releases both counts on drop, so a
//! connection that panics or errors out still frees its slot. The
//! guard also distinguishes *queued* from *running* (the worker calls
//! [`AdmissionGuard::mark_running`] when it picks the connection up),
//! which is what the `/metrics` gauges `xqa_http_connections_active`
//! and `xqa_admission_queue_depth` report.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Why a connection was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Every worker and queue slot is occupied.
    QueueFull,
    /// The peer already has `max_inflight_per_client` connections
    /// admitted.
    ClientQuota,
}

/// Shared admission state (see module docs).
#[derive(Debug)]
pub struct Admission {
    /// Admitted-connection ceiling: pool workers + queue bound.
    capacity: usize,
    max_per_client: usize,
    /// Connections admitted and not yet finished (queued + running).
    admitted: AtomicUsize,
    /// Connections a worker is actively serving.
    running: AtomicUsize,
    /// Connections shed since startup.
    shed: AtomicU64,
    per_client: Mutex<HashMap<IpAddr, usize>>,
}

impl Admission {
    /// Admission state for a pool of `workers` workers, allowing
    /// `max_queue` connections to wait and `max_per_client` admitted
    /// connections per peer IP (minimum 1 each).
    pub fn new(workers: usize, max_queue: usize, max_per_client: usize) -> Arc<Admission> {
        Arc::new(Admission {
            capacity: workers.max(1) + max_queue,
            max_per_client: max_per_client.max(1),
            admitted: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            per_client: Mutex::new(HashMap::new()),
        })
    }

    /// Try to admit a connection from `peer`. `Err` means the caller
    /// should shed it (the shed counter is already bumped).
    pub fn try_admit(self: &Arc<Self>, peer: Option<IpAddr>) -> Result<AdmissionGuard, ShedReason> {
        if let Some(ip) = peer {
            let mut clients = self.per_client.lock().expect("admission clients poisoned");
            let count = clients.entry(ip).or_insert(0);
            if *count >= self.max_per_client {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ShedReason::ClientQuota);
            }
            *count += 1;
        }
        if self.admitted.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.admitted.fetch_sub(1, Ordering::AcqRel);
            self.release_client(peer);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ShedReason::QueueFull);
        }
        Ok(AdmissionGuard {
            admission: Arc::clone(self),
            peer,
            running: false,
        })
    }

    /// Connections currently being served by a worker.
    pub fn active_connections(&self) -> usize {
        self.running.load(Ordering::Relaxed)
    }

    /// Admitted connections still waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.admitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.running.load(Ordering::Relaxed))
    }

    /// Connections shed (either reason) since startup.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    fn release_client(&self, peer: Option<IpAddr>) {
        if let Some(ip) = peer {
            let mut clients = self.per_client.lock().expect("admission clients poisoned");
            if let Some(count) = clients.get_mut(&ip) {
                *count -= 1;
                if *count == 0 {
                    clients.remove(&ip);
                }
            }
        }
    }
}

/// One admitted connection's slot; releases it on drop.
#[derive(Debug)]
pub struct AdmissionGuard {
    admission: Arc<Admission>,
    peer: Option<IpAddr>,
    running: bool,
}

impl AdmissionGuard {
    /// Mark the connection as picked up by a worker (queued → running).
    pub fn mark_running(&mut self) {
        if !self.running {
            self.running = true;
            self.admission.running.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        if self.running {
            self.admission.running.fetch_sub(1, Ordering::Relaxed);
        }
        self.admission.admitted.fetch_sub(1, Ordering::AcqRel);
        self.admission.release_client(self.peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Option<IpAddr> {
        Some(IpAddr::from([127, 0, 0, last]))
    }

    #[test]
    fn capacity_bounds_admissions() {
        let adm = Admission::new(1, 1, 16);
        let a = adm.try_admit(ip(1)).expect("first fits");
        let b = adm.try_admit(ip(2)).expect("queue slot fits");
        assert_eq!(adm.try_admit(ip(3)).err(), Some(ShedReason::QueueFull));
        assert_eq!(adm.shed_total(), 1);
        drop(a);
        let _c = adm.try_admit(ip(3)).expect("slot freed on drop");
        drop(b);
    }

    #[test]
    fn per_client_quota_binds_before_capacity() {
        let adm = Admission::new(8, 8, 2);
        let _a = adm.try_admit(ip(1)).unwrap();
        let _b = adm.try_admit(ip(1)).unwrap();
        assert_eq!(adm.try_admit(ip(1)).err(), Some(ShedReason::ClientQuota));
        // Another client is unaffected.
        let _c = adm.try_admit(ip(2)).unwrap();
    }

    #[test]
    fn quota_slot_frees_on_drop() {
        let adm = Admission::new(8, 8, 1);
        let a = adm.try_admit(ip(1)).unwrap();
        assert_eq!(adm.try_admit(ip(1)).err(), Some(ShedReason::ClientQuota));
        drop(a);
        let _b = adm.try_admit(ip(1)).expect("quota released");
    }

    #[test]
    fn gauges_track_queued_vs_running() {
        let adm = Admission::new(4, 4, 16);
        let mut a = adm.try_admit(ip(1)).unwrap();
        let _b = adm.try_admit(ip(2)).unwrap();
        assert_eq!(adm.active_connections(), 0);
        assert_eq!(adm.queue_depth(), 2);
        a.mark_running();
        a.mark_running(); // idempotent
        assert_eq!(adm.active_connections(), 1);
        assert_eq!(adm.queue_depth(), 1);
        drop(a);
        assert_eq!(adm.active_connections(), 0);
        assert_eq!(adm.queue_depth(), 1);
    }

    #[test]
    fn anonymous_peers_skip_the_quota_but_count_against_capacity() {
        let adm = Admission::new(1, 0, 1);
        let _a = adm.try_admit(None).unwrap();
        assert_eq!(adm.try_admit(None).err(), Some(ShedReason::QueueFull));
    }
}
