//! The document catalog: named documents and collections, parsed once
//! at startup and shared immutably across worker threads.
//!
//! Every entry is an `Arc<Document>`; building a per-request
//! [`DynamicContext`] from the catalog only clones handles, never
//! re-parses XML. The catalog is the single owner of input data for a
//! [`crate::Server`] — each request gets its own context (cheap `Arc`
//! clones) so per-request stats and profiles never interleave.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use xqa_engine::DynamicContext;
use xqa_xdm::Document;
use xqa_xmlparse::parse_document;

/// Error raised while loading catalog entries (file I/O or XML parse),
/// tagged with the offending source so startup failures are actionable.
#[derive(Debug)]
pub struct CatalogError {
    /// The document name, collection name or file path that failed.
    pub source: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.source, self.message)
    }
}

impl std::error::Error for CatalogError {}

fn parse_named(source: &str, xml: &str) -> Result<Arc<Document>, CatalogError> {
    parse_document(xml).map_err(|e| CatalogError {
        source: source.to_string(),
        message: e.to_string(),
    })
}

fn read_file(path: &Path) -> Result<String, CatalogError> {
    std::fs::read_to_string(path).map_err(|e| CatalogError {
        source: path.display().to_string(),
        message: format!("cannot read: {e}"),
    })
}

/// Named documents and collections, parsed once and shared immutably.
///
/// Entry order is preserved so contexts built from the same catalog are
/// identical (collections keep their file order, which is observable
/// through `fn:collection()` document order).
#[derive(Debug, Default, Clone)]
pub struct DocumentCatalog {
    context: Option<Arc<Document>>,
    documents: Vec<(String, Arc<Document>)>,
    collections: Vec<(String, Vec<Arc<Document>>)>,
}

impl DocumentCatalog {
    /// An empty catalog.
    pub fn new() -> DocumentCatalog {
        DocumentCatalog::default()
    }

    /// Set the context document (the initial context item) from a
    /// pre-built document.
    pub fn set_context(&mut self, doc: Arc<Document>) -> &mut Self {
        self.context = Some(doc);
        self
    }

    /// Set the context document from XML text.
    pub fn set_context_xml(&mut self, xml: &str) -> Result<&mut Self, CatalogError> {
        self.context = Some(parse_named("<context>", xml)?);
        Ok(self)
    }

    /// Set the context document from a file.
    pub fn set_context_file(&mut self, path: impl AsRef<Path>) -> Result<&mut Self, CatalogError> {
        let path = path.as_ref();
        self.context = Some(parse_named(&path.display().to_string(), &read_file(path)?)?);
        Ok(self)
    }

    /// Register a pre-built document for `fn:doc("name")`.
    pub fn add_document(&mut self, name: impl Into<String>, doc: Arc<Document>) -> &mut Self {
        self.documents.push((name.into(), doc));
        self
    }

    /// Register a document for `fn:doc("name")` from XML text.
    pub fn add_document_xml(
        &mut self,
        name: impl Into<String>,
        xml: &str,
    ) -> Result<&mut Self, CatalogError> {
        let name = name.into();
        let doc = parse_named(&name, xml)?;
        self.documents.push((name, doc));
        Ok(self)
    }

    /// Register a document for `fn:doc("name")` from a file.
    pub fn add_document_file(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<&mut Self, CatalogError> {
        let path = path.as_ref();
        let doc = parse_named(&path.display().to_string(), &read_file(path)?)?;
        self.documents.push((name.into(), doc));
        Ok(self)
    }

    /// Register a pre-built collection for `fn:collection("name")`.
    pub fn add_collection(
        &mut self,
        name: impl Into<String>,
        docs: Vec<Arc<Document>>,
    ) -> &mut Self {
        self.collections.push((name.into(), docs));
        self
    }

    /// Register a collection for `fn:collection("name")` from files, in
    /// the given order.
    pub fn add_collection_files<P: AsRef<Path>>(
        &mut self,
        name: impl Into<String>,
        paths: &[P],
    ) -> Result<&mut Self, CatalogError> {
        let mut docs = Vec::with_capacity(paths.len());
        for path in paths {
            let path = path.as_ref();
            docs.push(parse_named(&path.display().to_string(), &read_file(path)?)?);
        }
        self.collections.push((name.into(), docs));
        Ok(self)
    }

    /// Number of named documents.
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// Number of named collections.
    pub fn collection_count(&self) -> usize {
        self.collections.len()
    }

    /// Whether a context document is set.
    pub fn has_context(&self) -> bool {
        self.context.is_some()
    }

    /// Build a fresh [`DynamicContext`] over the catalog's documents.
    ///
    /// Cheap: registers shared `Arc<Document>` handles, no re-parsing.
    /// The returned context carries its own [`xqa_engine::EvalStats`].
    pub fn new_context(&self) -> DynamicContext {
        let mut ctx = DynamicContext::new();
        if let Some(doc) = &self.context {
            ctx.set_context_document(doc);
        }
        for (name, doc) in &self.documents {
            ctx.register_document(name.clone(), doc);
        }
        for (name, docs) in &self.collections {
            ctx.register_collection(name.clone(), docs.iter().map(|d| d.root()).collect());
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_engine::Engine;

    #[test]
    fn context_and_documents_are_queryable() {
        let mut catalog = DocumentCatalog::new();
        catalog.set_context_xml("<r><v>1</v><v>2</v></r>").unwrap();
        catalog
            .add_document_xml("aux", "<aux><v>40</v></aux>")
            .unwrap();
        let ctx = catalog.new_context();
        let engine = Engine::new();
        let q = engine.compile("sum(//v) + sum(doc('aux')//v)").unwrap();
        assert_eq!(q.run(&ctx).unwrap()[0].string_value(), "43");
    }

    #[test]
    fn collections_preserve_document_order() {
        let mut catalog = DocumentCatalog::new();
        catalog.add_collection(
            "c",
            vec![
                parse_document("<d><n>first</n></d>").unwrap(),
                parse_document("<d><n>second</n></d>").unwrap(),
            ],
        );
        let ctx = catalog.new_context();
        let engine = Engine::new();
        let q = engine
            .compile("for $d in collection('c') return string($d//n)")
            .unwrap();
        let out = q.run(&ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].string_value(), "first");
        assert_eq!(out[1].string_value(), "second");
    }

    #[test]
    fn parse_errors_name_the_source() {
        let mut catalog = DocumentCatalog::new();
        let err = catalog
            .add_document_xml("broken", "<not closed")
            .unwrap_err();
        assert_eq!(err.source, "broken");
        let err = catalog
            .add_document_file("x", "/nonexistent/path.xml")
            .unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn contexts_from_one_catalog_share_documents() {
        let mut catalog = DocumentCatalog::new();
        catalog.set_context_xml("<r><v>7</v></r>").unwrap();
        let a = catalog.new_context();
        let b = catalog.new_context();
        // Same underlying document: the root handles compare as the
        // same node across both contexts.
        match (a.context_item().unwrap(), b.context_item().unwrap()) {
            (xqa_xdm::Item::Node(na), xqa_xdm::Item::Node(nb)) => {
                assert!(na.is_same_node(nb));
            }
            other => panic!("unexpected context items {other:?}"),
        }
    }
}
