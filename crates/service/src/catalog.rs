//! The document catalog: named documents and collections, parsed once
//! at startup and shared immutably across worker threads.
//!
//! Every entry is an `Arc<Document>`; building a per-request
//! [`DynamicContext`] from the catalog only clones handles, never
//! re-parses XML. The catalog is the single owner of input data for a
//! [`crate::Server`] — each request gets its own context (cheap `Arc`
//! clones) so per-request stats and profiles never interleave.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use xqa_engine::DynamicContext;
use xqa_storage::{CatalogStatistics, DocumentStore};
use xqa_xdm::Document;
use xqa_xmlparse::parse_document;

/// Error raised while loading catalog entries (file I/O or XML parse),
/// tagged with the offending source so startup failures are actionable.
#[derive(Debug)]
pub struct CatalogError {
    /// The document name, collection name or file path that failed.
    pub source: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.source, self.message)
    }
}

impl std::error::Error for CatalogError {}

fn parse_named(source: &str, xml: &str) -> Result<Arc<Document>, CatalogError> {
    parse_document(xml).map_err(|e| CatalogError {
        source: source.to_string(),
        message: e.to_string(),
    })
}

fn read_file(path: &Path) -> Result<String, CatalogError> {
    std::fs::read_to_string(path).map_err(|e| CatalogError {
        source: path.display().to_string(),
        message: format!("cannot read: {e}"),
    })
}

/// Named documents and collections, parsed once and shared immutably.
///
/// Entry order is preserved so contexts built from the same catalog are
/// identical (collections keep their file order, which is observable
/// through `fn:collection()` document order).
#[derive(Debug, Default, Clone)]
pub struct DocumentCatalog {
    context: Option<Arc<Document>>,
    documents: Vec<(String, Arc<Document>)>,
    collections: Vec<(String, Vec<Arc<Document>>)>,
    /// Parsed files by canonicalized path: a path repeated across (or
    /// within) collection lists parses once and shares one `Arc`.
    file_cache: HashMap<String, Arc<Document>>,
    /// Indexed stores built by [`DocumentCatalog::build_indexes`],
    /// keyed by document serial.
    stores: HashMap<u64, Arc<DocumentStore>>,
    statistics: Option<Arc<CatalogStatistics>>,
}

impl DocumentCatalog {
    /// An empty catalog.
    pub fn new() -> DocumentCatalog {
        DocumentCatalog::default()
    }

    /// Indexes (and statistics) reflect the documents present when
    /// [`DocumentCatalog::build_indexes`] ran; any later mutation
    /// discards them so stale stores can never be served.
    fn invalidate_indexes(&mut self) {
        self.stores.clear();
        self.statistics = None;
    }

    /// Parse a file, serving repeats of the same path from the cache so
    /// the document is parsed once and shared via one `Arc`.
    fn load_file(&mut self, path: &Path) -> Result<Arc<Document>, CatalogError> {
        // Canonicalize so `a.xml` and `./a.xml` hit the same entry;
        // fall back to the literal path for files that vanish between
        // listing and loading (the read below will report the error).
        let key = std::fs::canonicalize(path)
            .map(|p| p.display().to_string())
            .unwrap_or_else(|_| path.display().to_string());
        if let Some(doc) = self.file_cache.get(&key) {
            return Ok(Arc::clone(doc));
        }
        let doc = parse_named(&path.display().to_string(), &read_file(path)?)?;
        self.file_cache.insert(key, Arc::clone(&doc));
        Ok(doc)
    }

    /// Set the context document (the initial context item) from a
    /// pre-built document.
    pub fn set_context(&mut self, doc: Arc<Document>) -> &mut Self {
        self.invalidate_indexes();
        self.context = Some(doc);
        self
    }

    /// Set the context document from XML text.
    pub fn set_context_xml(&mut self, xml: &str) -> Result<&mut Self, CatalogError> {
        self.invalidate_indexes();
        self.context = Some(parse_named("<context>", xml)?);
        Ok(self)
    }

    /// Set the context document from a file.
    pub fn set_context_file(&mut self, path: impl AsRef<Path>) -> Result<&mut Self, CatalogError> {
        self.invalidate_indexes();
        let doc = self.load_file(path.as_ref())?;
        self.context = Some(doc);
        Ok(self)
    }

    /// Register a pre-built document for `fn:doc("name")`.
    pub fn add_document(&mut self, name: impl Into<String>, doc: Arc<Document>) -> &mut Self {
        self.invalidate_indexes();
        self.documents.push((name.into(), doc));
        self
    }

    /// Register a document for `fn:doc("name")` from XML text.
    pub fn add_document_xml(
        &mut self,
        name: impl Into<String>,
        xml: &str,
    ) -> Result<&mut Self, CatalogError> {
        self.invalidate_indexes();
        let name = name.into();
        let doc = parse_named(&name, xml)?;
        self.documents.push((name, doc));
        Ok(self)
    }

    /// Register a document for `fn:doc("name")` from a file.
    pub fn add_document_file(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<&mut Self, CatalogError> {
        self.invalidate_indexes();
        let doc = self.load_file(path.as_ref())?;
        self.documents.push((name.into(), doc));
        Ok(self)
    }

    /// Register a pre-built collection for `fn:collection("name")`.
    pub fn add_collection(
        &mut self,
        name: impl Into<String>,
        docs: Vec<Arc<Document>>,
    ) -> &mut Self {
        self.invalidate_indexes();
        self.collections.push((name.into(), docs));
        self
    }

    /// Register a collection for `fn:collection("name")` from files, in
    /// the given order. A path repeated in the list (or already loaded
    /// for another entry) is parsed once and shared.
    pub fn add_collection_files<P: AsRef<Path>>(
        &mut self,
        name: impl Into<String>,
        paths: &[P],
    ) -> Result<&mut Self, CatalogError> {
        self.invalidate_indexes();
        let mut docs = Vec::with_capacity(paths.len());
        for path in paths {
            docs.push(self.load_file(path.as_ref())?);
        }
        self.collections.push((name.into(), docs));
        Ok(self)
    }

    /// Build an indexed [`DocumentStore`] for every distinct document
    /// in the catalog (context document, named documents, collection
    /// members — deduplicated by document identity) and derive the
    /// catalog-wide [`CatalogStatistics`] the planner consults.
    /// Subsequent [`DocumentCatalog::new_context`] calls register the
    /// stores so queries can take the index access path. Returns the
    /// statistics; calling again without mutations is a no-op rebuild.
    pub fn build_indexes(&mut self) -> Arc<CatalogStatistics> {
        let mut docs: Vec<Arc<Document>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut push = |doc: &Arc<Document>| {
            if seen.insert(doc.serial()) {
                docs.push(Arc::clone(doc));
            }
        };
        if let Some(doc) = &self.context {
            push(doc);
        }
        for (_, doc) in &self.documents {
            push(doc);
        }
        for (_, members) in &self.collections {
            for doc in members {
                push(doc);
            }
        }
        self.stores = docs
            .iter()
            .map(|doc| {
                let store = Arc::new(DocumentStore::build(doc));
                (doc.serial(), store)
            })
            .collect();
        let stats = Arc::new(CatalogStatistics::from_stores(
            self.stores.values().map(Arc::as_ref),
        ));
        self.statistics = Some(Arc::clone(&stats));
        stats
    }

    /// The statistics from the last [`DocumentCatalog::build_indexes`],
    /// if the catalog has not been mutated since.
    pub fn statistics(&self) -> Option<&Arc<CatalogStatistics>> {
        self.statistics.as_ref()
    }

    /// The catalog version: the highest store version among the built
    /// indexes (0 when indexes have not been built). Strictly grows as
    /// documents are (re)indexed, so it invalidates plan-cache entries
    /// compiled against older statistics.
    pub fn version(&self) -> u64 {
        self.statistics.as_ref().map_or(0, |s| s.version())
    }

    /// Number of indexed document stores currently built.
    pub fn indexed_document_count(&self) -> usize {
        self.stores.len()
    }

    /// Total estimated index heap footprint across built stores.
    pub fn index_bytes(&self) -> u64 {
        self.stores.values().map(|s| s.index_bytes()).sum()
    }

    /// Number of named documents.
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// Number of named collections.
    pub fn collection_count(&self) -> usize {
        self.collections.len()
    }

    /// Whether a context document is set.
    pub fn has_context(&self) -> bool {
        self.context.is_some()
    }

    /// Build a fresh [`DynamicContext`] over the catalog's documents.
    ///
    /// Cheap: registers shared `Arc<Document>` handles, no re-parsing.
    /// The returned context carries its own [`xqa_engine::EvalStats`].
    pub fn new_context(&self) -> DynamicContext {
        let mut ctx = DynamicContext::new();
        if let Some(doc) = &self.context {
            ctx.set_context_document(doc);
        }
        for (name, doc) in &self.documents {
            ctx.register_document(name.clone(), doc);
        }
        for (name, docs) in &self.collections {
            ctx.register_collection(name.clone(), docs.iter().map(|d| d.root()).collect());
        }
        for store in self.stores.values() {
            ctx.register_store(Arc::clone(store));
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_engine::Engine;

    #[test]
    fn context_and_documents_are_queryable() {
        let mut catalog = DocumentCatalog::new();
        catalog.set_context_xml("<r><v>1</v><v>2</v></r>").unwrap();
        catalog
            .add_document_xml("aux", "<aux><v>40</v></aux>")
            .unwrap();
        let ctx = catalog.new_context();
        let engine = Engine::new();
        let q = engine.compile("sum(//v) + sum(doc('aux')//v)").unwrap();
        assert_eq!(q.run(&ctx).unwrap()[0].string_value(), "43");
    }

    #[test]
    fn collections_preserve_document_order() {
        let mut catalog = DocumentCatalog::new();
        catalog.add_collection(
            "c",
            vec![
                parse_document("<d><n>first</n></d>").unwrap(),
                parse_document("<d><n>second</n></d>").unwrap(),
            ],
        );
        let ctx = catalog.new_context();
        let engine = Engine::new();
        let q = engine
            .compile("for $d in collection('c') return string($d//n)")
            .unwrap();
        let out = q.run(&ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].string_value(), "first");
        assert_eq!(out[1].string_value(), "second");
    }

    #[test]
    fn parse_errors_name_the_source() {
        let mut catalog = DocumentCatalog::new();
        let err = catalog
            .add_document_xml("broken", "<not closed")
            .unwrap_err();
        assert_eq!(err.source, "broken");
        let err = catalog
            .add_document_file("x", "/nonexistent/path.xml")
            .unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn repeated_collection_files_parse_once_and_share() {
        let dir = std::env::temp_dir().join(format!("xqa-catalog-dedupe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("doc.xml");
        std::fs::write(&file, "<d><v>5</v></d>").unwrap();
        let mut catalog = DocumentCatalog::new();
        // The same file three times: twice in one list (once via a
        // relative-ish ./ spelling) and again in a second collection.
        let dotted = dir.join(".").join("doc.xml");
        catalog
            .add_collection_files("c", &[file.clone(), dotted, file.clone()])
            .unwrap();
        catalog
            .add_collection_files("c2", std::slice::from_ref(&file))
            .unwrap();
        let ctx = catalog.new_context();
        let collect = |name: &str| match ctx.collection(Some(name)) {
            Some(nodes) => nodes.to_vec(),
            None => panic!("collection {name} missing"),
        };
        let c = collect("c");
        let c2 = collect("c2");
        // Collection order (and multiplicity) is preserved...
        assert_eq!(c.len(), 3);
        assert_eq!(c2.len(), 1);
        // ...but every entry is the same parsed document.
        assert!(c[0].is_same_node(&c[1]));
        assert!(c[0].is_same_node(&c[2]));
        assert!(c[0].is_same_node(&c2[0]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_indexes_registers_stores_and_statistics() {
        let mut catalog = DocumentCatalog::new();
        catalog
            .set_context_xml("<r><item><p>1</p></item><item><p>2</p></item></r>")
            .unwrap();
        catalog
            .add_document_xml("aux", "<aux><p>3</p></aux>")
            .unwrap();
        let stats = catalog.build_indexes();
        assert_eq!(catalog.indexed_document_count(), 2);
        assert!(catalog.index_bytes() > 0);
        assert_eq!(catalog.version(), stats.version());
        assert!(catalog.version() > 0);
        let p = xqa_xdm::QName::local("p");
        assert_eq!(stats.element_count(&p), 3);
        // Contexts built after indexing carry the stores.
        let ctx = catalog.new_context();
        assert_eq!(ctx.stores().count(), 2);
        // Mutation invalidates: stale stores are never served.
        catalog.add_document_xml("more", "<m/>").unwrap();
        assert!(catalog.statistics().is_none());
        assert_eq!(catalog.indexed_document_count(), 0);
        let v2 = catalog.build_indexes().version();
        assert!(v2 > stats.version());
    }

    #[test]
    fn contexts_from_one_catalog_share_documents() {
        let mut catalog = DocumentCatalog::new();
        catalog.set_context_xml("<r><v>7</v></r>").unwrap();
        let a = catalog.new_context();
        let b = catalog.new_context();
        // Same underlying document: the root handles compare as the
        // same node across both contexts.
        match (a.context_item().unwrap(), b.context_item().unwrap()) {
            (xqa_xdm::Item::Node(na), xqa_xdm::Item::Node(nb)) => {
                assert!(na.is_same_node(nb));
            }
            other => panic!("unexpected context items {other:?}"),
        }
    }
}
