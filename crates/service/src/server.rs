//! The HTTP server: an acceptor thread feeding a worker pool whose
//! jobs are whole *connections* (HTTP/1.1 keep-alive request loops),
//! one fresh evaluation context per request.
//!
//! ```text
//! POST /query               body = query text -> 200 chunked serialized sequence
//!                                                400 {"error":{"kind":...,"message":...}}
//! POST /query?stream=false  -> 200 buffered (Content-Length) response
//! POST /query?profile=true  -> 200 {"request_id":...,"result":...,"stats":...,"profile":...}
//! GET  /healthz             -> 200 "ok"
//! GET  /metrics             -> 200 Prometheus-style text
//! GET  /debug/queries       -> 200 flight-recorder ring, newest first
//! GET  /debug/query/<id>    -> 200 one full record (spans, stats, compile trace)
//! GET  /debug/plans         -> 200 per-plan-fingerprint aggregates
//! ```
//!
//! **Connection lifecycle.** The acceptor asks the [`Admission`] layer
//! before dispatching: connections past the `workers + max_queue`
//! bound or the per-client quota are shed inline with `429` +
//! `Retry-After`. Admitted connections run a keep-alive loop: up to
//! `max_requests_per_conn` requests are served per socket, waiting up
//! to `idle_timeout` for each next request and `read_timeout` per read
//! once one starts (an expired mid-request deadline answers `408` and
//! closes; an idle expiry or clean client EOF closes silently).
//! `Connection: close` and HTTP/1.0 semantics are honored and echoed.
//!
//! **Streaming.** Plain `POST /query` over HTTP/1.1 streams the result
//! as `Transfer-Encoding: chunked`, serializing each pipeline batch as
//! it is pulled ([`PreparedQuery::run_serialized`]). An error before
//! the first result byte still produces an ordinary `400` JSON
//! response; an error after bytes have left truncates the chunked body
//! (no terminal chunk) and closes the connection, which is HTTP's
//! mid-stream failure signal. `?stream=false`, `?profile=true` and
//! HTTP/1.0 requests buffer as before.
//!
//! [`PreparedQuery::run_serialized`]: xqa_engine::PreparedQuery::run_serialized
//!
//! Every request gets its own [`DynamicContext`] built from the shared
//! [`DocumentCatalog`] (cheap: documents are parsed once at startup and
//! handed out as `Arc` clones), so per-request [`EvalStats`] and
//! operator profiles never interleave between concurrent requests.
//! Completed requests fold their stats snapshot into a service-wide
//! totals block that `/metrics` reads. Plans come from the LRU
//! [`PlanCache`]; rewrite-fired counters bump only on cache misses so
//! one compilation is counted exactly once. Every response carries an
//! `X-Request-Id` header — the client's own, when it sent one — and
//! queries slower than the configured threshold land in a slow-query
//! log on stderr. Completed requests also deposit a record in the
//! [`FlightRecorder`] behind the `/debug/*` endpoints: plan
//! fingerprint, latency, stats, span timeline and the worst
//! cardinality misestimate, aggregated per plan shape.
//!
//! [`EvalStats`]: xqa_engine::EvalStats
//! [`DynamicContext`]: xqa_engine::DynamicContext

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use xqa_engine::{
    Engine, EngineOptions, EvalStats, EvalStatsSnapshot, MonotonicClock, OpKind, QueryProfile,
    RewriteKind, TraceRing, Tracer,
};
use xqa_xmlparse::serialize_sequence;

use crate::admission::{Admission, AdmissionGuard, ShedReason};
use crate::cache::PlanCache;
use crate::catalog::DocumentCatalog;
use crate::flight::{self, FlightRecord, FlightRecorder};
use crate::http::{self, Request, RequestError};
use crate::metrics::Metrics;
use crate::pool::ThreadPool;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Maximum number of cached prepared plans.
    pub plan_cache_capacity: usize,
    /// Options for the engine compiling every query.
    pub engine_options: EngineOptions,
    /// Per-read deadline once a request has started arriving (keeps a
    /// slow-loris client from pinning a worker; expiry answers `408`).
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served per connection before the server closes it
    /// (bounds how long one socket can monopolize a worker).
    pub max_requests_per_conn: usize,
    /// Admitted connections allowed to wait for a worker beyond the
    /// workers themselves; excess connections are shed with `429`.
    pub max_queue: usize,
    /// Admitted connections allowed per client IP at once.
    pub max_inflight_per_client: usize,
    /// Log queries slower than this many milliseconds to stderr
    /// (`None` disables the slow-query log).
    pub slow_query_ms: Option<u64>,
    /// Completed-query records retained by the flight recorder
    /// (`0` disables recording).
    pub flight_recorder_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            plan_cache_capacity: 128,
            engine_options: EngineOptions::default(),
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            max_queue: 128,
            max_inflight_per_client: 64,
            slow_query_ms: None,
            flight_recorder_capacity: 256,
        }
    }
}

/// State shared by the acceptor and every worker.
struct Shared {
    engine: Engine,
    cache: PlanCache,
    catalog: DocumentCatalog,
    metrics: Metrics,
    /// Evaluation counters folded in from per-request snapshots.
    totals: EvalStats,
    /// Tuples emitted per operator kind, indexed by [`OpKind::ALL`]
    /// position, summed from per-request profiles.
    op_tuples: [AtomicU64; OpKind::ALL.len()],
    /// Compilations in which each rewrite fired, indexed by
    /// [`RewriteKind::ALL`] position (cache misses only).
    rewrites_fired: [AtomicU64; RewriteKind::ALL.len()],
    next_request_id: AtomicU64,
    /// The always-on flight recorder behind the `/debug/*` endpoints.
    flight: FlightRecorder,
    /// One process-lifetime clock stamps every trace event so compile
    /// timelines from different requests are comparable.
    trace_clock: Arc<MonotonicClock>,
    slow_query_ms: Option<u64>,
    /// Resolved intra-query parallelism (the `threads` engine option
    /// after defaulting), exported on `/metrics`.
    query_threads: usize,
    pool: ThreadPool,
    started: Instant,
    /// Bounded admission + per-client quotas (see [`Admission`]).
    admission: Arc<Admission>,
    read_timeout: Duration,
    idle_timeout: Duration,
    max_requests_per_conn: usize,
}

/// A running query service bound to a TCP address.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Mutex<Option<thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.shared.pool.size())
            .finish()
    }
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port), build the shared
    /// context from `catalog`, spawn the worker pool and the acceptor.
    pub fn start(
        addr: &str,
        catalog: &DocumentCatalog,
        config: ServiceConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            config.workers
        };
        // Index the server's copy of the catalog so every request
        // context carries document stores, and hand the derived
        // statistics to the engine for plan-time access-path decisions
        // (the statistics version also keys the plan cache).
        let mut catalog = catalog.clone();
        let statistics = catalog.build_indexes();
        let shared = Arc::new(Shared {
            engine: Engine::with_options(config.engine_options).with_statistics(statistics),
            cache: PlanCache::new(config.plan_cache_capacity),
            catalog,
            metrics: Metrics::new(),
            totals: EvalStats::default(),
            op_tuples: std::array::from_fn(|_| AtomicU64::new(0)),
            rewrites_fired: std::array::from_fn(|_| AtomicU64::new(0)),
            next_request_id: AtomicU64::new(0),
            flight: FlightRecorder::new(config.flight_recorder_capacity),
            trace_clock: Arc::new(MonotonicClock::new()),
            slow_query_ms: config.slow_query_ms,
            query_threads: xqa_engine::resolve_threads(config.engine_options.threads),
            pool: ThreadPool::new("xqa-worker", workers),
            started: Instant::now(),
            admission: Admission::new(workers, config.max_queue, config.max_inflight_per_client),
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
            max_requests_per_conn: config.max_requests_per_conn.max(1),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("xqa-acceptor".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let peer = stream.peer_addr().ok().map(|a| a.ip());
                        match shared.admission.try_admit(peer) {
                            Ok(guard) => {
                                let conn_shared = Arc::clone(&shared);
                                shared.pool.execute(move || {
                                    handle_connection(stream, &conn_shared, guard)
                                });
                            }
                            Err(reason) => shed_connection(stream, reason, &shared),
                        }
                    }
                })?
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Mutex::new(Some(acceptor)),
            stop,
        })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// join every thread. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self
            .acceptor
            .lock()
            .expect("acceptor handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shed a connection the admission layer refused: an inline `429`
/// written from the acceptor thread (cheap — no query work, one small
/// buffered write), then close.
fn shed_connection(mut stream: TcpStream, reason: ShedReason, shared: &Shared) {
    // Never let a dead client block the acceptor.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = match reason {
        ShedReason::QueueFull => "server overloaded, retry later\n",
        ShedReason::ClientQuota => "per-client connection quota exceeded, retry later\n",
    };
    let _ = http::write_response_with_headers(
        &mut stream,
        429,
        "text/plain; charset=utf-8",
        &[("Retry-After", "1")],
        body.as_bytes(),
        false,
    );
    let _ = shared; // shed count lives in Admission::try_admit
}

/// The per-connection keep-alive loop (one pool job per connection):
/// serve requests off the socket until the client closes, asks to
/// close, times out, errors, or hits the per-connection request cap.
fn handle_connection(mut stream: TcpStream, shared: &Shared, mut guard: AdmissionGuard) {
    guard.mark_running();
    // Small pipelined responses should not wait on Nagle.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    for served in 0..shared.max_requests_per_conn {
        // Wait for the first byte of the next request under the idle
        // deadline; an idle expiry or clean EOF between requests is the
        // normal end of a keep-alive session.
        let _ = stream.set_read_timeout(Some(shared.idle_timeout));
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF
            Ok(_) => {}       // request bytes waiting
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return; // idle timeout
            }
            Err(_) => return,
        }
        // From here every read of this request runs under the tighter
        // read deadline.
        let _ = stream.set_read_timeout(Some(shared.read_timeout));
        let request = match http::read_request(&mut reader) {
            Ok(request) => request,
            Err(RequestError::Closed) => return,
            Err(RequestError::Timeout) => {
                Metrics::bump(&shared.metrics.request_timeouts);
                respond_text(&mut stream, 408, "request read timed out\n", false);
                return;
            }
            Err(err) => {
                Metrics::bump(&shared.metrics.bad_requests);
                let status = if err == RequestError::TooLarge {
                    413
                } else {
                    400
                };
                respond_text(&mut stream, status, &format!("{err}\n"), false);
                return;
            }
        };
        // The response's connection disposition: what the client asked
        // for, capped by the per-connection request budget.
        let keep_alive =
            request.keep_alive_requested() && served + 1 < shared.max_requests_per_conn;
        if !route(&mut stream, &request, shared, keep_alive) {
            return;
        }
    }
}

/// Dispatch one request. Returns whether the connection may serve
/// another request (`keep_alive`, unless the handler had to abort a
/// stream mid-response).
fn route(stream: &mut TcpStream, request: &Request, shared: &Shared, keep_alive: bool) -> bool {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/query") => return handle_query(stream, request, shared, keep_alive),
        ("GET", "/healthz") => respond_text(stream, 200, "ok\n", keep_alive),
        ("GET", "/metrics") => respond_text(stream, 200, &render_metrics(shared), keep_alive),
        ("GET", "/debug/queries") => {
            respond(
                stream,
                200,
                "application/json",
                shared.flight.recent_json().as_bytes(),
                keep_alive,
            );
        }
        ("GET", "/debug/plans") => {
            respond(
                stream,
                200,
                "application/json",
                shared.flight.plans_json(DEBUG_PLANS_TOP_K).as_bytes(),
                keep_alive,
            );
        }
        ("GET", p) if p.starts_with("/debug/query/") => {
            let id = &p["/debug/query/".len()..];
            match shared.flight.query_json(id) {
                Some(body) => respond(stream, 200, "application/json", body.as_bytes(), keep_alive),
                None => {
                    Metrics::bump(&shared.metrics.not_found);
                    respond_text(stream, 404, "no such request id\n", keep_alive);
                }
            }
        }
        (_, "/query" | "/healthz" | "/metrics" | "/debug/queries" | "/debug/plans") => {
            Metrics::bump(&shared.metrics.not_found);
            respond_text(stream, 405, "method not allowed\n", keep_alive);
        }
        _ => {
            Metrics::bump(&shared.metrics.not_found);
            respond_text(stream, 404, "not found\n", keep_alive);
        }
    }
    keep_alive
}

/// How many per-fingerprint aggregates `GET /debug/plans` returns.
const DEBUG_PLANS_TOP_K: usize = 20;

/// The client's `X-Request-Id`, when one arrived and is sane
/// (non-empty, bounded, no control characters — it is echoed inside a
/// response header). `None` means "generate one".
fn client_request_id(request: &Request) -> Option<String> {
    const MAX_ID_CHARS: usize = 128;
    let id = request.header("x-request-id")?;
    let sane = !id.is_empty()
        && id.chars().count() <= MAX_ID_CHARS
        && id.chars().all(|c| (c as u32) >= 0x20 && c != '\u{7f}');
    sane.then(|| id.to_string())
}

/// What a successful query evaluation hands back to the response path.
/// `body` is `None` when the response already streamed out chunk by
/// chunk (nothing left to write).
struct QueryOutcome {
    body: Option<String>,
    stats: EvalStatsSnapshot,
    profile: QueryProfile,
    query: String,
    streamed: bool,
}

/// How a query request failed, split by how much of the response had
/// already reached the wire.
enum QueryFailure {
    /// Failed before any response byte: an ordinary `400` follows.
    Early { kind: String, message: String },
    /// The engine failed after response bytes streamed out: the chunked
    /// body was truncated (no terminal chunk) and the connection closes.
    MidStream { message: String, items: u64 },
    /// The socket write failed mid-stream (client hung up).
    Sink { message: String },
}

impl QueryFailure {
    fn early(kind: &str, message: impl Into<String>) -> QueryFailure {
        QueryFailure::Early {
            kind: kind.to_string(),
            message: message.into(),
        }
    }
}

/// Fold one finished run's stats and profile into the service totals.
fn snapshot_run(
    shared: &Shared,
    ctx: &mut xqa_engine::DynamicContext,
) -> (EvalStatsSnapshot, QueryProfile) {
    let stats = ctx.stats.snapshot();
    shared.totals.add_snapshot(&stats);
    let profile = ctx.take_profile().unwrap_or_default();
    for pipeline in &profile.pipelines {
        for op in &pipeline.ops {
            if let Some(i) = OpKind::ALL.iter().position(|k| *k == op.kind) {
                shared.op_tuples[i].fetch_add(op.tuples_out, Ordering::Relaxed);
            }
        }
    }
    (stats, profile)
}

/// Serve one `POST /query`. Returns whether the connection may serve
/// another request (false after a truncated stream).
fn handle_query(
    stream: &mut TcpStream,
    request: &Request,
    shared: &Shared,
    keep_alive: bool,
) -> bool {
    let start = Instant::now();
    // One counter draw per request: it is the trace query id, and the
    // response's request id when the client did not supply one.
    let seq = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let request_id = client_request_id(request).unwrap_or_else(|| seq.to_string());
    Metrics::bump(&shared.metrics.query_requests);
    let want_profile = matches!(
        http::query_param(&request.target, "profile"),
        Some("true") | Some("1")
    );
    // Stream unless the client opted out, asked for the profile
    // envelope, or speaks HTTP/1.0 (chunked framing needs 1.1).
    let want_stream = request.minor_version >= 1
        && !want_profile
        && http::query_param(&request.target, "stream") != Some("false");
    // Compile-phase trace events are collected per request (only cache
    // misses emit any) and retired into the flight record.
    let trace_ring = shared
        .flight
        .enabled()
        .then(|| Arc::new(TraceRing::new(64)));
    let tracer = trace_ring.as_ref().map(|ring| {
        Tracer::new(
            seq,
            Arc::clone(&shared.trace_clock) as _,
            Arc::clone(ring) as _,
        )
    });
    // (fingerprint, served-from-cache) once the plan exists — survives
    // into the flight record even when the run itself fails.
    let mut plan_meta: Option<(u64, bool)> = None;
    // Rewrite kinds recorded on the plan (cache hits included): a
    // property of the plan shape, retained by the flight recorder.
    let mut plan_rewrites: Vec<String> = Vec::new();
    let id_header: [(&str, &str); 1] = [("X-Request-Id", &request_id)];
    let outcome: Result<QueryOutcome, QueryFailure> = (|| {
        let query = std::str::from_utf8(&request.body)
            .map_err(|_| QueryFailure::early("body", "query text must be UTF-8"))?;
        let (plan, compiled_now) = shared
            .cache
            .get_or_compile_traced(&shared.engine, query, tracer.as_ref())
            .map_err(|e| QueryFailure::early("compile", e.to_string()))?;
        plan_meta = Some((plan.fingerprint(), !compiled_now));
        for note in plan.applied_rewrites() {
            let kind = note.kind.as_str().to_string();
            if !plan_rewrites.contains(&kind) {
                plan_rewrites.push(kind);
            }
        }
        if compiled_now {
            // Count each rewrite once per compilation, not per request:
            // cache hits reuse the plan without re-firing anything.
            for note in plan.applied_rewrites() {
                if let Some(i) = RewriteKind::ALL.iter().position(|k| *k == note.kind) {
                    shared.rewrites_fired[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Fresh context per request: stats and the operator profile
        // belong to this request alone, then fold into the totals.
        let mut ctx = shared.catalog.new_context();
        ctx.enable_profiling();
        if want_stream {
            // Chunked streaming: the response head goes out lazily with
            // the first serialized batch, so an engine error before the
            // first result byte still becomes an ordinary 400.
            let mut head_written = false;
            let run = plan.run_serialized(&ctx, &mut |chunk: &str| {
                if !head_written {
                    http::write_chunked_head(
                        stream,
                        200,
                        "application/xml; charset=utf-8",
                        &id_header,
                        keep_alive,
                    )?;
                    head_written = true;
                }
                http::write_chunk(stream, chunk.as_bytes())
            });
            match run {
                Ok(_) => {
                    // An empty result still owes the client its head.
                    let finish = if head_written {
                        http::finish_chunked(stream)
                    } else {
                        http::write_chunked_head(
                            stream,
                            200,
                            "application/xml; charset=utf-8",
                            &id_header,
                            keep_alive,
                        )
                        .and_then(|()| http::finish_chunked(stream))
                    };
                    if let Err(e) = finish {
                        return Err(QueryFailure::Sink {
                            message: e.to_string(),
                        });
                    }
                    let (stats, profile) = snapshot_run(shared, &mut ctx);
                    Ok(QueryOutcome {
                        body: None,
                        stats,
                        profile,
                        query: query.to_string(),
                        streamed: true,
                    })
                }
                Err(xqa_engine::StreamError::BeforeFirstItem(e)) => {
                    Err(QueryFailure::early("runtime", e.to_string()))
                }
                Err(xqa_engine::StreamError::MidStream {
                    error,
                    items_emitted,
                }) => Err(QueryFailure::MidStream {
                    message: error.to_string(),
                    items: items_emitted,
                }),
                Err(xqa_engine::StreamError::Sink { error, .. }) => Err(QueryFailure::Sink {
                    message: error.to_string(),
                }),
            }
        } else {
            let result = plan
                .run(&ctx)
                .map_err(|e| QueryFailure::early("runtime", e.to_string()))?;
            let (stats, profile) = snapshot_run(shared, &mut ctx);
            Ok(QueryOutcome {
                body: Some(serialize_sequence(&result)),
                stats,
                profile,
                query: query.to_string(),
                streamed: false,
            })
        }
    })();
    let elapsed = start.elapsed();
    shared.metrics.query_latency.record(elapsed);
    if shared.flight.enabled() {
        let trace_json = trace_ring
            .as_ref()
            .map_or_else(|| "[]".to_string(), |r| r.to_json());
        let record = match &outcome {
            Ok(o) => FlightRecord {
                request_id: request_id.clone(),
                fingerprint: plan_meta.map(|(fp, _)| fp),
                query: flight::truncate_query(&o.query),
                ok: true,
                error: None,
                cached_plan: plan_meta.is_some_and(|(_, cached)| cached),
                streamed: o.streamed,
                latency_us: elapsed.as_micros() as u64,
                tuples: o.stats.tuples_produced,
                worst_q_error: o.profile.worst_misestimate().map(|m| m.q_error),
                stats_json: Some(o.stats.to_json()),
                profile_json: Some(o.profile.to_json()),
                trace_json,
                rewrites: plan_rewrites.clone(),
            },
            Err(failure) => {
                let (error, streamed, tuples) = match failure {
                    QueryFailure::Early { kind, message } => {
                        (format!("{kind}: {message}"), false, 0)
                    }
                    QueryFailure::MidStream { message, items } => {
                        (format!("runtime (mid-stream): {message}"), true, *items)
                    }
                    QueryFailure::Sink { message } => (format!("sink: {message}"), true, 0),
                };
                FlightRecord {
                    request_id: request_id.clone(),
                    fingerprint: plan_meta.map(|(fp, _)| fp),
                    query: flight::truncate_query(&String::from_utf8_lossy(&request.body)),
                    ok: false,
                    error: Some(error),
                    cached_plan: plan_meta.is_some_and(|(_, cached)| cached),
                    streamed,
                    latency_us: elapsed.as_micros() as u64,
                    tuples,
                    worst_q_error: None,
                    stats_json: None,
                    profile_json: None,
                    trace_json,
                    rewrites: plan_rewrites.clone(),
                }
            }
        };
        shared.flight.record(record);
    }
    let id_json = http::json_escape(&request_id);
    match outcome {
        Ok(outcome) => {
            Metrics::bump(&shared.metrics.query_ok);
            if outcome.streamed {
                Metrics::bump(&shared.metrics.streamed_responses);
            }
            if let Some(threshold_ms) = shared.slow_query_ms {
                let ms = elapsed.as_millis() as u64;
                if ms >= threshold_ms {
                    eprintln!(
                        "[xqa-service] slow query #{request_id}: {ms}ms (threshold {threshold_ms}ms) \
                         tuples_produced={} query={}",
                        outcome.stats.tuples_produced,
                        truncate_for_log(&outcome.query),
                    );
                }
            }
            match outcome.body {
                // Already streamed out chunk by chunk; nothing to write.
                None => keep_alive,
                Some(body) if want_profile => {
                    let body = format!(
                        "{{\"request_id\":\"{id_json}\",\"result\":\"{}\",\"stats\":{},\"profile\":{}}}",
                        http::json_escape(&body),
                        outcome.stats.to_json(),
                        outcome.profile.to_json()
                    );
                    respond_with(
                        stream,
                        200,
                        "application/json",
                        &id_header,
                        body.as_bytes(),
                        keep_alive,
                    );
                    keep_alive
                }
                Some(body) => {
                    respond_with(
                        stream,
                        200,
                        "application/xml; charset=utf-8",
                        &id_header,
                        body.as_bytes(),
                        keep_alive,
                    );
                    keep_alive
                }
            }
        }
        Err(QueryFailure::Early { kind, message }) => {
            Metrics::bump(&shared.metrics.query_errors);
            let body = format!(
                "{{\"request_id\":\"{id_json}\",\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
                http::json_escape(&kind),
                http::json_escape(&message)
            );
            respond_with(
                stream,
                400,
                "application/json",
                &id_header,
                body.as_bytes(),
                keep_alive,
            );
            keep_alive
        }
        Err(QueryFailure::MidStream { message, items }) => {
            // Response bytes already left: truncate the chunked body
            // (no terminal chunk) and close so the client sees the
            // failure instead of a silently short result.
            Metrics::bump(&shared.metrics.query_errors);
            Metrics::bump(&shared.metrics.mid_stream_aborts);
            eprintln!(
                "[xqa-service] query #{request_id} failed mid-stream after {items} items: {message}"
            );
            false
        }
        Err(QueryFailure::Sink { .. }) => {
            // The client hung up (or the socket died); nothing to send.
            Metrics::bump(&shared.metrics.mid_stream_aborts);
            false
        }
    }
}

/// One log-friendly line of query text (whitespace collapsed, capped).
fn truncate_for_log(query: &str) -> String {
    const MAX: usize = 120;
    let mut flat: String = query.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.chars().count() > MAX {
        flat = flat.chars().take(MAX).collect::<String>() + "...";
    }
    flat
}

/// Render the Prometheus-style metrics page.
fn render_metrics(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let m = &shared.metrics;
    let stats = shared.totals.snapshot();
    let mut out = String::with_capacity(1024);
    let mut line = |name: &str, value: u64| {
        let _ = writeln!(&mut out, "{name} {value}");
    };
    line("xqa_uptime_seconds", shared.started.elapsed().as_secs());
    line("xqa_workers", shared.pool.size() as u64);
    line("xqa_query_threads", shared.query_threads as u64);
    line("xqa_worker_panics_total", shared.pool.panic_count());
    line("xqa_query_requests_total", Metrics::read(&m.query_requests));
    line("xqa_query_ok_total", Metrics::read(&m.query_ok));
    line("xqa_query_errors_total", Metrics::read(&m.query_errors));
    line("xqa_bad_requests_total", Metrics::read(&m.bad_requests));
    line("xqa_not_found_total", Metrics::read(&m.not_found));
    line("xqa_plan_cache_size", shared.cache.len() as u64);
    line("xqa_plan_cache_capacity", shared.cache.capacity() as u64);
    line("xqa_plan_cache_hits_total", shared.cache.hits());
    line("xqa_plan_cache_misses_total", shared.cache.misses());
    line("xqa_eval_nodes_visited_total", stats.nodes_visited);
    line("xqa_eval_tuples_grouped_total", stats.tuples_grouped);
    line("xqa_eval_groups_emitted_total", stats.groups_emitted);
    line("xqa_eval_comparisons_total", stats.comparisons);
    line("xqa_eval_tuples_produced_total", stats.tuples_produced);
    line(
        "xqa_eval_tuples_pruned_filter_total",
        stats.tuples_pruned_filter,
    );
    line(
        "xqa_eval_tuples_pruned_topk_total",
        stats.tuples_pruned_topk,
    );
    line("xqa_eval_seq_items_copied_total", stats.seq_items_copied);
    line("xqa_eval_seq_clones_shared_total", stats.seq_clones_shared);
    line(
        "xqa_catalog_documents",
        shared.catalog.indexed_document_count() as u64,
    );
    line("xqa_catalog_version", shared.catalog.version());
    line("xqa_storage_index_bytes", shared.catalog.index_bytes());
    line("xqa_scan_index_hits_total", stats.scan_index_hits);
    line("xqa_scan_index_tuples_total", stats.scan_index_tuples);
    line("xqa_scan_walk_tuples_total", stats.scan_walk_tuples);
    line("xqa_eval_expr_compiled_total", stats.expr_compiled);
    line("xqa_eval_expr_fallback_total", stats.expr_fallback);
    line("xqa_join_hash_total", stats.join_hash_probes);
    line("xqa_join_build_tuples_total", stats.join_build_tuples);
    line(
        "xqa_http_connections_active",
        shared.admission.active_connections() as u64,
    );
    line(
        "xqa_admission_queue_depth",
        shared.admission.queue_depth() as u64,
    );
    line("xqa_requests_shed_total", shared.admission.shed_total());
    line(
        "xqa_request_timeouts_total",
        Metrics::read(&m.request_timeouts),
    );
    line(
        "xqa_streamed_responses_total",
        Metrics::read(&m.streamed_responses),
    );
    line(
        "xqa_mid_stream_aborts_total",
        Metrics::read(&m.mid_stream_aborts),
    );
    line("xqa_flight_records", shared.flight.len() as u64);
    line(
        "xqa_plan_fingerprints",
        shared.flight.fingerprint_count() as u64,
    );
    for (i, kind) in OpKind::ALL.iter().enumerate() {
        let _ = writeln!(
            &mut out,
            "xqa_op_tuples_total{{op=\"{}\"}} {}",
            kind.as_str(),
            shared.op_tuples[i].load(Ordering::Relaxed)
        );
    }
    for (i, kind) in RewriteKind::ALL.iter().enumerate() {
        let _ = writeln!(
            &mut out,
            "xqa_rewrite_fired_total{{rewrite=\"{}\"}} {}",
            kind.as_str(),
            shared.rewrites_fired[i].load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(
        &mut out,
        "xqa_cardinality_qerror_max {:.4}",
        shared.flight.max_q_error()
    );
    let _ = writeln!(
        &mut out,
        "xqa_plan_cache_hit_rate {:.4}",
        shared.cache.hit_rate()
    );
    for q in [0.5, 0.95, 0.99] {
        let _ = writeln!(
            &mut out,
            "xqa_query_latency_quantile_us{{quantile=\"{q}\"}} {}",
            m.query_latency.quantile_us(q)
        );
    }
    let _ = writeln!(
        &mut out,
        "# HELP xqa_query_latency_us End-to-end query latency (receipt to serialized response)."
    );
    let _ = writeln!(&mut out, "# TYPE xqa_query_latency_us histogram");
    m.query_latency.render(&mut out, "xqa_query_latency_us");
    out
}

fn respond_text(stream: &mut impl Write, status: u16, body: &str, keep_alive: bool) {
    respond(
        stream,
        status,
        "text/plain; charset=utf-8",
        body.as_bytes(),
        keep_alive,
    );
}

fn respond(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) {
    respond_with(stream, status, content_type, &[], body, keep_alive);
}

fn respond_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) {
    // The client may already be gone; nothing useful to do about it.
    let _ = http::write_response_with_headers(
        stream,
        status,
        content_type,
        extra_headers,
        body,
        keep_alive,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// Reassemble a chunked transfer-encoded body into its payload.
    pub(crate) fn dechunk(body: &str) -> String {
        let mut out = String::new();
        let mut rest = body;
        while let Some((size_line, after)) = rest.split_once("\r\n") {
            let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
                break;
            };
            if size == 0 {
                break;
            }
            out.push_str(&after[..size]);
            rest = &after[size + 2..]; // skip the chunk's trailing CRLF
        }
        out
    }

    /// Blocking one-shot HTTP client for tests. The raw request should
    /// ask for `Connection: close` so `read_to_string` terminates;
    /// chunked bodies are reassembled transparently.
    pub(crate) fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_string(), b.to_string()))
            .unwrap_or_default();
        let body = if head
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
        {
            dechunk(&body)
        } else {
            body
        };
        (status, body)
    }

    pub(crate) fn post_query(addr: SocketAddr, query: &str) -> (u16, String) {
        request(
            addr,
            &format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
                query.len(),
                query
            ),
        )
    }

    pub(crate) fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    fn test_server() -> Server {
        let mut catalog = DocumentCatalog::new();
        catalog
            .set_context_xml("<r><v>1</v><v>2</v><v>3</v></r>")
            .unwrap();
        let config = ServiceConfig {
            workers: 2,
            ..Default::default()
        };
        Server::start("127.0.0.1:0", &catalog, config).expect("bind")
    }

    #[test]
    fn healthz_answers_ok() {
        let server = test_server();
        assert_eq!(
            get(server.local_addr(), "/healthz"),
            (200, "ok\n".to_string())
        );
        server.shutdown();
    }

    #[test]
    fn query_endpoint_evaluates_against_the_catalog() {
        let server = test_server();
        let (status, body) = post_query(server.local_addr(), "sum(//v)");
        assert_eq!((status, body.as_str()), (200, "6"));
        server.shutdown();
    }

    #[test]
    fn compile_and_runtime_errors_are_structured() {
        let server = test_server();
        let (status, body) = post_query(server.local_addr(), "for $x in");
        assert_eq!(status, 400);
        assert!(body.contains("\"kind\":\"compile\""), "{body}");
        let (status, body) = post_query(server.local_addr(), "$undefined");
        assert_eq!(status, 400);
        assert!(body.contains("\"error\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let server = test_server();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/query").0, 405);
        assert_eq!(request(addr, "BROKEN\r\n\r\n").0, 400);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_runs_on_drop() {
        let server = test_server();
        server.shutdown();
        server.shutdown();
        drop(server);
    }

    /// One-shot POST with extra headers, returning the raw response
    /// (status line + headers + body) for header assertions.
    fn post_query_raw_response(addr: SocketAddr, query: &str, extra: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let raw = format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{extra}Content-Length: {}\r\n\r\n{}",
            query.len(),
            query
        );
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn client_request_ids_are_echoed_on_success_and_error() {
        let server = test_server();
        let addr = server.local_addr();
        let ok = post_query_raw_response(addr, "sum(//v)", "X-Request-Id: trace-me-42\r\n");
        assert!(ok.contains("X-Request-Id: trace-me-42\r\n"), "{ok}");
        let err = post_query_raw_response(addr, "for $x in", "X-Request-Id: trace-me-43\r\n");
        assert!(err.contains("X-Request-Id: trace-me-43\r\n"), "{err}");
        assert!(err.contains("\"request_id\":\"trace-me-43\""), "{err}");
        // An unusable id (empty) falls back to a generated one.
        let gen = post_query_raw_response(addr, "sum(//v)", "X-Request-Id:\r\n");
        assert!(!gen.contains("X-Request-Id: \r\n"), "{gen}");
        assert!(gen.contains("X-Request-Id: "), "{gen}");
        server.shutdown();
    }

    #[test]
    fn debug_endpoints_expose_the_flight_recorder() {
        let server = test_server();
        let addr = server.local_addr();
        let raw = post_query_raw_response(addr, "sum(//v)", "X-Request-Id: fr-1\r\n");
        assert!(raw.contains("X-Request-Id: fr-1"), "{raw}");

        let (status, body) = get(addr, "/debug/queries");
        assert_eq!(status, 200);
        assert!(body.contains("\"request_id\":\"fr-1\""), "{body}");
        assert!(body.contains("\"ok\":true"), "{body}");
        assert!(body.contains("\"fingerprint\":\""), "{body}");

        let (status, full) = get(addr, "/debug/query/fr-1");
        assert_eq!(status, 200);
        assert!(full.contains("\"profile\":{"), "{full}");
        assert!(full.contains("\"spans\":["), "{full}");
        // First request for this plan shape: compiled now, so the
        // compile-phase trace events from PR 3's tracer are retained.
        assert!(full.contains("\"cached_plan\":false"), "{full}");
        assert!(full.contains("\"phase\":\"parse\""), "{full}");
        assert!(full.contains("\"phase\":\"compile\""), "{full}");

        // Re-running the same query hits the plan cache: same
        // fingerprint, no compile events this time.
        let _ = post_query_raw_response(addr, "sum(//v)", "X-Request-Id: fr-2\r\n");
        let (_, cached) = get(addr, "/debug/query/fr-2");
        assert!(cached.contains("\"cached_plan\":true"), "{cached}");
        assert!(!cached.contains("\"phase\":\"parse\""), "{cached}");

        let (status, plans) = get(addr, "/debug/plans");
        assert_eq!(status, 200);
        assert!(plans.contains("\"fingerprints\":1"), "{plans}");
        assert!(plans.contains("\"count\":2"), "{plans}");

        assert_eq!(get(addr, "/debug/query/never-seen").0, 404);
        assert_eq!(post_query(addr, "1").0, 200); // POST /debug 405 check below
        let (status, _) = request(
            addr,
            "POST /debug/queries HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn failed_queries_are_recorded_too() {
        let server = test_server();
        let addr = server.local_addr();
        let _ = post_query_raw_response(addr, "for $x in", "X-Request-Id: boom\r\n");
        let (status, full) = get(addr, "/debug/query/boom");
        assert_eq!(status, 200);
        assert!(full.contains("\"ok\":false"), "{full}");
        assert!(full.contains("\"fingerprint\":null"), "{full}");
        assert!(full.contains("\"error\":\"compile:"), "{full}");
        server.shutdown();
    }

    #[test]
    fn metrics_export_flight_recorder_gauges() {
        let server = test_server();
        let addr = server.local_addr();
        let _ = post_query(addr, "sum(//v)");
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("xqa_flight_records 1"), "{body}");
        assert!(body.contains("xqa_plan_fingerprints 1"), "{body}");
        assert!(body.contains("xqa_cardinality_qerror_max "), "{body}");
        server.shutdown();
    }

    #[test]
    fn join_queries_move_the_join_metrics_and_surface_rewrites() {
        // The server compiles with catalog statistics, so the default
        // Auto join mode unnests this joinable self-join shape.
        let server = test_server();
        let addr = server.local_addr();
        let query = "for $m in distinct-values(//v) \
                     let $hits := for $y in //v where $y = $m return $y \
                     order by string($m) \
                     return count($hits)";
        let raw = post_query_raw_response(addr, query, "X-Request-Id: join-1\r\n");
        assert!(raw.contains("1 1 1"), "{raw}");
        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("xqa_join_hash_total 3"), "{metrics}");
        assert!(
            metrics.contains("xqa_join_build_tuples_total 3"),
            "{metrics}"
        );
        assert!(
            metrics.contains("xqa_rewrite_fired_total{rewrite=\"join-unnest\"} 1"),
            "{metrics}"
        );
        // The record and the per-plan aggregate both carry the fired
        // rewrite kinds.
        let (_, full) = get(addr, "/debug/query/join-1");
        assert!(full.contains("\"rewrites\":["), "{full}");
        assert!(full.contains("join-unnest"), "{full}");
        let (_, plans) = get(addr, "/debug/plans");
        assert!(plans.contains("join-unnest"), "{plans}");
        server.shutdown();
    }

    #[test]
    fn recorder_off_serves_empty_debug_payloads() {
        let mut catalog = DocumentCatalog::new();
        catalog.set_context_xml("<r><v>1</v></r>").unwrap();
        let config = ServiceConfig {
            workers: 1,
            flight_recorder_capacity: 0,
            ..Default::default()
        };
        let server = Server::start("127.0.0.1:0", &catalog, config).expect("bind");
        let addr = server.local_addr();
        assert_eq!(post_query(addr, "sum(//v)").0, 200);
        let (status, body) = get(addr, "/debug/queries");
        assert_eq!(status, 200);
        assert!(body.contains("\"records\":[]"), "{body}");
        assert_eq!(get(addr, "/debug/query/1").0, 404);
        server.shutdown();
    }
}
