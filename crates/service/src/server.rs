//! The HTTP server: an acceptor thread feeding a worker pool, all over
//! one shared catalog context.
//!
//! ```text
//! POST /query    body = query text -> 200 serialized sequence
//!                                     400 {"error":{"kind":...,"message":...}}
//! GET  /healthz  -> 200 "ok"
//! GET  /metrics  -> 200 Prometheus-style text
//! ```
//!
//! One [`DynamicContext`] is built from the catalog at startup and
//! shared by every worker — documents are parsed exactly once, plans
//! come from the LRU [`PlanCache`], and [`EvalStats`] aggregate across
//! requests via their relaxed atomics.
//!
//! [`EvalStats`]: xqa_engine::EvalStats

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use xqa_engine::{DynamicContext, Engine, EngineOptions};
use xqa_xmlparse::serialize_sequence;

use crate::cache::PlanCache;
use crate::catalog::DocumentCatalog;
use crate::http::{self, Request, RequestError};
use crate::metrics::Metrics;
use crate::pool::ThreadPool;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Maximum number of cached prepared plans.
    pub plan_cache_capacity: usize,
    /// Options for the engine compiling every query.
    pub engine_options: EngineOptions,
    /// Per-connection read timeout (keeps slow clients from pinning a
    /// worker).
    pub read_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            plan_cache_capacity: 128,
            engine_options: EngineOptions::default(),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// State shared by the acceptor and every worker.
struct Shared {
    engine: Engine,
    cache: PlanCache,
    ctx: DynamicContext,
    metrics: Metrics,
    pool: ThreadPool,
    started: Instant,
    read_timeout: Duration,
}

/// A running query service bound to a TCP address.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Mutex<Option<thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.shared.pool.size())
            .finish()
    }
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port), build the shared
    /// context from `catalog`, spawn the worker pool and the acceptor.
    pub fn start(
        addr: &str,
        catalog: &DocumentCatalog,
        config: ServiceConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            engine: Engine::with_options(config.engine_options),
            cache: PlanCache::new(config.plan_cache_capacity),
            ctx: catalog.new_context(),
            metrics: Metrics::new(),
            pool: ThreadPool::new("xqa-worker", workers),
            started: Instant::now(),
            read_timeout: config.read_timeout,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("xqa-acceptor".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let conn_shared = Arc::clone(&shared);
                        shared
                            .pool
                            .execute(move || handle_connection(stream, &conn_shared));
                    }
                })?
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Mutex::new(Some(acceptor)),
            stop,
        })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// join every thread. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self
            .acceptor
            .lock()
            .expect("acceptor handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(err) => {
            Metrics::bump(&shared.metrics.bad_requests);
            let status = if err == RequestError::TooLarge {
                413
            } else {
                400
            };
            respond_text(&mut stream, status, &format!("{err}\n"));
            return;
        }
    };
    route(&mut stream, &request, shared);
}

fn route(stream: &mut TcpStream, request: &Request, shared: &Shared) {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/query") => handle_query(stream, request, shared),
        ("GET", "/healthz") => respond_text(stream, 200, "ok\n"),
        ("GET", "/metrics") => respond_text(stream, 200, &render_metrics(shared)),
        (_, "/query" | "/healthz" | "/metrics") => {
            Metrics::bump(&shared.metrics.not_found);
            respond_text(stream, 405, "method not allowed\n");
        }
        _ => {
            Metrics::bump(&shared.metrics.not_found);
            respond_text(stream, 404, "not found\n");
        }
    }
}

fn handle_query(stream: &mut TcpStream, request: &Request, shared: &Shared) {
    let start = Instant::now();
    Metrics::bump(&shared.metrics.query_requests);
    let outcome = (|| {
        let query = std::str::from_utf8(&request.body)
            .map_err(|_| ("body".to_string(), "query text must be UTF-8".to_string()))?;
        let plan = shared
            .cache
            .get_or_compile(&shared.engine, query)
            .map_err(|e| ("compile".to_string(), e.to_string()))?;
        let result = plan
            .run(&shared.ctx)
            .map_err(|e| ("runtime".to_string(), e.to_string()))?;
        Ok(serialize_sequence(&result))
    })();
    shared.metrics.query_latency.record(start.elapsed());
    match outcome {
        Ok(body) => {
            Metrics::bump(&shared.metrics.query_ok);
            respond(
                stream,
                200,
                "application/xml; charset=utf-8",
                body.as_bytes(),
            );
        }
        Err((kind, message)) => {
            Metrics::bump(&shared.metrics.query_errors);
            let body = format!(
                "{{\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
                http::json_escape(&kind),
                http::json_escape(&message)
            );
            respond(stream, 400, "application/json", body.as_bytes());
        }
    }
}

/// Render the Prometheus-style metrics page.
fn render_metrics(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let m = &shared.metrics;
    let stats = shared.ctx.stats.snapshot();
    let mut out = String::with_capacity(1024);
    let mut line = |name: &str, value: u64| {
        let _ = writeln!(&mut out, "{name} {value}");
    };
    line("xqa_uptime_seconds", shared.started.elapsed().as_secs());
    line("xqa_workers", shared.pool.size() as u64);
    line("xqa_worker_panics_total", shared.pool.panic_count());
    line("xqa_query_requests_total", Metrics::read(&m.query_requests));
    line("xqa_query_ok_total", Metrics::read(&m.query_ok));
    line("xqa_query_errors_total", Metrics::read(&m.query_errors));
    line("xqa_bad_requests_total", Metrics::read(&m.bad_requests));
    line("xqa_not_found_total", Metrics::read(&m.not_found));
    line("xqa_plan_cache_size", shared.cache.len() as u64);
    line("xqa_plan_cache_capacity", shared.cache.capacity() as u64);
    line("xqa_plan_cache_hits_total", shared.cache.hits());
    line("xqa_plan_cache_misses_total", shared.cache.misses());
    line("xqa_eval_nodes_visited_total", stats.nodes_visited);
    line("xqa_eval_tuples_grouped_total", stats.tuples_grouped);
    line("xqa_eval_groups_emitted_total", stats.groups_emitted);
    line("xqa_eval_comparisons_total", stats.comparisons);
    line("xqa_eval_tuples_produced_total", stats.tuples_produced);
    line(
        "xqa_eval_tuples_pruned_filter_total",
        stats.tuples_pruned_filter,
    );
    line(
        "xqa_eval_tuples_pruned_topk_total",
        stats.tuples_pruned_topk,
    );
    let _ = writeln!(
        &mut out,
        "xqa_plan_cache_hit_rate {:.4}",
        shared.cache.hit_rate()
    );
    let _ = writeln!(
        &mut out,
        "xqa_query_latency_mean_us {}",
        m.query_latency.mean_us()
    );
    m.query_latency.render(&mut out, "xqa_query_latency_us");
    out
}

fn respond_text(stream: &mut impl Write, status: u16, body: &str) {
    respond(stream, status, "text/plain; charset=utf-8", body.as_bytes());
}

fn respond(stream: &mut impl Write, status: u16, content_type: &str, body: &[u8]) {
    // The client may already be gone; nothing useful to do about it.
    let _ = http::write_response(stream, status, content_type, body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// Blocking one-shot HTTP client for tests.
    pub(crate) fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    pub(crate) fn post_query(addr: SocketAddr, query: &str) -> (u16, String) {
        request(
            addr,
            &format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                query.len(),
                query
            ),
        )
    }

    pub(crate) fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    fn test_server() -> Server {
        let mut catalog = DocumentCatalog::new();
        catalog
            .set_context_xml("<r><v>1</v><v>2</v><v>3</v></r>")
            .unwrap();
        let config = ServiceConfig {
            workers: 2,
            ..Default::default()
        };
        Server::start("127.0.0.1:0", &catalog, config).expect("bind")
    }

    #[test]
    fn healthz_answers_ok() {
        let server = test_server();
        assert_eq!(
            get(server.local_addr(), "/healthz"),
            (200, "ok\n".to_string())
        );
        server.shutdown();
    }

    #[test]
    fn query_endpoint_evaluates_against_the_catalog() {
        let server = test_server();
        let (status, body) = post_query(server.local_addr(), "sum(//v)");
        assert_eq!((status, body.as_str()), (200, "6"));
        server.shutdown();
    }

    #[test]
    fn compile_and_runtime_errors_are_structured() {
        let server = test_server();
        let (status, body) = post_query(server.local_addr(), "for $x in");
        assert_eq!(status, 400);
        assert!(body.contains("\"kind\":\"compile\""), "{body}");
        let (status, body) = post_query(server.local_addr(), "$undefined");
        assert_eq!(status, 400);
        assert!(body.contains("\"error\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let server = test_server();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/query").0, 405);
        assert_eq!(request(addr, "BROKEN\r\n\r\n").0, 400);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_runs_on_drop() {
        let server = test_server();
        server.shutdown();
        server.shutdown();
        drop(server);
    }
}
