//! Service metrics: request counters and a lock-free latency histogram.
//!
//! Everything is relaxed atomics so recording never blocks a worker and
//! `GET /metrics` reads a consistent-enough snapshot without stopping
//! traffic. Rendering follows the Prometheus text exposition format
//! (cumulative `le` buckets) so the output scrapes cleanly, but there
//! is no dependency on anything beyond `std`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds of the latency buckets, in microseconds.
pub const LATENCY_BOUNDS_US: [u64; 13] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// A fixed-bucket histogram of request latencies.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// One counter per bound plus a final overflow bucket.
    counts: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Estimated latency quantile in microseconds: the upper bound of
    /// the first bucket holding the `q`-th observation (0 when empty;
    /// observations past the last bound clamp to it). Coarse by design —
    /// the resolution is the bucket layout — but monotone in `q` and
    /// cheap enough to serve inline from `/metrics`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            if cumulative >= target {
                return bound;
            }
        }
        LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1]
    }

    /// Append Prometheus-style cumulative buckets named `{name}_bucket`
    /// plus `{name}_sum` / `{name}_count`.
    pub fn render(&self, out: &mut String, name: &str) {
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.counts[LATENCY_BOUNDS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum_us.load(Ordering::Relaxed));
        let _ = writeln!(out, "{name}_count {}", self.count.load(Ordering::Relaxed));
    }
}

/// Aggregated request counters for the whole service.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /query` requests received.
    pub query_requests: AtomicU64,
    /// Query requests that returned a result.
    pub query_ok: AtomicU64,
    /// Query requests rejected (bad body, compile or runtime error).
    pub query_errors: AtomicU64,
    /// Requests for paths/methods the server does not serve.
    pub not_found: AtomicU64,
    /// Connections whose request could not be parsed.
    pub bad_requests: AtomicU64,
    /// Requests answered `408` because a read deadline expired.
    pub request_timeouts: AtomicU64,
    /// Query responses streamed as chunked transfer encoding.
    pub streamed_responses: AtomicU64,
    /// Streamed responses aborted after the first byte (truncated
    /// chunked body, connection closed).
    pub mid_stream_aborts: AtomicU64,
    /// End-to-end query latency (receipt to serialized response).
    pub query_latency: LatencyHistogram,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Relaxed-increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(50)); // <= 100
        h.record(Duration::from_micros(100)); // <= 100 (inclusive bound)
        h.record(Duration::from_micros(101)); // <= 250
        h.record(Duration::from_secs(10)); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.counts[0].load(Ordering::Relaxed), 2);
        assert_eq!(h.counts[1].load(Ordering::Relaxed), 1);
        assert_eq!(h.counts[LATENCY_BOUNDS_US.len()].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn render_is_cumulative_and_ends_at_inf() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(200));
        let mut out = String::new();
        h.render(&mut out, "lat_us");
        assert!(out.contains("lat_us_bucket{le=\"100\"} 1"));
        assert!(out.contains("lat_us_bucket{le=\"250\"} 2"));
        assert!(out.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("lat_us_count 2"));
        assert!(out.contains("lat_us_sum 210"));
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(Duration::from_micros(50)); // bucket le=100
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(40_000)); // bucket le=50000
        }
        assert_eq!(h.quantile_us(0.5), 100);
        assert_eq!(h.quantile_us(0.9), 100);
        assert_eq!(h.quantile_us(0.95), 50_000);
        assert_eq!(h.quantile_us(0.99), 50_000);
    }

    #[test]
    fn every_quantile_of_a_single_sample_is_its_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(300)); // bucket le=500
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 500, "q={q}");
        }
    }

    #[test]
    fn overflow_observations_clamp_to_the_last_bound() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(30));
        assert_eq!(h.quantile_us(0.5), *LATENCY_BOUNDS_US.last().unwrap());
    }

    #[test]
    fn mean_handles_empty_histogram() {
        let h = LatencyHistogram::default();
        assert_eq!(h.mean_us(), 0);
        h.record(Duration::from_micros(30));
        h.record(Duration::from_micros(10));
        assert_eq!(h.mean_us(), 20);
    }
}
