//! The query flight recorder: a bounded in-memory ring of recent
//! query records plus per-plan-fingerprint aggregates.
//!
//! Every completed request — success or error — deposits one
//! [`FlightRecord`] carrying its request id, plan fingerprint, latency,
//! stats snapshot, span timeline and worst cardinality misestimate.
//! The ring keeps the last `capacity` records (oldest evicted first);
//! records for the *same plan shape* additionally fold into a
//! [`PlanAggregate`] keyed by the plan fingerprint, so `/debug/plans`
//! can answer "which plan shapes dominate service time, and how wrong
//! were their cardinality estimates" long after the individual records
//! have been evicted.
//!
//! Recording takes two short `Mutex` sections (ring push, aggregate
//! fold) over pre-rendered strings — no serialization happens under a
//! lock — so the recorder is safe to leave always-on. A capacity of
//! `0` disables it entirely: [`FlightRecorder::record`] returns without
//! touching either lock, which is what the recorder-overhead
//! differential test compares against.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::http::json_escape;
use crate::metrics::LatencyHistogram;

/// Everything the recorder retains about one completed request.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// The request id the response carried (client-supplied or
    /// generated).
    pub request_id: String,
    /// Stable hash of the rewritten plan, `None` when the query never
    /// compiled (and so has no plan shape to aggregate under).
    pub fingerprint: Option<u64>,
    /// The query text, truncated for retention.
    pub query: String,
    /// Whether the request produced a result.
    pub ok: bool,
    /// Error `kind: message` when the request failed.
    pub error: Option<String>,
    /// Whether the plan came from the cache (`false` = compiled now).
    pub cached_plan: bool,
    /// Whether the response body streamed out as chunked transfer
    /// encoding (vs a buffered `Content-Length` response).
    pub streamed: bool,
    /// End-to-end latency in microseconds.
    pub latency_us: u64,
    /// Tuples produced by the evaluation (0 on error).
    pub tuples: u64,
    /// Largest per-operator q-error in the profile, when estimates
    /// were available.
    pub worst_q_error: Option<f64>,
    /// Pre-rendered JSON of the [`EvalStats`] snapshot.
    ///
    /// [`EvalStats`]: xqa_engine::EvalStats
    pub stats_json: Option<String>,
    /// Pre-rendered JSON of the full [`QueryProfile`] — per-operator
    /// est/actual counters plus the span timeline.
    ///
    /// [`QueryProfile`]: xqa_engine::QueryProfile
    pub profile_json: Option<String>,
    /// Pre-rendered JSON array of compile-phase trace events (empty
    /// array for cache hits — compilation never ran).
    pub trace_json: String,
    /// The rewrite kinds that fired when this plan compiled (cache hits
    /// carry the kinds recorded on the plan, not an empty list).
    pub rewrites: Vec<String>,
}

/// Render rewrite kinds as a JSON array of strings.
fn rewrites_json(rewrites: &[String]) -> String {
    let mut out = String::from("[");
    for (i, kind) in rewrites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(kind));
        out.push('"');
    }
    out.push(']');
    out
}

/// Cap on retained query text per record.
const MAX_QUERY_CHARS: usize = 200;

/// Truncate `query` to the recorder's retention cap.
pub fn truncate_query(query: &str) -> String {
    if query.chars().count() <= MAX_QUERY_CHARS {
        return query.to_string();
    }
    query.chars().take(MAX_QUERY_CHARS).collect::<String>() + "..."
}

impl FlightRecord {
    /// The compact one-line JSON used by `/debug/queries`.
    fn summary_json(&self) -> String {
        let mut out = format!("{{\"request_id\":\"{}\"", json_escape(&self.request_id));
        match self.fingerprint {
            Some(fp) => out.push_str(&format!(",\"fingerprint\":\"{fp:016x}\"")),
            None => out.push_str(",\"fingerprint\":null"),
        }
        out.push_str(&format!(
            ",\"ok\":{},\"cached_plan\":{},\"streamed\":{},\"latency_us\":{},\"tuples\":{}",
            self.ok, self.cached_plan, self.streamed, self.latency_us, self.tuples
        ));
        match self.worst_q_error {
            Some(q) => out.push_str(&format!(",\"worst_q_error\":{q:.2}")),
            None => out.push_str(",\"worst_q_error\":null"),
        }
        out.push_str(&format!(",\"query\":\"{}\"}}", json_escape(&self.query)));
        out
    }

    /// The full JSON used by `/debug/query/<id>`: the summary fields
    /// plus the stats snapshot, the profile (spans included) and any
    /// compile-phase trace events.
    fn full_json(&self) -> String {
        let mut out = self.summary_json();
        out.pop(); // reopen the summary object
        match &self.error {
            Some(e) => out.push_str(&format!(",\"error\":\"{}\"", json_escape(e))),
            None => out.push_str(",\"error\":null"),
        }
        out.push_str(",\"stats\":");
        out.push_str(self.stats_json.as_deref().unwrap_or("null"));
        out.push_str(",\"profile\":");
        out.push_str(self.profile_json.as_deref().unwrap_or("null"));
        out.push_str(",\"compile_trace\":");
        out.push_str(&self.trace_json);
        out.push_str(",\"rewrites\":");
        out.push_str(&rewrites_json(&self.rewrites));
        out.push('}');
        out
    }
}

/// Running totals for one plan fingerprint.
#[derive(Debug)]
struct PlanAggregate {
    /// Representative query text (first request seen for this shape).
    query: String,
    /// Requests that ran this plan shape.
    count: u64,
    /// How many of them failed at run time.
    errors: u64,
    /// Cumulative latency, microseconds.
    total_us: u64,
    /// Cumulative tuples produced.
    tuples: u64,
    /// Latency distribution (for p50/p99).
    latency: LatencyHistogram,
    /// q-error accumulation over requests that had estimates.
    q_sum: f64,
    q_count: u64,
    q_max: f64,
    /// Rewrite kinds that fired for this plan shape (a property of the
    /// fingerprint, captured from the first record folded in).
    rewrites: Vec<String>,
}

impl PlanAggregate {
    fn new(query: String) -> PlanAggregate {
        PlanAggregate {
            query,
            count: 0,
            errors: 0,
            total_us: 0,
            tuples: 0,
            latency: LatencyHistogram::default(),
            q_sum: 0.0,
            q_count: 0,
            q_max: 0.0,
            rewrites: Vec::new(),
        }
    }

    fn fold(&mut self, record: &FlightRecord) {
        self.count += 1;
        if self.rewrites.is_empty() && !record.rewrites.is_empty() {
            self.rewrites = record.rewrites.clone();
        }
        if !record.ok {
            self.errors += 1;
        }
        self.total_us += record.latency_us;
        self.tuples += record.tuples;
        self.latency
            .record(std::time::Duration::from_micros(record.latency_us));
        if let Some(q) = record.worst_q_error {
            self.q_sum += q;
            self.q_count += 1;
            self.q_max = self.q_max.max(q);
        }
    }

    fn to_json(&self, fingerprint: u64) -> String {
        let mut out = format!(
            "{{\"fingerprint\":\"{fingerprint:016x}\",\"count\":{},\"errors\":{},\
             \"total_us\":{},\"p50_us\":{},\"p99_us\":{},\"tuples\":{}",
            self.count,
            self.errors,
            self.total_us,
            self.latency.quantile_us(0.5),
            self.latency.quantile_us(0.99),
            self.tuples
        );
        if self.q_count > 0 {
            out.push_str(&format!(
                ",\"mean_q_error\":{:.2},\"max_q_error\":{:.2}",
                self.q_sum / self.q_count as f64,
                self.q_max
            ));
        } else {
            out.push_str(",\"mean_q_error\":null,\"max_q_error\":null");
        }
        out.push_str(",\"rewrites\":");
        out.push_str(&rewrites_json(&self.rewrites));
        out.push_str(&format!(",\"query\":\"{}\"}}", json_escape(&self.query)));
        out
    }
}

/// The bounded recorder shared by all server workers.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<Arc<FlightRecord>>>,
    plans: Mutex<HashMap<u64, PlanAggregate>>,
    evicted: AtomicU64,
    /// Largest q-error ever recorded, stored as `f64` bits so the
    /// `/metrics` gauge reads without a lock.
    max_q_bits: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` records; `0` disables
    /// recording entirely.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::new()),
            plans: Mutex::new(HashMap::new()),
            evicted: AtomicU64::new(0),
            max_q_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Whether records are being retained.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deposit one record (no-op when disabled).
    pub fn record(&self, record: FlightRecord) {
        if !self.enabled() {
            return;
        }
        if let Some(q) = record.worst_q_error {
            // Relaxed max over f64 bits: non-negative floats compare
            // the same as their bit patterns.
            self.max_q_bits.fetch_max(q.to_bits(), Ordering::Relaxed);
        }
        if let Some(fp) = record.fingerprint {
            let mut plans = self.plans.lock().expect("flight plans poisoned");
            plans
                .entry(fp)
                .or_insert_with(|| PlanAggregate::new(record.query.clone()))
                .fold(&record);
        }
        let record = Arc::new(record);
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Distinct plan fingerprints aggregated so far.
    pub fn fingerprint_count(&self) -> usize {
        self.plans.lock().expect("flight plans poisoned").len()
    }

    /// Largest q-error ever recorded (0.0 before any estimate-bearing
    /// request).
    pub fn max_q_error(&self) -> f64 {
        f64::from_bits(self.max_q_bits.load(Ordering::Relaxed))
    }

    /// `GET /debug/queries`: record summaries, newest first.
    pub fn recent_json(&self) -> String {
        let ring = self.ring.lock().expect("flight ring poisoned");
        let mut out = format!(
            "{{\"capacity\":{},\"evicted\":{},\"records\":[",
            self.capacity,
            self.evicted()
        );
        for (i, record) in ring.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record.summary_json());
        }
        out.push_str("]}");
        out
    }

    /// `GET /debug/query/<id>`: the full record for `request_id`
    /// (newest match when a client reused an id), if still retained.
    pub fn query_json(&self, request_id: &str) -> Option<String> {
        let record = {
            let ring = self.ring.lock().expect("flight ring poisoned");
            ring.iter()
                .rev()
                .find(|r| r.request_id == request_id)
                .map(Arc::clone)
        };
        record.map(|r| r.full_json())
    }

    /// `GET /debug/plans`: per-fingerprint aggregates, heaviest (by
    /// cumulative latency) first, at most `top_k` of them.
    pub fn plans_json(&self, top_k: usize) -> String {
        let plans = self.plans.lock().expect("flight plans poisoned");
        let mut entries: Vec<(&u64, &PlanAggregate)> = plans.iter().collect();
        entries.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        let mut out = format!("{{\"fingerprints\":{},\"plans\":[", entries.len());
        for (i, (fp, agg)) in entries.iter().take(top_k).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&agg.to_json(**fp));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, fingerprint: u64, latency_us: u64, q: Option<f64>) -> FlightRecord {
        FlightRecord {
            request_id: id.to_string(),
            fingerprint: Some(fingerprint),
            query: format!("query {fingerprint}"),
            ok: true,
            error: None,
            cached_plan: false,
            streamed: false,
            latency_us,
            tuples: 3,
            worst_q_error: q,
            stats_json: Some("{}".to_string()),
            profile_json: Some("{}".to_string()),
            trace_json: "[]".to_string(),
            rewrites: vec!["index-scan".to_string()],
        }
    }

    #[test]
    fn capacity_zero_disables_recording() {
        let recorder = FlightRecorder::new(0);
        assert!(!recorder.enabled());
        recorder.record(record("1", 7, 10, Some(2.0)));
        assert_eq!(recorder.len(), 0);
        assert_eq!(recorder.fingerprint_count(), 0);
        assert_eq!(recorder.max_q_error(), 0.0);
        assert_eq!(
            recorder.recent_json(),
            "{\"capacity\":0,\"evicted\":0,\"records\":[]}"
        );
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let recorder = FlightRecorder::new(3);
        for i in 1..=5u64 {
            recorder.record(record(&i.to_string(), i, 10, None));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.evicted(), 2);
        // Newest first in the listing; "1" and "2" are gone.
        let json = recorder.recent_json();
        let ids: Vec<&str> = [
            "\"request_id\":\"5\"",
            "\"request_id\":\"4\"",
            "\"request_id\":\"3\"",
        ]
        .into_iter()
        .filter(|needle| json.contains(*needle))
        .collect();
        assert_eq!(ids.len(), 3, "{json}");
        assert!(!json.contains("\"request_id\":\"1\""), "{json}");
        assert!(recorder.query_json("1").is_none());
        assert!(recorder.query_json("5").is_some());
        let pos5 = json.find("\"request_id\":\"5\"").unwrap();
        let pos3 = json.find("\"request_id\":\"3\"").unwrap();
        assert!(pos5 < pos3, "newest first: {json}");
    }

    #[test]
    fn eviction_keeps_per_thread_fifo_order_under_concurrency() {
        let recorder = Arc::new(FlightRecorder::new(16));
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let recorder = Arc::clone(&recorder);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        recorder.record(record(&format!("t{t}-{i}"), t, 5, None));
                    }
                });
            }
        });
        assert_eq!(recorder.len(), 16);
        assert_eq!(
            recorder.evicted(),
            THREADS * PER_THREAD - 16,
            "every insert beyond capacity evicted exactly one record"
        );
        // Within the retained window each thread's records must still
        // appear in the order that thread inserted them (the ring is
        // FIFO; concurrency may interleave threads but never reorder
        // one thread's own records).
        let ring = recorder.ring.lock().unwrap();
        let mut last_seq: HashMap<u64, u64> = HashMap::new();
        for r in ring.iter() {
            let (t, i) = r.request_id[1..].split_once('-').unwrap();
            let (t, i): (u64, u64) = (t.parse().unwrap(), i.parse().unwrap());
            if let Some(prev) = last_seq.insert(t, i) {
                assert!(prev < i, "thread {t} reordered: {prev} before {i}");
            }
        }
    }

    #[test]
    fn plan_aggregates_fold_latency_tuples_and_q_error() {
        let recorder = FlightRecorder::new(8);
        recorder.record(record("1", 42, 100, Some(1.5)));
        recorder.record(record("2", 42, 300, Some(2.5)));
        recorder.record(record("3", 99, 50, None));
        assert_eq!(recorder.fingerprint_count(), 2);
        assert_eq!(recorder.max_q_error(), 2.5);
        let json = recorder.plans_json(10);
        assert!(
            json.starts_with("{\"fingerprints\":2,\"plans\":["),
            "{json}"
        );
        // Heaviest plan (42: 400us total) sorts first.
        let pos42 = json.find(&format!("{:016x}", 42u64)).unwrap();
        let pos99 = json.find(&format!("{:016x}", 99u64)).unwrap();
        assert!(pos42 < pos99, "{json}");
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("\"total_us\":400"), "{json}");
        assert!(json.contains("\"tuples\":6"), "{json}");
        assert!(json.contains("\"mean_q_error\":2.00"), "{json}");
        assert!(json.contains("\"max_q_error\":2.50"), "{json}");
        assert!(json.contains("\"mean_q_error\":null"), "{json}");
        // top_k truncates the list but not the fingerprint count.
        let top1 = recorder.plans_json(1);
        assert!(top1.starts_with("{\"fingerprints\":2,"), "{top1}");
        assert_eq!(top1.matches("\"count\":").count(), 1, "{top1}");
    }

    #[test]
    fn uncompiled_requests_land_in_the_ring_but_not_the_aggregates() {
        let recorder = FlightRecorder::new(4);
        recorder.record(FlightRecord {
            request_id: "bad".to_string(),
            fingerprint: None,
            query: "for $x in".to_string(),
            ok: false,
            error: Some("compile: unexpected end".to_string()),
            cached_plan: false,
            streamed: false,
            latency_us: 7,
            tuples: 0,
            worst_q_error: None,
            stats_json: None,
            profile_json: None,
            trace_json: "[]".to_string(),
            rewrites: Vec::new(),
        });
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.fingerprint_count(), 0);
        let full = recorder.query_json("bad").unwrap();
        assert!(full.contains("\"fingerprint\":null"), "{full}");
        assert!(full.contains("\"ok\":false"), "{full}");
        assert!(
            full.contains("\"error\":\"compile: unexpected end\""),
            "{full}"
        );
        assert!(full.contains("\"stats\":null"), "{full}");
        assert!(full.contains("\"profile\":null"), "{full}");
    }

    #[test]
    fn rewrite_kinds_ride_the_record_and_the_aggregate() {
        let recorder = FlightRecorder::new(4);
        let mut first = record("r1", 7, 10, None);
        first.rewrites = vec!["index-scan".to_string(), "join-unnest".to_string()];
        recorder.record(first);
        recorder.record(record("r2", 7, 20, None));
        let full = recorder.query_json("r1").unwrap();
        assert!(
            full.contains("\"rewrites\":[\"index-scan\",\"join-unnest\"]"),
            "{full}"
        );
        // The aggregate keeps the first non-empty list for the shape.
        let plans = recorder.plans_json(10);
        assert!(
            plans.contains("\"rewrites\":[\"index-scan\",\"join-unnest\"]"),
            "{plans}"
        );
    }

    #[test]
    fn query_text_is_truncated_for_retention() {
        let long = "x".repeat(500);
        let kept = truncate_query(&long);
        assert_eq!(kept.chars().count(), MAX_QUERY_CHARS + 3);
        assert!(kept.ends_with("..."));
        assert_eq!(truncate_query("short"), "short");
    }

    #[test]
    fn reused_request_ids_resolve_to_the_newest_record() {
        let recorder = FlightRecorder::new(4);
        recorder.record(record("dup", 1, 10, None));
        let mut second = record("dup", 2, 20, None);
        second.tuples = 99;
        recorder.record(second);
        let full = recorder.query_json("dup").unwrap();
        assert!(full.contains("\"tuples\":99"), "{full}");
    }
}
