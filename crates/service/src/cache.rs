//! LRU cache of prepared query plans.
//!
//! Keyed by `(query text, EngineOptions, catalog version)` — the
//! inputs that fully determine a compiled plan — so a server can skip
//! the parse/compile/rewrite pipeline for repeated queries. The
//! catalog version comes from the statistics attached to the engine
//! (zero when none): reindexing the catalog bumps the version, so
//! plans whose access-path decisions were made against stale
//! statistics are never served. The recency
//! list is an intrusive doubly-linked list over a slot vector (no
//! per-entry allocation, O(1) touch/insert/evict); a `Mutex` guards the
//! structure while hit/miss counters are lock-free atomics so
//! `/metrics` never contends with query traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xqa_engine::{Engine, EngineOptions, EngineResult, PreparedQuery, Tracer};

type CacheKey = (String, EngineOptions, u64);

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

struct Slot {
    key: CacheKey,
    plan: Arc<PreparedQuery>,
    prev: usize,
    next: usize,
}

/// The linked-LRU structure guarded by the cache mutex.
struct Lru {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (eviction candidate).
    tail: usize,
}

impl Lru {
    fn new() -> Lru {
        Lru {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slots[i].as_ref().expect("unlink of empty slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("linked prev").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("linked next").prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        {
            let s = self.slots[i].as_mut().expect("push_front of empty slot");
            s.prev = NIL;
            s.next = self.head;
        }
        if self.head != NIL {
            self.slots[self.head].as_mut().expect("old head").prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up and mark most-recently-used.
    fn get(&mut self, key: &CacheKey) -> Option<Arc<PreparedQuery>> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(
            &self.slots[i].as_ref().expect("mapped slot").plan,
        ))
    }

    /// Insert (or refresh) an entry, evicting the LRU tail at capacity.
    fn insert(&mut self, key: CacheKey, plan: Arc<PreparedQuery>, capacity: usize) {
        if let Some(&i) = self.map.get(&key) {
            // Raced with another worker compiling the same query: keep
            // one plan, refresh recency.
            self.slots[i].as_mut().expect("mapped slot").plan = plan;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= capacity {
            let victim = self.tail;
            self.unlink(victim);
            let slot = self.slots[victim].take().expect("tail slot");
            self.map.remove(&slot.key);
            self.free.push(victim);
        }
        let slot = Slot {
            key: key.clone(),
            plan,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// A thread-safe LRU cache of [`PreparedQuery`] plans.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Lru::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetch the plan for `query` under `engine`'s options, compiling
    /// and caching it on a miss.
    ///
    /// Compilation happens *outside* the lock: two workers racing on
    /// the same novel query may both compile it (the second insert
    /// wins), which trades a little duplicate work for never blocking
    /// cache hits behind a slow compile. Failed compilations are not
    /// cached.
    pub fn get_or_compile(&self, engine: &Engine, query: &str) -> EngineResult<Arc<PreparedQuery>> {
        self.get_or_compile_status(engine, query)
            .map(|(plan, _)| plan)
    }

    /// Like [`PlanCache::get_or_compile`], but also reports whether the
    /// plan was compiled by this call (`true`) or served from the cache
    /// (`false`) — the signal the server uses to count rewrite firings
    /// exactly once per compilation.
    pub fn get_or_compile_status(
        &self,
        engine: &Engine,
        query: &str,
    ) -> EngineResult<(Arc<PreparedQuery>, bool)> {
        self.get_or_compile_traced(engine, query, None)
    }

    /// Like [`PlanCache::get_or_compile_status`], but threads a
    /// [`Tracer`] into the compilation pipeline so compile-phase events
    /// (parse, rewrites fired, bytecode lowering) land in the caller's
    /// trace sink. Cache hits emit nothing — compilation never ran.
    pub fn get_or_compile_traced(
        &self,
        engine: &Engine,
        query: &str,
        tracer: Option<&Tracer>,
    ) -> EngineResult<(Arc<PreparedQuery>, bool)> {
        let version = engine.statistics().map_or(0, |s| s.version());
        let key = (query.to_string(), engine.options(), version);
        if let Some(plan) = self.inner.lock().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((plan, false));
        }
        let plan = Arc::new(engine.compile_traced(query, tracer)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().expect("plan cache poisoned").insert(
            key,
            Arc::clone(&plan),
            self.capacity,
        );
        Ok((plan, true))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (successful compiles only).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits divided by total lookups (0.0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_keys(cache: &PlanCache) -> Vec<String> {
        let inner = cache.inner.lock().unwrap();
        let mut keys = Vec::new();
        let mut i = inner.head;
        while i != NIL {
            let slot = inner.slots[i].as_ref().unwrap();
            keys.push(slot.key.0.clone());
            i = slot.next;
        }
        keys
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let engine = Engine::new();
        let cache = PlanCache::new(4);
        cache.get_or_compile(&engine, "1 + 1").unwrap();
        cache.get_or_compile(&engine, "1 + 1").unwrap();
        cache.get_or_compile(&engine, "2 + 2").unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_recently_used_plan_is_evicted() {
        let engine = Engine::new();
        let cache = PlanCache::new(2);
        cache.get_or_compile(&engine, "1").unwrap();
        cache.get_or_compile(&engine, "2").unwrap();
        // Touch "1" so "2" becomes the LRU entry.
        cache.get_or_compile(&engine, "1").unwrap();
        cache.get_or_compile(&engine, "3").unwrap();
        assert_eq!(cache_keys(&cache), vec!["3", "1"]);
        // "2" was evicted: fetching it again is a miss.
        let misses = cache.misses();
        cache.get_or_compile(&engine, "2").unwrap();
        assert_eq!(cache.misses(), misses + 1);
    }

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let engine = Engine::new();
        let cache = PlanCache::new(1);
        for q in ["1", "2", "3", "2"] {
            cache.get_or_compile(&engine, q).unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache_keys(&cache), vec!["2"]);
    }

    #[test]
    fn different_engine_options_key_different_plans() {
        let cache = PlanCache::new(8);
        let plain = Engine::new();
        let rewriting = Engine::with_options(EngineOptions {
            detect_implicit_groupby: true,
            ..Default::default()
        });
        cache.get_or_compile(&plain, "1 + 1").unwrap();
        cache.get_or_compile(&rewriting, "1 + 1").unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_catalog_versions_key_different_plans() {
        use xqa_storage::{CatalogStatistics, DocumentStore};
        let cache = PlanCache::new(8);
        let store_stats = || {
            let doc = xqa_xmlparse::parse_document("<r><v>1</v></r>").unwrap();
            let store = DocumentStore::build(&doc);
            Arc::new(CatalogStatistics::from_stores([&store]))
        };
        let a = Engine::new().with_statistics(store_stats());
        let b = Engine::new().with_statistics(store_stats());
        assert_ne!(
            a.statistics().unwrap().version(),
            b.statistics().unwrap().version(),
            "store versions are monotonic"
        );
        cache.get_or_compile(&a, "1 + 1").unwrap();
        // Same query text + options, newer catalog: recompiled.
        cache.get_or_compile(&b, "1 + 1").unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let engine = Engine::new();
        let cache = PlanCache::new(4);
        assert!(cache.get_or_compile(&engine, "for $x in").is_err());
        assert!(cache.get_or_compile(&engine, "for $x in").is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_cache() {
        let engine = Engine::new();
        let cache = PlanCache::new(16);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..50 {
                        let q = format!("{} + 1", i % 8);
                        cache.get_or_compile(&engine, &q).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.hits() + cache.misses(), 200);
        // At most one racing compile per worker per query.
        assert!(cache.misses() <= 32, "misses = {}", cache.misses());
    }
}
