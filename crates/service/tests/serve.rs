//! End-to-end test of the HTTP service over real sockets: parallel
//! clients, mixed cached/novel queries, and metrics aggregation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use xqa_engine::{DynamicContext, Engine};
use xqa_service::{DocumentCatalog, Server, ServiceConfig};
use xqa_workload::{generate_orders, OrdersConfig};
use xqa_xmlparse::serialize_sequence;

/// Reassemble a chunked transfer-encoded body into its payload.
fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            break;
        };
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = &after[size + 2..]; // skip the chunk's trailing CRLF
    }
    out
}

/// Split a raw response into (head, status, de-chunked body). Raw
/// requests in this file ask for `Connection: close` so
/// `read_to_string` terminates.
fn parse_response(response: &str) -> (String, u16, String) {
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(&body)
    } else {
        body
    };
    (head, status, body)
}

fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (_, status, body) = parse_response(&response);
    (status, body)
}

fn post_query(addr: SocketAddr, query: &str) -> (u16, String) {
    post_query_at(addr, "/query", query).1
}

/// POST `query` to `target`, returning the raw head (status line plus
/// headers) alongside (status, body) so tests can inspect headers.
fn post_query_at(addr: SocketAddr, target: &str, query: &str) -> (String, (u16, String)) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{query}",
                query.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, status, body) = parse_response(&response);
    (head, (status, body))
}

/// The value of `header` in a response head, if present.
fn header_value(head: &str, header: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case(header)
            .then(|| value.trim().to_string())
    })
}

/// The flat `"stats":{...}` object embedded in a profiled response.
fn stats_object(body: &str) -> &str {
    let start = body.find("\"stats\":{").expect("stats object") + "\"stats\":".len();
    let end = body[start..].find('}').expect("stats closes") + start + 1;
    &body[start..end]
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn metric(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

/// One-shot reference evaluation, exactly what the CLI does for
/// `xqa -q QUERY -i FILE`: fresh engine, fresh context, compact
/// serialization.
fn one_shot(catalog: &DocumentCatalog, query: &str) -> String {
    let engine = Engine::new();
    let plan = engine.compile(query).expect("reference compile");
    let ctx: DynamicContext = catalog.new_context();
    serialize_sequence(&plan.run(&ctx).expect("reference run"))
}

/// The paper's analytics shapes, as served traffic: a `group by` /
/// `nest ... into` aggregation and a `return at $rank` numbering query.
const GROUPBY_QUERY: &str = "for $litem in //order/lineitem \
     group by $litem/shipmode into $mode \
     nest $litem into $items \
     order by $mode \
     return <r>{string($mode)}: {count($items)}</r>";

const RANK_QUERY: &str = "for $litem in //order/lineitem \
     order by number($litem/quantity) descending \
     return at $rank <top>{$rank}: {string($litem/quantity)}</top>";

#[test]
fn parallel_clients_match_one_shot_results_and_metrics_aggregate() {
    let mut catalog = DocumentCatalog::new();
    catalog.set_context(generate_orders(&OrdersConfig::with_total_lineitems(300)));
    let server = Server::start(
        "127.0.0.1:0",
        &catalog,
        ServiceConfig {
            workers: 4,
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    // 20 requests from 20 client threads: the two analytics queries
    // are repeated (so their second-and-later runs hit the plan
    // cache), the rest are novel per-thread arithmetic.
    let mut requests: Vec<String> = Vec::new();
    for _ in 0..4 {
        requests.push(GROUPBY_QUERY.to_string());
        requests.push(RANK_QUERY.to_string());
    }
    for i in 0..12 {
        requests.push(format!("sum(//order/lineitem/quantity) + {i}"));
    }
    assert!(requests.len() >= 16);

    let expected: Vec<String> = requests.iter().map(|q| one_shot(&catalog, q)).collect();

    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|q| s.spawn(move || post_query(addr, q)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (status, body) = h.join().expect("client thread");
                assert_eq!(status, 200, "{body}");
                body
            })
            .collect()
    });

    for (i, (got, want)) in bodies.iter().zip(&expected).enumerate() {
        assert_eq!(
            got,
            want,
            "request {i} ({})",
            &requests[i][..40.min(requests[i].len())]
        );
    }

    // Group-by output sanity: the orders workload uses the TPC-H
    // shipmode domain of seven values.
    assert_eq!(bodies[0].matches("<r>").count(), 7);
    // Rank numbering starts at 1.
    assert!(bodies[1].starts_with("<top>1: "), "{}", &bodies[1]);

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric(&metrics, "xqa_query_requests_total") as u64, 20);
    assert_eq!(metric(&metrics, "xqa_query_ok_total") as u64, 20);
    assert_eq!(metric(&metrics, "xqa_query_errors_total") as u64, 0);
    // 14 distinct queries -> 6 cache hits out of 20 lookups.
    assert_eq!(metric(&metrics, "xqa_plan_cache_hits_total") as u64, 6);
    assert_eq!(metric(&metrics, "xqa_plan_cache_misses_total") as u64, 14);
    assert!(metric(&metrics, "xqa_plan_cache_hit_rate") > 0.0);
    assert_eq!(metric(&metrics, "xqa_query_latency_us_count") as u64, 20);
    // The group-by queries ran through the grouping operator; the
    // per-request snapshots folded into the service totals.
    assert!(metric(&metrics, "xqa_eval_tuples_grouped_total") > 0.0);
    assert!(metric(&metrics, "xqa_eval_groups_emitted_total") > 0.0);
    // Per-operator tuple totals come from the per-request profiles:
    // every query ran a ForScan, and 4 group-by runs emitted 7 groups
    // each through GroupConsume.
    assert!(metric(&metrics, "xqa_op_tuples_total{op=\"ForScan\"}") > 0.0);
    assert_eq!(
        metric(&metrics, "xqa_op_tuples_total{op=\"GroupConsume\"}") as u64,
        4 * 7
    );
    // All `//order/lineitem` plans fused their descendant steps; the
    // counter counts compilations (14 misses), not requests.
    let fused = metric(&metrics, "xqa_rewrite_fired_total{rewrite=\"path-fusion\"}") as u64;
    assert!((1..=14).contains(&fused), "fused = {fused}");
    // No positional bounds in this traffic, so no top-k pushdown.
    assert_eq!(
        metric(
            &metrics,
            "xqa_rewrite_fired_total{rewrite=\"topk-pushdown\"}"
        ) as u64,
        0
    );
    // Latency quantiles are served precomputed from the histogram.
    for q in ["0.5", "0.95", "0.99"] {
        let v = metric(
            &metrics,
            &format!("xqa_query_latency_quantile_us{{quantile=\"{q}\"}}"),
        );
        assert!(v > 0.0, "quantile {q} = {v}");
    }
    // The histogram is annotated for Prometheus scrapers, and the old
    // ad-hoc mean gauge is gone.
    assert!(metrics.contains("# TYPE xqa_query_latency_us histogram"));
    assert!(!metrics.contains("xqa_query_latency_mean_us"));

    server.shutdown();
}

#[test]
fn concurrent_profiled_requests_report_disjoint_stats() {
    let mut catalog = DocumentCatalog::new();
    catalog.set_context(generate_orders(&OrdersConfig::with_total_lineitems(200)));
    let server = Server::start(
        "127.0.0.1:0",
        &catalog,
        ServiceConfig {
            workers: 4,
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    // Solo baselines: with a fresh context per request, a query's stats
    // depend only on the query, so a concurrent run must reproduce them
    // exactly — any cross-request bleed shows up as a diff.
    let queries = [GROUPBY_QUERY, RANK_QUERY];
    let baselines: Vec<(String, String)> = queries
        .iter()
        .map(|q| {
            let (_, (status, body)) = post_query_at(addr, "/query?profile=true", q);
            assert_eq!(status, 200, "{body}");
            (stats_object(&body).to_string(), body)
        })
        .collect();

    let heads_and_bodies: Vec<(usize, String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                s.spawn(move || {
                    let (head, (status, body)) =
                        post_query_at(addr, "/query?profile=true", queries[i % 2]);
                    assert_eq!(status, 200, "{body}");
                    (i % 2, head, body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut seen_ids = std::collections::HashSet::new();
    for (which, head, body) in &heads_and_bodies {
        assert_eq!(
            stats_object(body),
            baselines[*which].0,
            "stats interleaved for query {which}"
        );
        let id: u64 = header_value(head, "X-Request-Id")
            .expect("request id header")
            .parse()
            .expect("numeric request id");
        assert!(seen_ids.insert(id), "request id {id} reused");
    }

    // The profiled body names the pipeline operators and carries the
    // serialized result alongside.
    let groupby_body = &baselines[0].1;
    for op in ["ForScan", "GroupConsume", "OrderBy", "ReturnAt"] {
        assert!(
            groupby_body.contains(&format!("\"op\":\"{op}\"")),
            "{op} missing in {groupby_body}"
        );
    }
    assert!(
        groupby_body.contains("\"request_id\":\"1\""),
        "{groupby_body}"
    );
    assert!(groupby_body.contains("\"result\":\""), "{groupby_body}");

    server.shutdown();
}

#[test]
fn flight_recorder_on_and_off_serve_byte_identical_bodies() {
    let mut catalog = DocumentCatalog::new();
    catalog.set_context(generate_orders(&OrdersConfig::with_total_lineitems(200)));
    let start = |capacity: usize| {
        Server::start(
            "127.0.0.1:0",
            &catalog,
            ServiceConfig {
                workers: 2,
                flight_recorder_capacity: capacity,
                ..Default::default()
            },
        )
        .expect("start server")
    };
    let with_recorder = start(64);
    let without_recorder = start(0);

    // Identical traffic against both servers: the recorder observes
    // requests, it must never change what they return — including
    // error bodies, modulo nothing (request ids are client-pinned).
    let queries = [
        GROUPBY_QUERY,
        RANK_QUERY,
        "sum(//order/lineitem/quantity)",
        "1 +",
    ];
    for (i, q) in queries.iter().enumerate() {
        let send = |addr: SocketAddr| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(
                    format!(
                        "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                         X-Request-Id: diff-{i}\r\nContent-Length: {}\r\n\r\n{q}",
                        q.len()
                    )
                    .as_bytes(),
                )
                .expect("send");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            let (_, _, body) = parse_response(&response);
            body
        };
        let on = send(with_recorder.local_addr());
        let off = send(without_recorder.local_addr());
        assert_eq!(on, off, "query {i} diverged with the recorder on");
    }

    // And the recorder did actually observe the on-server's traffic.
    let (_, debug) = get(with_recorder.local_addr(), "/debug/queries");
    assert!(debug.contains("\"request_id\":\"diff-0\""), "{debug}");
    let (_, debug_off) = get(without_recorder.local_addr(), "/debug/queries");
    assert!(debug_off.contains("\"records\":[]"), "{debug_off}");

    with_recorder.shutdown();
    without_recorder.shutdown();
}

#[test]
fn mixed_good_and_bad_traffic_is_isolated_per_request() {
    let mut catalog = DocumentCatalog::new();
    catalog.set_context_xml("<r><v>5</v><v>6</v></r>").unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        &catalog,
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                assert_eq!(post_query(addr, "sum(//v)"), (200, "11".to_string()));
                let (status, body) = post_query(addr, "1 +");
                assert_eq!(status, 400);
                assert!(body.contains("\"kind\":\"compile\""));
                assert_eq!(post_query(addr, "count(//v)"), (200, "2".to_string()));
            });
        }
    });

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric(&metrics, "xqa_query_requests_total") as u64, 12);
    assert_eq!(metric(&metrics, "xqa_query_ok_total") as u64, 8);
    assert_eq!(metric(&metrics, "xqa_query_errors_total") as u64, 4);
    assert_eq!(metric(&metrics, "xqa_worker_panics_total") as u64, 0);
    assert_eq!(get(addr, "/healthz").0, 200);

    server.shutdown();
}
