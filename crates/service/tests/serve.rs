//! End-to-end test of the HTTP service over real sockets: parallel
//! clients, mixed cached/novel queries, and metrics aggregation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use xqa_engine::{DynamicContext, Engine};
use xqa_service::{DocumentCatalog, Server, ServiceConfig};
use xqa_workload::{generate_orders, OrdersConfig};
use xqa_xmlparse::serialize_sequence;

fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_query(addr: SocketAddr, query: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{query}",
            query.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn metric(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

/// One-shot reference evaluation, exactly what the CLI does for
/// `xqa -q QUERY -i FILE`: fresh engine, fresh context, compact
/// serialization.
fn one_shot(catalog: &DocumentCatalog, query: &str) -> String {
    let engine = Engine::new();
    let plan = engine.compile(query).expect("reference compile");
    let ctx: DynamicContext = catalog.new_context();
    serialize_sequence(&plan.run(&ctx).expect("reference run"))
}

/// The paper's analytics shapes, as served traffic: a `group by` /
/// `nest ... into` aggregation and a `return at $rank` numbering query.
const GROUPBY_QUERY: &str = "for $litem in //order/lineitem \
     group by $litem/shipmode into $mode \
     nest $litem into $items \
     order by $mode \
     return <r>{string($mode)}: {count($items)}</r>";

const RANK_QUERY: &str = "for $litem in //order/lineitem \
     order by number($litem/quantity) descending \
     return at $rank <top>{$rank}: {string($litem/quantity)}</top>";

#[test]
fn parallel_clients_match_one_shot_results_and_metrics_aggregate() {
    let mut catalog = DocumentCatalog::new();
    catalog.set_context(generate_orders(&OrdersConfig::with_total_lineitems(300)));
    let server = Server::start(
        "127.0.0.1:0",
        &catalog,
        ServiceConfig {
            workers: 4,
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    // 20 requests from 20 client threads: the two analytics queries
    // are repeated (so their second-and-later runs hit the plan
    // cache), the rest are novel per-thread arithmetic.
    let mut requests: Vec<String> = Vec::new();
    for _ in 0..4 {
        requests.push(GROUPBY_QUERY.to_string());
        requests.push(RANK_QUERY.to_string());
    }
    for i in 0..12 {
        requests.push(format!("sum(//order/lineitem/quantity) + {i}"));
    }
    assert!(requests.len() >= 16);

    let expected: Vec<String> = requests.iter().map(|q| one_shot(&catalog, q)).collect();

    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|q| s.spawn(move || post_query(addr, q)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (status, body) = h.join().expect("client thread");
                assert_eq!(status, 200, "{body}");
                body
            })
            .collect()
    });

    for (i, (got, want)) in bodies.iter().zip(&expected).enumerate() {
        assert_eq!(
            got,
            want,
            "request {i} ({})",
            &requests[i][..40.min(requests[i].len())]
        );
    }

    // Group-by output sanity: the orders workload uses the TPC-H
    // shipmode domain of seven values.
    assert_eq!(bodies[0].matches("<r>").count(), 7);
    // Rank numbering starts at 1.
    assert!(bodies[1].starts_with("<top>1: "), "{}", &bodies[1]);

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric(&metrics, "xqa_query_requests_total") as u64, 20);
    assert_eq!(metric(&metrics, "xqa_query_ok_total") as u64, 20);
    assert_eq!(metric(&metrics, "xqa_query_errors_total") as u64, 0);
    // 14 distinct queries -> 6 cache hits out of 20 lookups.
    assert_eq!(metric(&metrics, "xqa_plan_cache_hits_total") as u64, 6);
    assert_eq!(metric(&metrics, "xqa_plan_cache_misses_total") as u64, 14);
    assert!(metric(&metrics, "xqa_plan_cache_hit_rate") > 0.0);
    assert_eq!(metric(&metrics, "xqa_query_latency_us_count") as u64, 20);
    // The group-by queries ran through the grouping operator, so the
    // shared context's stats picked up tuples and groups.
    assert!(metric(&metrics, "xqa_eval_tuples_grouped_total") > 0.0);
    assert!(metric(&metrics, "xqa_eval_groups_emitted_total") > 0.0);

    server.shutdown();
}

#[test]
fn mixed_good_and_bad_traffic_is_isolated_per_request() {
    let mut catalog = DocumentCatalog::new();
    catalog.set_context_xml("<r><v>5</v><v>6</v></r>").unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        &catalog,
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                assert_eq!(post_query(addr, "sum(//v)"), (200, "11".to_string()));
                let (status, body) = post_query(addr, "1 +");
                assert_eq!(status, 400);
                assert!(body.contains("\"kind\":\"compile\""));
                assert_eq!(post_query(addr, "count(//v)"), (200, "2".to_string()));
            });
        }
    });

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric(&metrics, "xqa_query_requests_total") as u64, 12);
    assert_eq!(metric(&metrics, "xqa_query_ok_total") as u64, 8);
    assert_eq!(metric(&metrics, "xqa_query_errors_total") as u64, 4);
    assert_eq!(metric(&metrics, "xqa_worker_panics_total") as u64, 0);
    assert_eq!(get(addr, "/healthz").0, 200);

    server.shutdown();
}
