//! Concurrency smoke test (no sockets): one prepared plan evaluated
//! from many threads against one shared catalog context must produce
//! byte-identical output to a single-threaded run.

use std::sync::Arc;

use xqa_engine::Engine;
use xqa_service::DocumentCatalog;
use xqa_workload::{generate_orders, OrdersConfig};
use xqa_xmlparse::serialize_sequence;

const QUERY: &str = "for $litem in //order/lineitem \
     group by $litem/shipmode into $mode \
     nest $litem/quantity into $quantities \
     order by $mode \
     return <g mode=\"{$mode}\">{count($quantities)}: {sum($quantities)}</g>";

#[test]
fn shared_plan_and_catalog_are_deterministic_across_threads() {
    let mut catalog = DocumentCatalog::new();
    catalog.set_context(generate_orders(&OrdersConfig::with_total_lineitems(500)));

    let engine = Engine::new();
    let plan = Arc::new(engine.compile(QUERY).expect("compile"));
    let ctx = Arc::new(catalog.new_context());

    // Single-threaded reference bytes.
    let reference = serialize_sequence(&plan.run(&ctx).expect("serial run"));
    assert!(reference.contains("<g mode="), "{reference}");

    // Same plan, same shared context, 8 threads x 5 runs each.
    let outputs: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let plan = Arc::clone(&plan);
                let ctx = Arc::clone(&ctx);
                s.spawn(move || {
                    (0..5)
                        .map(|_| serialize_sequence(&plan.run(&ctx).expect("parallel run")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("thread"))
            .collect()
    });

    assert_eq!(outputs.len(), 40);
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out, &reference, "thread output {i} diverged");
    }

    // Stats kept aggregating (41 runs worth of grouping work) without
    // torn counters: tuples_grouped is a multiple of the per-run count.
    let stats = ctx.stats.snapshot();
    assert!(stats.tuples_grouped > 0);
    assert_eq!(stats.tuples_grouped % 41, 0, "{stats:?}");
}
