//! End-to-end tests for the production serving path: keep-alive
//! connection reuse, Connection-header semantics, bounded admission
//! with load-shedding, request read timeouts, streamed (chunked)
//! result bodies, and the malformed-request corpus over real sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use xqa_service::{DocumentCatalog, Server, ServiceConfig};

fn start_server(config: ServiceConfig) -> Server {
    let mut catalog = DocumentCatalog::new();
    catalog
        .set_context_xml("<r><v>1</v><v>2</v><v>3</v></r>")
        .unwrap();
    Server::start("127.0.0.1:0", &catalog, config).expect("bind")
}

fn default_server() -> Server {
    start_server(ServiceConfig {
        workers: 2,
        ..Default::default()
    })
}

/// Read exactly one HTTP response (head + framed body) off a buffered
/// socket, leaving the stream positioned at the next response. Returns
/// (head, body) with chunked bodies reassembled.
fn read_response(reader: &mut BufReader<TcpStream>) -> (String, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read head line");
        assert!(n > 0, "connection closed mid-head (head so far: {head:?})");
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let lower = head.to_ascii_lowercase();
    let body = if lower.contains("transfer-encoding: chunked") {
        let mut out = String::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).expect("chunk size");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            let mut chunk = vec![0u8; size + 2]; // data + CRLF
            reader.read_exact(&mut chunk).expect("chunk data");
            if size == 0 {
                break;
            }
            out.push_str(std::str::from_utf8(&chunk[..size]).expect("utf-8 chunk"));
        }
        out
    } else {
        let len: usize = lower
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .map(|v| v.trim().parse().expect("content-length"))
            .unwrap_or(0);
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf).expect("body");
        String::from_utf8(buf).expect("utf-8 body")
    };
    (head, body)
}

fn status_of(head: &str) -> u16 {
    head.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap()
}

fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (n, v) = l.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

fn post_query_raw(query: &str, extra: &str) -> String {
    format!(
        "POST /query HTTP/1.1\r\nHost: t\r\n{extra}Content-Length: {}\r\n\r\n{query}",
        query.len()
    )
}

#[test]
fn keep_alive_serves_many_requests_on_one_socket() {
    let server = default_server();
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    // Five request/response cycles over the same connection, mixing
    // methods and endpoints; every response says keep-alive.
    for i in 0..5 {
        let raw = if i % 2 == 0 {
            post_query_raw(&format!("sum(//v) + {i}"), "")
        } else {
            "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".to_string()
        };
        stream.write_all(raw.as_bytes()).expect("send");
        let (head, body) = read_response(&mut reader);
        assert_eq!(status_of(&head), 200, "request {i}: {head}");
        assert_eq!(
            header_value(&head, "connection").as_deref(),
            Some("keep-alive"),
            "request {i}: {head}"
        );
        if i % 2 == 0 {
            assert_eq!(body, (6 + i).to_string(), "request {i}");
        } else {
            assert_eq!(body, "ok\n", "request {i}");
        }
    }

    // Pipelining: three requests written back to back before any read.
    let mut pipelined = String::new();
    for i in 0..3 {
        pipelined.push_str(&post_query_raw(&format!("count(//v) + {i}"), ""));
    }
    stream.write_all(pipelined.as_bytes()).expect("pipeline");
    for i in 0..3 {
        let (head, body) = read_response(&mut reader);
        assert_eq!(status_of(&head), 200);
        assert_eq!(body, (3 + i).to_string(), "pipelined request {i}");
    }
    server.shutdown();
}

#[test]
fn connection_header_semantics_per_http_version() {
    let server = default_server();
    let addr = server.local_addr();
    // (request, expected Connection echo, expect server close)
    let cases = [
        (
            "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
            "keep-alive",
            false,
        ),
        (
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            "close",
            true,
        ),
        ("GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n", "close", true),
        (
            "GET /healthz HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
            "keep-alive",
            false,
        ),
        // `close` wins inside a token list.
        (
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive, close\r\n\r\n",
            "close",
            true,
        ),
    ];
    for (raw, expected, expect_close) in cases {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        stream.write_all(raw.as_bytes()).expect("send");
        let (head, body) = read_response(&mut reader);
        assert_eq!(status_of(&head), 200, "{raw:?}");
        assert_eq!(body, "ok\n");
        assert_eq!(
            header_value(&head, "connection").as_deref(),
            Some(expected),
            "{raw:?}: {head}"
        );
        if expect_close {
            // The server closes: the next read sees EOF.
            let mut rest = String::new();
            reader.read_to_string(&mut rest).expect("drain");
            assert!(rest.is_empty(), "{raw:?}: unexpected extra data {rest:?}");
        } else {
            // Still open: a second request round-trips.
            stream
                .write_all("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n".as_bytes())
                .expect("second request");
            let (head2, body2) = read_response(&mut reader);
            assert_eq!(status_of(&head2), 200, "{raw:?} second request");
            assert_eq!(body2, "ok\n");
        }
    }
    server.shutdown();
}

#[test]
fn excess_connections_are_shed_with_429_and_retry_after() {
    // Capacity: 1 worker + 0 queue slots = 1 admitted connection.
    // Quota must not bind first (both clients come from 127.0.0.1).
    let server = start_server(ServiceConfig {
        workers: 1,
        max_queue: 0,
        max_inflight_per_client: 8,
        idle_timeout: Duration::from_millis(200),
        ..Default::default()
    });
    let addr = server.local_addr();

    // Occupy the only slot; reading the response proves admission.
    let held = TcpStream::connect(addr).expect("connect A");
    let mut held_reader = BufReader::new(held.try_clone().expect("clone"));
    let mut held = held;
    held.write_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".as_bytes())
        .expect("send A");
    let (head, _) = read_response(&mut held_reader);
    assert_eq!(status_of(&head), 200);

    // The next connection is shed at accept time, before it sends
    // anything (writing first would race the server's close into an
    // RST that discards the 429).
    let mut shed = TcpStream::connect(addr).expect("connect B");
    let mut response = String::new();
    shed.read_to_string(&mut response).expect("read B");
    assert!(response.starts_with("HTTP/1.1 429 "), "{response}");
    assert!(
        response.to_ascii_lowercase().contains("retry-after: 1"),
        "{response}"
    );
    assert!(
        response.to_ascii_lowercase().contains("connection: close"),
        "{response}"
    );

    // Free the slot; the shed counter survives in /metrics. Probes
    // sent while the slot is still occupied are themselves shed (each
    // bumping the counter), so assert on >= 1, not == 1.
    drop(held);
    drop(held_reader);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let Ok(mut probe) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        let _ = probe
            .write_all("GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".as_bytes());
        let mut metrics = String::new();
        let _ = probe.read_to_string(&mut metrics);
        if metrics.starts_with("HTTP/1.1 200") {
            let shed_total: u64 = metrics
                .lines()
                .find_map(|l| l.strip_prefix("xqa_requests_shed_total "))
                .and_then(|v| v.trim().parse().ok())
                .expect("shed gauge present");
            assert!(shed_total >= 1, "{metrics}");
            assert!(
                metrics.contains("xqa_http_connections_active 1"),
                "{metrics}"
            );
            assert!(metrics.contains("xqa_admission_queue_depth 0"), "{metrics}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn per_client_quota_sheds_the_greedy_client() {
    let server = start_server(ServiceConfig {
        workers: 4,
        max_queue: 8,
        max_inflight_per_client: 1,
        ..Default::default()
    });
    let addr = server.local_addr();
    let held = TcpStream::connect(addr).expect("connect A");
    let mut held_reader = BufReader::new(held.try_clone().expect("clone"));
    let mut held_stream = held;
    held_stream
        .write_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".as_bytes())
        .expect("send A");
    let (head, _) = read_response(&mut held_reader);
    assert_eq!(status_of(&head), 200);

    let mut second = TcpStream::connect(addr).expect("connect B");
    let mut response = String::new();
    second.read_to_string(&mut response).expect("read B");
    assert!(response.starts_with("HTTP/1.1 429 "), "{response}");
    server.shutdown();
}

#[test]
fn slow_loris_requests_time_out_with_408() {
    let server = start_server(ServiceConfig {
        workers: 1,
        read_timeout: Duration::from_millis(200),
        ..Default::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Start a request line but never finish it.
    stream.write_all(b"GET /hea").expect("send partial");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
    assert!(
        response.to_ascii_lowercase().contains("connection: close"),
        "{response}"
    );
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped_silently() {
    let server = start_server(ServiceConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(150),
        ..Default::default()
    });
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    stream
        .write_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".as_bytes())
        .expect("send");
    let (head, _) = read_response(&mut reader);
    assert_eq!(status_of(&head), 200);
    // Send nothing more: the server reaps the idle connection without
    // writing anything (no 408 — no request had started).
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain");
    assert!(rest.is_empty(), "unexpected data on idle close: {rest:?}");
    server.shutdown();
}

#[test]
fn malformed_requests_get_clean_4xx_responses() {
    let server = default_server();
    let addr = server.local_addr();
    let one_shot = |raw: &[u8]| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    };
    // Truncated request line.
    let r = one_shot(b"GET\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    // Unsupported version.
    let r = one_shot(b"GET / HTTP/2.0\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    // Header without a colon.
    let r = one_shot(b"GET / HTTP/1.1\r\nHost t\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    // Duplicate Content-Length (request-smuggling vector).
    let r = one_shot(b"POST /query HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nxx");
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    // Unparseable Content-Length.
    let r = one_shot(b"POST /query HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    // CR-only line endings (bare carriage return inside the line).
    let r = one_shot(b"GET / HTTP/1.1\rHost: t\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    // Oversized declared body.
    let r = one_shot(
        format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            xqa_service::http::MAX_BODY_BYTES + 1
        )
        .as_bytes(),
    );
    assert!(r.starts_with("HTTP/1.1 413 "), "{r}");
    // All of the above closed the connection after responding and none
    // of them crashed the server.
    let r = one_shot(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 200 "), "{r}");
    server.shutdown();
}

/// The differential corpus: every query here must serialize to the
/// same bytes whether streamed (chunked) or buffered (`stream=false`).
const CORPUS: &[&str] = &[
    "1 to 10",
    "sum(//v)",
    "<out>{sum(//v)}</out>",
    "for $x in //v return <n>{string($x)}</n>",
    "for $x in //v where number($x) > 1 order by number($x) descending return number($x)",
    "for $x in 1 to 500 return $x * 2",
    "()",
    "\"a\", \"b\", <e/>, 3",
];

#[test]
fn streamed_and_buffered_bodies_are_byte_identical() {
    let server = default_server();
    let addr = server.local_addr();
    let fetch = |target: &str, query: &str| -> (String, String) {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        stream
            .write_all(
                format!(
                    "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                     Content-Length: {}\r\n\r\n{query}",
                    query.len()
                )
                .as_bytes(),
            )
            .expect("send");
        read_response(&mut reader)
    };
    for query in CORPUS {
        let (streamed_head, streamed) = fetch("/query", query);
        let (buffered_head, buffered) = fetch("/query?stream=false", query);
        assert_eq!(status_of(&streamed_head), 200, "{query}");
        assert_eq!(status_of(&buffered_head), 200, "{query}");
        assert!(
            streamed_head
                .to_ascii_lowercase()
                .contains("transfer-encoding: chunked"),
            "{query}: {streamed_head}"
        );
        assert!(
            buffered_head
                .to_ascii_lowercase()
                .contains("content-length: "),
            "{query}: {buffered_head}"
        );
        assert_eq!(streamed, buffered, "bodies diverged for {query}");
    }
    // HTTP/1.0 clients always get a buffered, content-length response.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    stream
        .write_all(b"POST /query HTTP/1.0\r\nContent-Length: 8\r\n\r\nsum(//v)")
        .expect("send");
    let (head, body) = read_response(&mut reader);
    assert!(
        head.to_ascii_lowercase().contains("content-length: "),
        "{head}"
    );
    assert_eq!(body, "6");
    server.shutdown();
}

#[test]
fn error_before_first_byte_is_a_clean_400_even_when_streaming() {
    let server = default_server();
    let addr = server.local_addr();
    let fetch = |target: &str| -> (String, String) {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        let query = "1 div 0";
        stream
            .write_all(
                format!(
                    "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                     X-Request-Id: err-diff\r\nContent-Length: {}\r\n\r\n{query}",
                    query.len()
                )
                .as_bytes(),
            )
            .expect("send");
        read_response(&mut reader)
    };
    let (streamed_head, streamed) = fetch("/query");
    let (buffered_head, buffered) = fetch("/query?stream=false");
    assert_eq!(status_of(&streamed_head), 400, "{streamed}");
    assert_eq!(status_of(&buffered_head), 400, "{buffered}");
    assert!(streamed.contains("\"kind\":\"runtime\""), "{streamed}");
    assert!(streamed.contains("FOAR0001"), "{streamed}");
    // With the request id pinned, the error envelope is byte-identical.
    assert_eq!(streamed, buffered);
    server.shutdown();
}

#[test]
fn mid_stream_errors_truncate_the_chunked_body_and_close() {
    let server = default_server();
    let addr = server.local_addr();
    // Batches of 64: items 1..=128 stream out, then x=150 divides by
    // zero inside the third batch.
    let query = "for $x in 1 to 200 return $x idiv (150 - $x)";
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(post_query_raw(query, "").as_bytes())
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read to close");
    // The head went out as a 200 before the engine hit the error…
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw}");
    assert!(
        raw.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{raw}"
    );
    // …but the body was truncated: the terminal 0-length chunk is
    // missing, which is how a chunked client detects the abort. (The
    // connection closed — read_to_string returned.)
    assert!(!raw.ends_with("0\r\n\r\n"), "{raw:?}");
    // x = 1..=128 made it out: 1 idiv 149 = 0, …, 75 idiv 75 = 1, ….
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap();
    assert!(body.contains("0 0"), "first batches made it out: {raw:?}");

    let (_, metrics) = {
        let mut probe = TcpStream::connect(addr).expect("connect probe");
        probe
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("send probe");
        let mut response = String::new();
        probe.read_to_string(&mut response).expect("read probe");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (response, body)
    };
    assert!(
        metrics.contains("xqa_mid_stream_aborts_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("xqa_query_errors_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn streamed_responses_move_the_streaming_metrics_and_flight_records() {
    let server = default_server();
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    stream
        .write_all(post_query_raw("sum(//v)", "X-Request-Id: stream-1\r\n").as_bytes())
        .expect("send");
    let (head, body) = read_response(&mut reader);
    assert_eq!(status_of(&head), 200);
    assert_eq!(body, "6");

    // Buffered control request on the same socket.
    stream
        .write_all(
            "POST /query?stream=false HTTP/1.1\r\nHost: t\r\nX-Request-Id: stream-2\r\n\
             Connection: close\r\nContent-Length: 8\r\n\r\nsum(//v)"
                .as_bytes(),
        )
        .expect("send second");
    let (head2, body2) = read_response(&mut reader);
    assert_eq!(status_of(&head2), 200);
    assert_eq!(body2, "6");

    let mut probe = TcpStream::connect(addr).expect("connect probe");
    probe
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send probe");
    let mut metrics = String::new();
    probe.read_to_string(&mut metrics).expect("read probe");
    assert!(
        metrics.contains("xqa_streamed_responses_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("xqa_query_ok_total 2"), "{metrics}");

    // The flight recorder marks which requests streamed.
    let mut probe = TcpStream::connect(addr).expect("connect debug");
    probe
        .write_all(b"GET /debug/query/stream-1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send debug");
    let mut debug = String::new();
    probe.read_to_string(&mut debug).expect("read debug");
    assert!(debug.contains("\"streamed\":true"), "{debug}");
    let mut probe = TcpStream::connect(addr).expect("connect debug 2");
    probe
        .write_all(b"GET /debug/query/stream-2 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send debug 2");
    let mut debug2 = String::new();
    probe.read_to_string(&mut debug2).expect("read debug 2");
    assert!(debug2.contains("\"streamed\":false"), "{debug2}");
    server.shutdown();
}

#[test]
fn connections_are_closed_after_the_per_connection_request_cap() {
    let server = start_server(ServiceConfig {
        workers: 1,
        max_requests_per_conn: 3,
        ..Default::default()
    });
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    for i in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let (head, _) = read_response(&mut reader);
        assert_eq!(status_of(&head), 200);
        let expected = if i == 2 { "close" } else { "keep-alive" };
        assert_eq!(
            header_value(&head, "connection").as_deref(),
            Some(expected),
            "request {i}: {head}"
        );
    }
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain");
    assert!(rest.is_empty(), "server kept the capped connection open");
    server.shutdown();
}
