//! The built-in function library.
//!
//! Covers the `fn:` functions the paper's queries use (aggregates,
//! `distinct-values`, `deep-equal`, string/number utilities, dateTime
//! component extractors), the `xs:` constructor functions, and two
//! `xqa:` extension functions providing the §5 *membership functions*
//! (`xqa:paths`, `xqa:cube`) as builtins — the paper anticipates that
//! "a common set of such membership functions will be provided by the
//! implementations".

use crate::casts::{cast_atomic, cast_target_from_name};
use crate::context::{DynamicContext, Focus};
use crate::error::{EngineError, EngineResult};
use crate::ir::CastTarget;
use crate::keys::AtomicDistinctSet;
use xqa_xdm::{
    deep_equal, effective_boolean_value, sort_compare, AtomicValue, Decimal, DocumentBuilder,
    ErrorCode, Item, NodeHandle, NodeKind, QName, Sequence,
};

/// All built-in functions known to the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the F&O spec one-to-one
pub enum Builtin {
    // aggregates
    Count,
    Sum,
    Avg,
    Min,
    Max,
    // sequences
    DistinctValues,
    Empty,
    Exists,
    Reverse,
    Subsequence,
    InsertBefore,
    Remove,
    IndexOf,
    Data,
    StringJoin,
    ZeroOrOne,
    OneOrMore,
    ExactlyOne,
    Unordered,
    DeepEqual,
    // booleans
    Not,
    BooleanFn,
    TrueFn,
    FalseFn,
    // strings
    StringFn,
    Concat,
    Substring,
    StringLength,
    UpperCase,
    LowerCase,
    Contains,
    StartsWith,
    EndsWith,
    NormalizeSpace,
    SubstringBefore,
    SubstringAfter,
    Translate,
    // numerics
    NumberFn,
    Abs,
    Floor,
    Ceiling,
    Round,
    RoundHalfToEven,
    // nodes
    NameFn,
    LocalName,
    NodeName,
    Root,
    // focus
    Position,
    Last,
    // dateTime components
    YearFromDateTime,
    MonthFromDateTime,
    DayFromDateTime,
    HoursFromDateTime,
    MinutesFromDateTime,
    SecondsFromDateTime,
    YearFromDate,
    MonthFromDate,
    DayFromDate,
    // input
    Doc,
    Collection,
    // context instant
    CurrentDateTime,
    CurrentDate,
    // diagnostics
    Trace,
    // additional string/codepoint utilities
    Compare,
    StringToCodepoints,
    CodepointsToString,
    // errors
    ErrorFn,
    // xs: constructors
    Cast(CastTarget),
    // xqa: extension membership functions (§5)
    XqaPaths,
    XqaCube,
    // xqa: windowed-aggregation extensions (the paper's moving-window
    // queries in O(n) instead of O(n * w))
    XqaMovingSum,
    XqaMovingAvg,
}

/// Resolve a function name to a builtin. `prefix` of `None` and `fn`
/// address the core library; `xs` the constructors; `xqa` the
/// extensions.
pub fn resolve(prefix: Option<&str>, local: &str) -> Option<Builtin> {
    match prefix {
        None | Some("fn") => resolve_fn(local),
        Some("xs") => cast_target_from_name(Some("xs"), local).map(Builtin::Cast),
        Some("xqa") => match local {
            "paths" => Some(Builtin::XqaPaths),
            "cube" => Some(Builtin::XqaCube),
            "moving-sum" => Some(Builtin::XqaMovingSum),
            "moving-avg" => Some(Builtin::XqaMovingAvg),
            _ => None,
        },
        _ => None,
    }
}

fn resolve_fn(local: &str) -> Option<Builtin> {
    use Builtin::*;
    Some(match local {
        "count" => Count,
        "sum" => Sum,
        "avg" => Avg,
        "min" => Min,
        "max" => Max,
        "distinct-values" => DistinctValues,
        "empty" => Empty,
        "exists" => Exists,
        "reverse" => Reverse,
        "subsequence" => Subsequence,
        "insert-before" => InsertBefore,
        "remove" => Remove,
        "index-of" => IndexOf,
        "data" => Data,
        "string-join" => StringJoin,
        "zero-or-one" => ZeroOrOne,
        "one-or-more" => OneOrMore,
        "exactly-one" => ExactlyOne,
        "unordered" => Unordered,
        "deep-equal" => DeepEqual,
        "not" => Not,
        "boolean" => BooleanFn,
        "true" => TrueFn,
        "false" => FalseFn,
        "string" => StringFn,
        "concat" => Concat,
        "substring" => Substring,
        "string-length" => StringLength,
        "upper-case" => UpperCase,
        "lower-case" => LowerCase,
        "contains" => Contains,
        "starts-with" => StartsWith,
        "ends-with" => EndsWith,
        "normalize-space" => NormalizeSpace,
        "substring-before" => SubstringBefore,
        "substring-after" => SubstringAfter,
        "translate" => Translate,
        "number" => NumberFn,
        "abs" => Abs,
        "floor" => Floor,
        "ceiling" => Ceiling,
        "round" => Round,
        "round-half-to-even" => RoundHalfToEven,
        "name" => NameFn,
        "local-name" => LocalName,
        "node-name" => NodeName,
        "root" => Root,
        "position" => Position,
        "last" => Last,
        "year-from-dateTime" => YearFromDateTime,
        "month-from-dateTime" => MonthFromDateTime,
        "day-from-dateTime" => DayFromDateTime,
        "hours-from-dateTime" => HoursFromDateTime,
        "minutes-from-dateTime" => MinutesFromDateTime,
        "seconds-from-dateTime" => SecondsFromDateTime,
        "year-from-date" => YearFromDate,
        "month-from-date" => MonthFromDate,
        "day-from-date" => DayFromDate,
        "doc" => Doc,
        "collection" => Collection,
        "error" => ErrorFn,
        "current-dateTime" => CurrentDateTime,
        "current-date" => CurrentDate,
        "trace" => Trace,
        "compare" => Compare,
        "string-to-codepoints" => StringToCodepoints,
        "codepoints-to-string" => CodepointsToString,
        _ => return None,
    })
}

/// Allowed argument count: (min, max); `max == usize::MAX` means
/// variadic.
pub fn arity(b: Builtin) -> (usize, usize) {
    use Builtin::*;
    match b {
        TrueFn | FalseFn | Position | Last | CurrentDateTime | CurrentDate => (0, 0),
        StringFn | NumberFn | NameFn | LocalName | NodeName | Root | NormalizeSpace
        | StringLength => (0, 1),
        Collection => (0, 1),
        ErrorFn => (0, 2),
        Count | Avg | Min | Max | DistinctValues | Empty | Exists | Reverse | Data | Not
        | BooleanFn | Abs | Floor | Ceiling | Round | UpperCase | LowerCase | ZeroOrOne
        | OneOrMore | ExactlyOne | Unordered | YearFromDateTime | MonthFromDateTime
        | DayFromDateTime | HoursFromDateTime | MinutesFromDateTime | SecondsFromDateTime
        | YearFromDate | MonthFromDate | DayFromDate | Doc | Cast(_) | XqaPaths | XqaCube => (1, 1),
        Sum | RoundHalfToEven => (1, 2),
        Trace | XqaMovingSum | XqaMovingAvg | Compare => (2, 2),
        StringToCodepoints | CodepointsToString => (1, 1),
        Substring => (2, 3),
        Subsequence => (2, 3),
        StringJoin | Contains | StartsWith | EndsWith | SubstringBefore | SubstringAfter
        | Remove | IndexOf | DeepEqual => (2, 2),
        InsertBefore | Translate => (3, 3),
        Concat => (2, usize::MAX),
    }
}

/// Context handed to builtins that need the focus or the dynamic
/// context.
pub struct FnCtx<'a> {
    /// Current focus, if any.
    pub focus: Option<&'a Focus>,
    /// The dynamic context.
    pub dynamic: &'a DynamicContext,
}

/// Evaluate a builtin over already-evaluated arguments.
pub fn dispatch(b: Builtin, mut args: Vec<Sequence>, cx: &FnCtx<'_>) -> EngineResult<Sequence> {
    use Builtin::*;
    match b {
        Count => Ok(Sequence::one(Item::from(args[0].len() as i64))),
        Sum => {
            let zero = if args.len() == 2 {
                args.pop().expect("arity checked")
            } else {
                Sequence::one(Item::from(0i64))
            };
            fn_sum(&args[0], zero)
        }
        Avg => fn_avg(&args[0]),
        Min => fn_min_max(&args[0], true),
        Max => fn_min_max(&args[0], false),
        DistinctValues => fn_distinct_values(&args[0]),
        Empty => Ok(Sequence::one(Item::from(args[0].is_empty()))),
        Exists => Ok(Sequence::one(Item::from(!args[0].is_empty()))),
        Reverse => {
            let mut s = args.pop().expect("arity checked").into_vec();
            s.reverse();
            Ok(s.into())
        }
        Subsequence => fn_subsequence(args),
        InsertBefore => fn_insert_before(args),
        Remove => fn_remove(args),
        IndexOf => fn_index_of(&args[0], &args[1]),
        Data => Ok(xqa_xdm::atomize_sequence(&args[0])),
        StringJoin => {
            let sep = string_arg(&args[1], "string-join separator")?;
            let parts: Vec<String> = args[0].iter().map(|i| i.string_value()).collect();
            Ok(Sequence::one(Item::from(parts.join(&sep).as_str())))
        }
        ZeroOrOne => {
            if args[0].len() <= 1 {
                Ok(args.pop().expect("arity checked"))
            } else {
                Err(EngineError::dynamic(
                    ErrorCode::FORG0003,
                    "zero-or-one: more than one item",
                ))
            }
        }
        OneOrMore => {
            if args[0].is_empty() {
                Err(EngineError::dynamic(
                    ErrorCode::FORG0004,
                    "one-or-more: empty sequence",
                ))
            } else {
                Ok(args.pop().expect("arity checked"))
            }
        }
        ExactlyOne => {
            if args[0].len() == 1 {
                Ok(args.pop().expect("arity checked"))
            } else {
                Err(EngineError::dynamic(
                    ErrorCode::FORG0005,
                    format!("exactly-one: {} items", args[0].len()),
                ))
            }
        }
        Unordered => Ok(args.pop().expect("arity checked")),
        DeepEqual => Ok(Sequence::one(Item::from(deep_equal(&args[0], &args[1])))),
        Not => Ok(Sequence::one(Item::from(!effective_boolean_value(
            &args[0],
        )?))),
        BooleanFn => Ok(Sequence::one(Item::from(effective_boolean_value(
            &args[0],
        )?))),
        TrueFn => Ok(Sequence::one(Item::from(true))),
        FalseFn => Ok(Sequence::one(Item::from(false))),
        StringFn => {
            let target = zero_or_one_focus(args, cx, "string")?;
            Ok(Sequence::one(Item::from(
                target
                    .map(|i| i.string_value())
                    .unwrap_or_default()
                    .as_str(),
            )))
        }
        Concat => {
            let mut out = String::new();
            for a in &args {
                if let Some(v) = opt_atomic(a, "concat argument")? {
                    out.push_str(&v.string_value());
                }
            }
            Ok(Sequence::one(Item::from(out.as_str())))
        }
        Substring => fn_substring(args),
        StringLength => {
            let target = zero_or_one_focus(args, cx, "string-length")?;
            let s = target.map(|i| i.string_value()).unwrap_or_default();
            Ok(Sequence::one(Item::from(s.chars().count() as i64)))
        }
        UpperCase => {
            let s = string_arg(&args[0], "upper-case")?;
            Ok(Sequence::one(Item::from(s.to_uppercase().as_str())))
        }
        LowerCase => {
            let s = string_arg(&args[0], "lower-case")?;
            Ok(Sequence::one(Item::from(s.to_lowercase().as_str())))
        }
        Contains => {
            let (a, b) = (
                string_arg(&args[0], "contains")?,
                string_arg(&args[1], "contains")?,
            );
            Ok(Sequence::one(Item::from(a.contains(&b))))
        }
        StartsWith => {
            let (a, b) = (
                string_arg(&args[0], "starts-with")?,
                string_arg(&args[1], "starts-with")?,
            );
            Ok(Sequence::one(Item::from(a.starts_with(&b))))
        }
        EndsWith => {
            let (a, b) = (
                string_arg(&args[0], "ends-with")?,
                string_arg(&args[1], "ends-with")?,
            );
            Ok(Sequence::one(Item::from(a.ends_with(&b))))
        }
        NormalizeSpace => {
            let target = zero_or_one_focus(args, cx, "normalize-space")?;
            let s = target.map(|i| i.string_value()).unwrap_or_default();
            let normalized: Vec<&str> = s.split_ascii_whitespace().collect();
            Ok(Sequence::one(Item::from(normalized.join(" ").as_str())))
        }
        SubstringBefore => {
            let (a, b) = (
                string_arg(&args[0], "substring-before")?,
                string_arg(&args[1], "substring-before")?,
            );
            let out = a.find(&b).map(|i| &a[..i]).unwrap_or("");
            Ok(Sequence::one(Item::from(out)))
        }
        SubstringAfter => {
            let (a, b) = (
                string_arg(&args[0], "substring-after")?,
                string_arg(&args[1], "substring-after")?,
            );
            let out = a.find(&b).map(|i| &a[i + b.len()..]).unwrap_or("");
            Ok(Sequence::one(Item::from(out)))
        }
        Translate => {
            let s = string_arg(&args[0], "translate")?;
            let map_from: Vec<char> = string_arg(&args[1], "translate")?.chars().collect();
            let map_to: Vec<char> = string_arg(&args[2], "translate")?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match map_from.iter().position(|&f| f == c) {
                    Some(i) => map_to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Sequence::one(Item::from(out.as_str())))
        }
        NumberFn => {
            let target = zero_or_one_focus(args, cx, "number")?;
            let v = match target {
                None => f64::NAN,
                Some(item) => item.atomize().to_double().unwrap_or(f64::NAN),
            };
            Ok(Sequence::one(Item::from(v)))
        }
        Abs | Floor | Ceiling | Round => fn_numeric_unary(b, &args[0]),
        RoundHalfToEven => fn_round_half_even(args),
        NameFn | LocalName | NodeName => {
            let target = zero_or_one_focus(args, cx, "name")?;
            let node = match target {
                None => {
                    return Ok(if b == NodeName {
                        Sequence::Empty
                    } else {
                        Sequence::one(Item::from(""))
                    })
                }
                Some(item) => match item {
                    Item::Node(n) => n,
                    _ => {
                        return Err(EngineError::dynamic(
                            ErrorCode::XPTY0004,
                            "name() requires a node",
                        ))
                    }
                },
            };
            let name = node.name();
            match b {
                NodeName => Ok(name
                    .map(|q| Sequence::one(Item::from(q.to_string().as_str())))
                    .unwrap_or_default()),
                LocalName => Ok(Sequence::one(Item::from(
                    name.map(|q| q.local_part().to_string())
                        .unwrap_or_default()
                        .as_str(),
                ))),
                _ => Ok(Sequence::one(Item::from(
                    name.map(|q| q.to_string()).unwrap_or_default().as_str(),
                ))),
            }
        }
        Root => {
            let target = zero_or_one_focus(args, cx, "root")?;
            match target {
                None => Ok(Sequence::Empty),
                Some(Item::Node(n)) => {
                    let root = n.ancestors().last().unwrap_or(n);
                    Ok(Sequence::one(Item::Node(root)))
                }
                Some(_) => Err(EngineError::dynamic(
                    ErrorCode::XPTY0004,
                    "root() requires a node",
                )),
            }
        }
        Position => match cx.focus {
            Some(f) => Ok(Sequence::one(Item::from(f.position))),
            None => Err(no_focus("position()")),
        },
        Last => match cx.focus {
            Some(f) => Ok(Sequence::one(Item::from(f.size))),
            None => Err(no_focus("last()")),
        },
        YearFromDateTime | MonthFromDateTime | DayFromDateTime | HoursFromDateTime
        | MinutesFromDateTime | SecondsFromDateTime => fn_datetime_component(b, &args[0]),
        YearFromDate | MonthFromDate | DayFromDate => fn_date_component(b, &args[0]),
        Doc => {
            let uri = match opt_atomic(&args[0], "doc")? {
                None => return Ok(Sequence::Empty),
                Some(v) => v.string_value(),
            };
            match cx.dynamic.document(&uri) {
                Some(root) => Ok(Sequence::one(Item::Node(root.clone()))),
                None => Err(EngineError::dynamic(
                    ErrorCode::Other,
                    format!("doc: no document registered under {uri:?}"),
                )),
            }
        }
        Collection => {
            let name = if args.is_empty() {
                None
            } else {
                opt_atomic(&args[0], "collection")?.map(|v| v.string_value())
            };
            match cx.dynamic.collection(name.as_deref()) {
                Some(roots) => Ok(roots.iter().cloned().map(Item::Node).collect()),
                None => Err(EngineError::dynamic(
                    ErrorCode::Other,
                    format!("collection: not registered: {name:?}"),
                )),
            }
        }
        ErrorFn => {
            let description = args
                .get(1)
                .and_then(|s| s.first())
                .map(|i| i.string_value())
                .or_else(|| {
                    args.first()
                        .and_then(|s| s.first())
                        .map(|i| i.string_value())
                })
                .unwrap_or_else(|| "error raised by fn:error()".to_string());
            Err(EngineError::dynamic(ErrorCode::FOER0000, description))
        }
        CurrentDateTime => Ok(Sequence::one(Item::Atomic(AtomicValue::DateTime(
            cx.dynamic.current_datetime(),
        )))),
        CurrentDate => Ok(Sequence::one(Item::Atomic(AtomicValue::Date(
            cx.dynamic.current_datetime().date(),
        )))),
        Trace => {
            let label = string_arg(&args[1], "trace label")?;
            eprintln!("trace[{label}]: {} item(s)", args[0].len());
            Ok(args.swap_remove(0))
        }
        Compare => {
            let a = opt_atomic(&args[0], "compare")?;
            let b = opt_atomic(&args[1], "compare")?;
            match (a, b) {
                (Some(a), Some(b)) => {
                    let ord = a.string_value().cmp(&b.string_value());
                    Ok(Sequence::one(Item::from(match ord {
                        std::cmp::Ordering::Less => -1i64,
                        std::cmp::Ordering::Equal => 0,
                        std::cmp::Ordering::Greater => 1,
                    })))
                }
                _ => Ok(Sequence::Empty),
            }
        }
        StringToCodepoints => {
            let s = string_arg(&args[0], "string-to-codepoints")?;
            Ok(s.chars().map(|c| Item::from(c as i64)).collect())
        }
        CodepointsToString => {
            let mut out = String::new();
            for item in &args[0] {
                let v = item.atomize().to_double().map_err(EngineError::from)? as u32;
                let c = char::from_u32(v).ok_or_else(|| {
                    EngineError::dynamic(ErrorCode::FORG0001, format!("invalid code point {v}"))
                })?;
                out.push(c);
            }
            Ok(Sequence::one(Item::from(out.as_str())))
        }
        XqaMovingSum | XqaMovingAvg => fn_xqa_moving(b, &args[0], &args[1]),
        Cast(target) => match opt_atomic(&args[0], "constructor function")? {
            None => Ok(Sequence::Empty),
            Some(v) => Ok(Sequence::one(Item::Atomic(cast_atomic(&v, target)?))),
        },
        XqaPaths => fn_xqa_paths(&args[0]),
        XqaCube => fn_xqa_cube(&args[0]),
    }
}

fn no_focus(what: &str) -> EngineError {
    EngineError::dynamic(
        ErrorCode::Other,
        format!("{what} used with no context item"),
    )
}

/// Helpers: 0-or-1-item argument, falling back to the focus item when
/// the argument list is empty (the `fn:string()` / `fn:name()` pattern).
fn zero_or_one_focus(
    mut args: Vec<Sequence>,
    cx: &FnCtx<'_>,
    what: &str,
) -> EngineResult<Option<Item>> {
    if args.is_empty() {
        return match cx.focus {
            Some(f) => Ok(Some(f.item.clone())),
            None => Err(no_focus(what)),
        };
    }
    let arg = args.pop().expect("checked non-empty");
    match arg.len() {
        0 => Ok(None),
        1 => Ok(arg.into_iter().next()),
        n => Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: expected at most one item, got {n}"),
        )),
    }
}

/// An optional atomized singleton argument.
fn opt_atomic(seq: &[Item], what: &str) -> EngineResult<Option<AtomicValue>> {
    match seq {
        [] => Ok(None),
        [item] => Ok(Some(item.atomize())),
        _ => Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: expected at most one item, got {}", seq.len()),
        )),
    }
}

/// A string argument (empty sequence = "").
fn string_arg(seq: &[Item], what: &str) -> EngineResult<String> {
    Ok(opt_atomic(seq, what)?
        .map(|v| v.string_value())
        .unwrap_or_default())
}

/// Numeric accumulator over the tower integer → decimal → double.
enum NumAcc {
    Int(i64),
    Dec(Decimal),
    Dbl(f64),
}

impl NumAcc {
    fn add(self, v: &AtomicValue) -> EngineResult<NumAcc> {
        Ok(match (self, v) {
            (NumAcc::Int(a), AtomicValue::Integer(b)) => match a.checked_add(*b) {
                Some(s) => NumAcc::Int(s),
                None => NumAcc::Dec(
                    Decimal::from_i64(a)
                        .checked_add(&Decimal::from_i64(*b))
                        .map_err(EngineError::from)?,
                ),
            },
            (NumAcc::Int(a), AtomicValue::Decimal(b)) => NumAcc::Dec(
                Decimal::from_i64(a)
                    .checked_add(b)
                    .map_err(EngineError::from)?,
            ),
            (NumAcc::Dec(a), AtomicValue::Integer(b)) => NumAcc::Dec(
                a.checked_add(&Decimal::from_i64(*b))
                    .map_err(EngineError::from)?,
            ),
            (NumAcc::Dec(a), AtomicValue::Decimal(b)) => {
                NumAcc::Dec(a.checked_add(b).map_err(EngineError::from)?)
            }
            (acc, v) => {
                // Anything involving a double (or untyped data, which
                // casts to double for aggregation) collapses to f64.
                let base = match acc {
                    NumAcc::Int(a) => a as f64,
                    NumAcc::Dec(a) => a.to_f64(),
                    NumAcc::Dbl(a) => a,
                };
                NumAcc::Dbl(base + v.to_double().map_err(EngineError::from)?)
            }
        })
    }

    fn into_item(self) -> Item {
        match self {
            NumAcc::Int(v) => Item::from(v),
            NumAcc::Dec(v) => Item::Atomic(AtomicValue::Decimal(v)),
            NumAcc::Dbl(v) => Item::from(v),
        }
    }
}

/// Atomize and coerce to an aggregate-ready value (untyped → double).
fn aggregate_value(item: &Item, what: &str) -> EngineResult<AtomicValue> {
    let v = item.atomize();
    match v {
        AtomicValue::Untyped(ref s) => {
            let d = xqa_xdm::parse_double(s).map_err(|_| {
                EngineError::dynamic(
                    ErrorCode::FORG0006,
                    format!("{what}: cannot aggregate untyped value {s:?}"),
                )
            })?;
            Ok(AtomicValue::Double(d))
        }
        AtomicValue::Integer(_) | AtomicValue::Decimal(_) | AtomicValue::Double(_) => Ok(v),
        other => Err(EngineError::dynamic(
            ErrorCode::FORG0006,
            format!("{what}: {} values cannot be summed", other.atomic_type()),
        )),
    }
}

fn fn_sum(seq: &[Item], zero: Sequence) -> EngineResult<Sequence> {
    if seq.is_empty() {
        return Ok(zero);
    }
    let mut acc = NumAcc::Int(0);
    for item in seq {
        acc = acc.add(&aggregate_value(item, "sum")?)?;
    }
    Ok(Sequence::one(acc.into_item()))
}

fn fn_avg(seq: &[Item]) -> EngineResult<Sequence> {
    if seq.is_empty() {
        return Ok(Sequence::Empty);
    }
    let mut acc = NumAcc::Int(0);
    for item in seq {
        acc = acc.add(&aggregate_value(item, "avg")?)?;
    }
    let n = seq.len() as i64;
    let avg = match acc {
        NumAcc::Dbl(v) => Item::from(v / n as f64),
        NumAcc::Int(v) => {
            let d = Decimal::from_i64(v)
                .checked_div(&Decimal::from_i64(n))
                .map_err(EngineError::from)?;
            Item::Atomic(AtomicValue::Decimal(d))
        }
        NumAcc::Dec(v) => {
            let d = v
                .checked_div(&Decimal::from_i64(n))
                .map_err(EngineError::from)?;
            Item::Atomic(AtomicValue::Decimal(d))
        }
    };
    Ok(Sequence::one(avg))
}

fn fn_min_max(seq: &[Item], is_min: bool) -> EngineResult<Sequence> {
    if seq.is_empty() {
        return Ok(Sequence::Empty);
    }
    let mut best: Option<AtomicValue> = None;
    for item in seq {
        let mut v = item.atomize();
        // Untyped values are cast to double for min/max (F&O rule).
        if let AtomicValue::Untyped(s) = &v {
            v = AtomicValue::Double(xqa_xdm::parse_double(s).map_err(|_| {
                EngineError::dynamic(ErrorCode::FORG0006, format!("min/max: untyped value {s:?}"))
            })?);
        }
        // NaN poisons the whole aggregate.
        if matches!(v, AtomicValue::Double(d) if d.is_nan()) {
            return Ok(Sequence::one(Item::from(f64::NAN)));
        }
        best = Some(match best {
            None => v,
            Some(b) => {
                let ord = sort_compare(&v, &b).map_err(|_| {
                    EngineError::dynamic(ErrorCode::FORG0006, "min/max: incomparable values")
                })?;
                let take_new = if is_min { ord.is_lt() } else { ord.is_gt() };
                if take_new {
                    v
                } else {
                    b
                }
            }
        });
    }
    Ok(Sequence::one(Item::Atomic(best.expect("non-empty input"))))
}

fn fn_distinct_values(seq: &[Item]) -> EngineResult<Sequence> {
    let mut set = AtomicDistinctSet::new();
    let mut out = Vec::new();
    for item in seq {
        let v = item.atomize();
        if set.insert(&v) {
            out.push(Item::Atomic(v));
        }
    }
    Ok(out.into())
}

fn double_arg(seq: &[Item], what: &str) -> EngineResult<f64> {
    match opt_atomic(seq, what)? {
        Some(v) => Ok(v.to_double().map_err(EngineError::from)?),
        None => Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: empty argument"),
        )),
    }
}

fn fn_subsequence(mut args: Vec<Sequence>) -> EngineResult<Sequence> {
    let len = if args.len() == 3 {
        Some(double_arg(
            &args.pop().expect("arity checked"),
            "subsequence length",
        )?)
    } else {
        None
    };
    let start = double_arg(&args.pop().expect("arity checked"), "subsequence start")?;
    let seq = args.pop().expect("arity checked");
    let start_r = start.round();
    let end_r = match len {
        None => f64::INFINITY,
        Some(l) => start_r + l.round(),
    };
    if start_r.is_nan() || end_r.is_nan() {
        return Ok(Sequence::Empty);
    }
    Ok(seq
        .into_iter()
        .enumerate()
        .filter(|(i, _)| {
            let p = (*i + 1) as f64;
            p >= start_r && p < end_r
        })
        .map(|(_, item)| item)
        .collect())
}

fn fn_insert_before(mut args: Vec<Sequence>) -> EngineResult<Sequence> {
    let inserts = args.pop().expect("arity checked");
    let pos = double_arg(
        &args.pop().expect("arity checked"),
        "insert-before position",
    )? as i64;
    let target = args.pop().expect("arity checked");
    let pos = pos.max(1).min(target.len() as i64 + 1) as usize - 1;
    let mut out = target.into_vec();
    // Splice the insert sequence at `pos`.
    let tail = out.split_off(pos);
    out.extend(inserts);
    out.extend(tail);
    Ok(out.into())
}

fn fn_remove(mut args: Vec<Sequence>) -> EngineResult<Sequence> {
    let pos = double_arg(&args.pop().expect("arity checked"), "remove position")? as i64;
    let seq = args.pop().expect("arity checked");
    if pos >= 1 && (pos as usize) <= seq.len() {
        let mut out = seq.into_vec();
        out.remove(pos as usize - 1);
        return Ok(out.into());
    }
    Ok(seq)
}

fn fn_index_of(seq: &[Item], search: &[Item]) -> EngineResult<Sequence> {
    let needle = match opt_atomic(search, "index-of search value")? {
        None => return Ok(Sequence::Empty),
        Some(v) => v,
    };
    let mut out = Vec::new();
    for (i, item) in seq.iter().enumerate() {
        let v = item.atomize();
        // `eq` semantics with incomparable = no match.
        let (a, b) = match (&v, &needle) {
            (AtomicValue::Untyped(_), n) if n.is_numeric() => (
                v.cast_untyped_as(needle.atomic_type()).ok(),
                Some(needle.clone()),
            ),
            _ => (Some(v.clone()), Some(needle.clone())),
        };
        if let (Some(a), Some(b)) = (a, b) {
            if matches!(
                xqa_xdm::value_compare(&a, &b, xqa_xdm::CompOp::Eq),
                Ok(true)
            ) {
                out.push(Item::from((i + 1) as i64));
            }
        }
    }
    Ok(out.into())
}

fn fn_substring(mut args: Vec<Sequence>) -> EngineResult<Sequence> {
    let len = if args.len() == 3 {
        Some(double_arg(
            &args.pop().expect("arity checked"),
            "substring length",
        )?)
    } else {
        None
    };
    let start = double_arg(&args.pop().expect("arity checked"), "substring start")?;
    let s = string_arg(&args.pop().expect("arity checked"), "substring")?;
    let start_r = start.round();
    let end_r = match len {
        None => f64::INFINITY,
        Some(l) => start_r + l.round(),
    };
    if start_r.is_nan() || end_r.is_nan() {
        return Ok(Sequence::one(Item::from("")));
    }
    let out: String = s
        .chars()
        .enumerate()
        .filter(|(i, _)| {
            let p = (*i + 1) as f64;
            p >= start_r && p < end_r
        })
        .map(|(_, c)| c)
        .collect();
    Ok(Sequence::one(Item::from(out.as_str())))
}

fn fn_numeric_unary(b: Builtin, seq: &[Item]) -> EngineResult<Sequence> {
    let v = match opt_atomic(seq, "numeric function")? {
        None => return Ok(Sequence::Empty),
        Some(v) => v,
    };
    let v = match v {
        AtomicValue::Untyped(ref s) => {
            AtomicValue::Double(xqa_xdm::parse_double(s).map_err(EngineError::from)?)
        }
        other => other,
    };
    let out = match (b, v) {
        (Builtin::Abs, AtomicValue::Integer(i)) => AtomicValue::Integer(i.abs()),
        (Builtin::Abs, AtomicValue::Decimal(d)) => AtomicValue::Decimal(d.abs()),
        (Builtin::Abs, AtomicValue::Double(d)) => AtomicValue::Double(d.abs()),
        (Builtin::Floor, AtomicValue::Integer(i)) => AtomicValue::Integer(i),
        (Builtin::Floor, AtomicValue::Decimal(d)) => AtomicValue::Decimal(d.floor()),
        (Builtin::Floor, AtomicValue::Double(d)) => AtomicValue::Double(d.floor()),
        (Builtin::Ceiling, AtomicValue::Integer(i)) => AtomicValue::Integer(i),
        (Builtin::Ceiling, AtomicValue::Decimal(d)) => AtomicValue::Decimal(d.ceiling()),
        (Builtin::Ceiling, AtomicValue::Double(d)) => AtomicValue::Double(d.ceil()),
        (Builtin::Round, AtomicValue::Integer(i)) => AtomicValue::Integer(i),
        (Builtin::Round, AtomicValue::Decimal(d)) => AtomicValue::Decimal(d.round()),
        (Builtin::Round, AtomicValue::Double(d)) => {
            // round half *up* (toward +INF) per F&O fn:round on doubles
            AtomicValue::Double((d + 0.5).floor())
        }
        (_, other) => {
            return Err(EngineError::dynamic(
                ErrorCode::XPTY0004,
                format!("numeric function applied to {}", other.atomic_type()),
            ))
        }
    };
    Ok(Sequence::one(Item::Atomic(out)))
}

fn fn_round_half_even(mut args: Vec<Sequence>) -> EngineResult<Sequence> {
    let precision = if args.len() == 2 {
        double_arg(
            &args.pop().expect("arity checked"),
            "round-half-to-even precision",
        )? as i32
    } else {
        0
    };
    let v = match opt_atomic(&args.pop().expect("arity checked"), "round-half-to-even")? {
        None => return Ok(Sequence::Empty),
        Some(v) => v,
    };
    let out = match v {
        AtomicValue::Integer(i) if precision >= 0 => AtomicValue::Integer(i),
        AtomicValue::Decimal(d) if precision >= 0 => {
            // Reuse decimal round-to with half-even via adjust: emulate by
            // rounding at precision with ties-to-even on the final digit.
            let scaled = d.round_to(precision as u32);
            // round_to is half-away; correct exact-half cases to even.
            let diff = d.checked_sub(&scaled).map_err(EngineError::from)?;
            let half = Decimal::parse(&format!("0.{}5", "0".repeat(precision as usize)))
                .expect("static literal");
            if diff.abs() == half {
                // exact tie: choose the even neighbour
                let unit = Decimal::parse(&format!("0.{}1", "0".repeat(precision as usize)))
                    .expect("static literal");
                let down = scaled.checked_sub(&unit).map_err(EngineError::from)?;
                let scaled_digit = last_digit(&scaled, precision as u32);
                AtomicValue::Decimal(if scaled_digit % 2 == 0 { scaled } else { down })
            } else {
                AtomicValue::Decimal(scaled)
            }
        }
        AtomicValue::Double(d) => {
            let factor = 10f64.powi(precision);
            let x = d * factor;
            let rounded = if (x - x.floor() - 0.5).abs() < f64::EPSILON {
                let f = x.floor();
                if (f as i64) % 2 == 0 {
                    f
                } else {
                    f + 1.0
                }
            } else {
                x.round()
            };
            AtomicValue::Double(rounded / factor)
        }
        other => {
            return Err(EngineError::dynamic(
                ErrorCode::XPTY0004,
                format!("round-half-to-even applied to {}", other.atomic_type()),
            ))
        }
    };
    Ok(Sequence::one(Item::Atomic(out)))
}

fn last_digit(d: &Decimal, precision: u32) -> i128 {
    if d.scale() < precision {
        return 0;
    }
    (d.mantissa() / 10i128.pow(d.scale() - precision)).abs() % 10
}

fn fn_datetime_component(b: Builtin, seq: &[Item]) -> EngineResult<Sequence> {
    let v = match opt_atomic(seq, "dateTime component")? {
        None => return Ok(Sequence::Empty),
        Some(v) => v,
    };
    let dt = match v {
        AtomicValue::DateTime(dt) => dt,
        AtomicValue::Untyped(ref s) | AtomicValue::String(ref s) => {
            xqa_xdm::DateTime::parse(s).map_err(EngineError::from)?
        }
        other => {
            return Err(EngineError::dynamic(
                ErrorCode::XPTY0004,
                format!("expected xs:dateTime, got {}", other.atomic_type()),
            ))
        }
    };
    let out = match b {
        Builtin::YearFromDateTime => Item::from(dt.year as i64),
        Builtin::MonthFromDateTime => Item::from(dt.month as i64),
        Builtin::DayFromDateTime => Item::from(dt.day as i64),
        Builtin::HoursFromDateTime => Item::from(dt.hour as i64),
        Builtin::MinutesFromDateTime => Item::from(dt.minute as i64),
        Builtin::SecondsFromDateTime => {
            if dt.nanos == 0 {
                Item::Atomic(AtomicValue::Decimal(Decimal::from_i64(dt.second as i64)))
            } else {
                Item::Atomic(AtomicValue::Decimal(Decimal::from_parts(
                    dt.second as i128 * 1_000_000_000 + dt.nanos as i128,
                    9,
                )))
            }
        }
        _ => unreachable!("dispatched subset"),
    };
    Ok(Sequence::one(out))
}

fn fn_date_component(b: Builtin, seq: &[Item]) -> EngineResult<Sequence> {
    let v = match opt_atomic(seq, "date component")? {
        None => return Ok(Sequence::Empty),
        Some(v) => v,
    };
    let d = match v {
        AtomicValue::Date(d) => d,
        AtomicValue::Untyped(ref s) | AtomicValue::String(ref s) => {
            xqa_xdm::Date::parse(s).map_err(EngineError::from)?
        }
        other => {
            return Err(EngineError::dynamic(
                ErrorCode::XPTY0004,
                format!("expected xs:date, got {}", other.atomic_type()),
            ))
        }
    };
    let out = match b {
        Builtin::YearFromDate => Item::from(d.year as i64),
        Builtin::MonthFromDate => Item::from(d.month as i64),
        Builtin::DayFromDate => Item::from(d.day as i64),
        _ => unreachable!("dispatched subset"),
    };
    Ok(Sequence::one(out))
}

/// `xqa:paths($roots as element()*) as xs:string*` — all slash-joined
/// paths through a category forest (the paper's §5 `local:paths`
/// membership function, provided as a builtin).
fn fn_xqa_paths(seq: &[Item]) -> EngineResult<Sequence> {
    let mut out = Vec::new();
    for item in seq {
        let node = match item {
            Item::Node(n) if n.kind() == NodeKind::Element => n,
            _ => {
                return Err(EngineError::dynamic(
                    ErrorCode::XPTY0004,
                    "xqa:paths expects element nodes",
                ))
            }
        };
        collect_paths(node, None, &mut out);
    }
    Ok(out.into())
}

fn collect_paths(node: &NodeHandle, prefix: Option<&str>, out: &mut Vec<Item>) {
    let name = node.name().map(|q| q.to_string()).unwrap_or_default();
    let path = match prefix {
        Some(p) => format!("{p}/{name}"),
        None => name,
    };
    out.push(Item::from(path.as_str()));
    for child in node.children() {
        if child.kind() == NodeKind::Element {
            collect_paths(&child, Some(&path), out);
        }
    }
}

/// `xqa:moving-sum($values, $window)` / `xqa:moving-avg($values, $window)`
/// — for each position i, the sum (avg) of the values in the window
/// ending at i (size min(i, $window)). A single O(n) pass, versus the
/// O(n * w) nested iteration of the paper's Q8 formulation; compared in
/// the `ablation` bench.
fn fn_xqa_moving(b: Builtin, values: &[Item], window: &[Item]) -> EngineResult<Sequence> {
    let w = match opt_atomic(window, "window size")? {
        Some(v) => v.to_double().map_err(EngineError::from)? as i64,
        None => {
            return Err(EngineError::dynamic(
                ErrorCode::XPTY0004,
                "window size required",
            ))
        }
    };
    if w < 1 {
        return Err(EngineError::dynamic(
            ErrorCode::FORG0001,
            format!("window size must be positive, got {w}"),
        ));
    }
    let w = w as usize;
    let nums: Vec<f64> = values
        .iter()
        .map(|item| item.atomize().to_double().map_err(EngineError::from))
        .collect::<EngineResult<_>>()?;
    let mut out = Vec::with_capacity(nums.len());
    let mut rolling = 0.0f64;
    for i in 0..nums.len() {
        rolling += nums[i];
        if i >= w {
            rolling -= nums[i - w];
        }
        let len = (i + 1).min(w);
        let value = if b == Builtin::XqaMovingSum {
            rolling
        } else {
            rolling / len as f64
        };
        out.push(Item::from(value));
    }
    Ok(out.into())
}

/// `xqa:cube($dims as item()*) as element()*` — the powerset of the
/// dimension sequence, each subset wrapped in a `<dims>` element whose
/// children are copies of the chosen dimension items (§5 `local:cube`).
/// Atomic dimensions are wrapped in `<dim>` elements carrying their
/// string value.
fn fn_xqa_cube(seq: &[Item]) -> EngineResult<Sequence> {
    if seq.len() > 20 {
        return Err(EngineError::dynamic(
            ErrorCode::Other,
            format!(
                "xqa:cube: {} dimensions would produce 2^{} subsets",
                seq.len(),
                seq.len()
            ),
        ));
    }
    let n = seq.len() as u32;
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        let mut b = DocumentBuilder::new();
        b.start_element(QName::local("dims"));
        for (i, item) in seq.iter().enumerate() {
            if mask & (1 << i) != 0 {
                match item {
                    Item::Node(node) => {
                        b.copy_node(node);
                    }
                    Item::Atomic(v) => {
                        b.start_element(QName::local("dim"));
                        b.text(&v.string_value());
                        b.end_element();
                    }
                }
            }
        }
        b.end_element();
        let doc = b.finish();
        let dims = doc.root().children().next().expect("dims element built");
        out.push(Item::Node(dims));
    }
    Ok(out.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xdm::{seq, DocumentBuilder};

    fn cx_owned() -> DynamicContext {
        DynamicContext::new()
    }

    fn call(b: Builtin, args: Vec<Sequence>) -> EngineResult<Sequence> {
        let dynamic = cx_owned();
        let cx = FnCtx {
            focus: None,
            dynamic: &dynamic,
        };
        dispatch(b, args, &cx)
    }

    fn dec(s: &str) -> Item {
        Item::Atomic(AtomicValue::Decimal(Decimal::parse(s).unwrap()))
    }

    #[test]
    fn count_sum_avg() {
        let seq = seq![dec("65.00"), dec("43.00"), dec("57.00")];
        assert_eq!(
            call(Builtin::Count, vec![seq.clone()]).unwrap()[0].string_value(),
            "3"
        );
        assert_eq!(
            call(Builtin::Sum, vec![seq.clone()]).unwrap()[0].string_value(),
            "165"
        );
        assert_eq!(
            call(Builtin::Avg, vec![seq]).unwrap()[0].string_value(),
            "55"
        );
    }

    #[test]
    fn avg_of_untyped_goes_double() {
        let seq = seq![
            Item::Atomic(AtomicValue::untyped("1")),
            Item::Atomic(AtomicValue::untyped("2")),
        ];
        let out = call(Builtin::Avg, vec![seq]).unwrap();
        assert!(matches!(out[0], Item::Atomic(AtomicValue::Double(d)) if d == 1.5));
    }

    #[test]
    fn sum_empty_returns_zero_or_custom() {
        assert_eq!(
            call(Builtin::Sum, vec![seq![]]).unwrap()[0].string_value(),
            "0"
        );
        let custom = call(Builtin::Sum, vec![seq![], seq![Item::from("none")]]).unwrap();
        assert_eq!(custom[0].string_value(), "none");
        assert!(call(Builtin::Avg, vec![seq![]]).unwrap().is_empty());
    }

    #[test]
    fn sum_integer_overflow_widens() {
        let seq = seq![Item::from(i64::MAX), Item::from(1i64)];
        let out = call(Builtin::Sum, vec![seq]).unwrap();
        assert_eq!(out[0].string_value(), "9223372036854775808");
    }

    #[test]
    fn min_max_across_types() {
        let seq = seq![Item::from(3i64), dec("2.5"), Item::from(4.0f64)];
        assert_eq!(
            call(Builtin::Min, vec![seq.clone()]).unwrap()[0].string_value(),
            "2.5"
        );
        assert_eq!(
            call(Builtin::Max, vec![seq]).unwrap()[0].string_value(),
            "4"
        );
        // strings compare too
        let strs = seq![Item::from("pear"), Item::from("apple")];
        assert_eq!(
            call(Builtin::Min, vec![strs]).unwrap()[0].string_value(),
            "apple"
        );
        // NaN poisons
        let with_nan = seq![Item::from(1i64), Item::from(f64::NAN)];
        assert_eq!(
            call(Builtin::Min, vec![with_nan]).unwrap()[0].string_value(),
            "NaN"
        );
        // incomparable mix errors
        let mixed = seq![Item::from(1i64), Item::from("x")];
        assert!(call(Builtin::Min, vec![mixed]).is_err());
    }

    #[test]
    fn distinct_values_dedups_preserving_first() {
        let seq = seq![
            Item::from("b"),
            Item::from("a"),
            Item::from("b"),
            Item::from(2i64),
            Item::from(2.0f64),
        ];
        let out = call(Builtin::DistinctValues, vec![seq]).unwrap();
        let strs: Vec<String> = out.iter().map(|i| i.string_value()).collect();
        assert_eq!(strs, ["b", "a", "2"]);
    }

    #[test]
    fn sequence_utilities() {
        let seq: Sequence = (1..=5).map(Item::from).collect();
        let rev = call(Builtin::Reverse, vec![seq.clone()]).unwrap();
        assert_eq!(rev[0].string_value(), "5");
        let sub = call(
            Builtin::Subsequence,
            vec![seq.clone(), seq![Item::from(2i64)], seq![Item::from(2i64)]],
        )
        .unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].string_value(), "2");
        let ins = call(
            Builtin::InsertBefore,
            vec![seq.clone(), seq![Item::from(1i64)], seq![Item::from(0i64)]],
        )
        .unwrap();
        assert_eq!(ins[0].string_value(), "0");
        assert_eq!(ins.len(), 6);
        let rem = call(Builtin::Remove, vec![seq.clone(), seq![Item::from(1i64)]]).unwrap();
        assert_eq!(rem.len(), 4);
        assert_eq!(rem[0].string_value(), "2");
        let idx = call(Builtin::IndexOf, vec![seq, seq![Item::from(3i64)]]).unwrap();
        assert_eq!(idx[0].string_value(), "3");
    }

    #[test]
    fn cardinality_checks() {
        assert!(call(Builtin::ZeroOrOne, vec![seq![]]).is_ok());
        assert!(call(
            Builtin::ZeroOrOne,
            vec![seq![Item::from(1i64), Item::from(2i64)]]
        )
        .is_err());
        assert!(call(Builtin::OneOrMore, vec![seq![]]).is_err());
        assert!(call(Builtin::ExactlyOne, vec![seq![Item::from(1i64)]]).is_ok());
        assert!(call(Builtin::ExactlyOne, vec![seq![]]).is_err());
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            call(
                Builtin::Concat,
                vec![seq![Item::from("a")], seq![Item::from("b")], seq![]]
            )
            .unwrap()[0]
                .string_value(),
            "ab"
        );
        assert_eq!(
            call(
                Builtin::Substring,
                vec![seq![Item::from("motor car")], seq![Item::from(6i64)]]
            )
            .unwrap()[0]
                .string_value(),
            " car"
        );
        assert_eq!(
            call(
                Builtin::Substring,
                vec![
                    seq![Item::from("metadata")],
                    seq![Item::from(4i64)],
                    seq![Item::from(3i64)]
                ]
            )
            .unwrap()[0]
                .string_value(),
            "ada"
        );
        assert_eq!(
            call(Builtin::NormalizeSpace, vec![seq![Item::from("  a  b ")]]).unwrap()[0]
                .string_value(),
            "a b"
        );
        assert_eq!(
            call(
                Builtin::Translate,
                vec![
                    seq![Item::from("bar")],
                    seq![Item::from("abc")],
                    seq![Item::from("ABC")]
                ]
            )
            .unwrap()[0]
                .string_value(),
            "BAr"
        );
        assert_eq!(
            call(
                Builtin::SubstringBefore,
                vec![seq![Item::from("a/b/c")], seq![Item::from("/")]]
            )
            .unwrap()[0]
                .string_value(),
            "a"
        );
        assert_eq!(
            call(
                Builtin::SubstringAfter,
                vec![seq![Item::from("a/b/c")], seq![Item::from("/")]]
            )
            .unwrap()[0]
                .string_value(),
            "b/c"
        );
    }

    #[test]
    fn number_never_errors() {
        assert_eq!(
            call(Builtin::NumberFn, vec![seq![Item::from("42")]]).unwrap()[0].string_value(),
            "42"
        );
        assert_eq!(
            call(Builtin::NumberFn, vec![seq![Item::from("nope")]]).unwrap()[0].string_value(),
            "NaN"
        );
        assert_eq!(
            call(Builtin::NumberFn, vec![seq![]]).unwrap()[0].string_value(),
            "NaN"
        );
    }

    #[test]
    fn rounding_family() {
        assert_eq!(
            call(Builtin::Floor, vec![seq![dec("2.7")]]).unwrap()[0].string_value(),
            "2"
        );
        assert_eq!(
            call(Builtin::Ceiling, vec![seq![dec("2.1")]]).unwrap()[0].string_value(),
            "3"
        );
        assert_eq!(
            call(Builtin::Round, vec![seq![dec("2.5")]]).unwrap()[0].string_value(),
            "3"
        );
        // fn:round on double: round half toward +INF
        assert_eq!(
            call(Builtin::Round, vec![seq![Item::from(-2.5f64)]]).unwrap()[0].string_value(),
            "-2"
        );
        assert_eq!(
            call(Builtin::RoundHalfToEven, vec![seq![Item::from(2.5f64)]]).unwrap()[0]
                .string_value(),
            "2"
        );
        assert_eq!(
            call(Builtin::RoundHalfToEven, vec![seq![Item::from(3.5f64)]]).unwrap()[0]
                .string_value(),
            "4"
        );
        assert!(call(Builtin::Abs, vec![seq![]]).unwrap().is_empty());
    }

    #[test]
    fn datetime_components() {
        let dt = seq![Item::Atomic(AtomicValue::untyped("2004-01-31T11:32:07"))];
        assert_eq!(
            call(Builtin::YearFromDateTime, vec![dt.clone()]).unwrap()[0].string_value(),
            "2004"
        );
        assert_eq!(
            call(Builtin::MonthFromDateTime, vec![dt.clone()]).unwrap()[0].string_value(),
            "1"
        );
        assert_eq!(
            call(Builtin::DayFromDateTime, vec![dt.clone()]).unwrap()[0].string_value(),
            "31"
        );
        assert_eq!(
            call(Builtin::HoursFromDateTime, vec![dt.clone()]).unwrap()[0].string_value(),
            "11"
        );
        assert_eq!(
            call(Builtin::SecondsFromDateTime, vec![dt]).unwrap()[0].string_value(),
            "7"
        );
        let d = seq![Item::Atomic(AtomicValue::untyped("1993-06-15"))];
        assert_eq!(
            call(Builtin::YearFromDate, vec![d.clone()]).unwrap()[0].string_value(),
            "1993"
        );
        assert_eq!(
            call(Builtin::DayFromDate, vec![d]).unwrap()[0].string_value(),
            "15"
        );
    }

    #[test]
    fn xs_constructors() {
        assert_eq!(
            call(
                Builtin::Cast(CastTarget::Integer),
                vec![seq![Item::from("7")]]
            )
            .unwrap()[0]
                .string_value(),
            "7"
        );
        assert!(call(Builtin::Cast(CastTarget::Integer), vec![seq![]])
            .unwrap()
            .is_empty());
        assert!(call(
            Builtin::Cast(CastTarget::Integer),
            vec![seq![Item::from("x")]]
        )
        .is_err());
    }

    #[test]
    fn error_fn_raises() {
        let err = call(Builtin::ErrorFn, vec![]).unwrap_err();
        assert_eq!(err.code(), ErrorCode::FOER0000);
        let err = call(
            Builtin::ErrorFn,
            vec![seq![Item::from("code")], seq![Item::from("boom")]],
        )
        .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn resolve_names() {
        assert_eq!(resolve(None, "avg"), Some(Builtin::Avg));
        assert_eq!(resolve(Some("fn"), "deep-equal"), Some(Builtin::DeepEqual));
        assert_eq!(
            resolve(Some("xs"), "decimal"),
            Some(Builtin::Cast(CastTarget::Decimal))
        );
        assert_eq!(resolve(Some("xqa"), "paths"), Some(Builtin::XqaPaths));
        assert_eq!(resolve(None, "nonsense"), None);
        assert_eq!(resolve(Some("other"), "avg"), None);
    }

    #[test]
    fn xqa_paths_walks_category_forest() {
        // <categories><software><db><concurrency/></db><distributed/></software></categories>
        let mut b = DocumentBuilder::new();
        b.start_element(QName::local("categories"));
        b.start_element(QName::local("software"));
        b.start_element(QName::local("db"));
        b.start_element(QName::local("concurrency")).end_element();
        b.end_element();
        b.start_element(QName::local("distributed")).end_element();
        b.end_element();
        b.end_element();
        let doc = b.finish();
        let cats = doc.root().children().next().unwrap();
        let roots: Sequence = cats.children().map(Item::Node).collect();
        let out = call(Builtin::XqaPaths, vec![roots]).unwrap();
        let paths: Vec<String> = out.iter().map(|i| i.string_value()).collect();
        assert_eq!(
            paths,
            [
                "software",
                "software/db",
                "software/db/concurrency",
                "software/distributed"
            ]
        );
    }

    #[test]
    fn xqa_cube_powerset() {
        let dims = seq![Item::from("A"), Item::from("B")];
        let out = call(Builtin::XqaCube, vec![dims]).unwrap();
        assert_eq!(out.len(), 4);
        // Every subset is a <dims> element.
        for item in &out {
            let n = item.as_node().unwrap();
            assert_eq!(n.name().unwrap().local_part(), "dims");
        }
        // Sizes: {}, {A}, {B}, {A,B}
        let mut sizes: Vec<usize> = out
            .iter()
            .map(|i| i.as_node().unwrap().children().count())
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, [0, 1, 1, 2]);
        // Guard against exponential blowup.
        let many: Sequence = (0..25).map(Item::from).collect();
        assert!(call(Builtin::XqaCube, vec![many]).is_err());
    }

    #[test]
    fn focus_dependent_functions_error_without_focus() {
        assert!(call(Builtin::Position, vec![]).is_err());
        assert!(call(Builtin::Last, vec![]).is_err());
        assert!(call(Builtin::StringFn, vec![]).is_err());
    }

    #[test]
    fn arity_table_spot_checks() {
        assert_eq!(arity(Builtin::Count), (1, 1));
        assert_eq!(arity(Builtin::Concat), (2, usize::MAX));
        assert_eq!(arity(Builtin::Substring), (2, 3));
        assert_eq!(arity(Builtin::Position), (0, 0));
        assert_eq!(arity(Builtin::StringFn), (0, 1));
    }
}
