//! `cast as` / constructor-function conversions between atomic types.

use crate::ir::CastTarget;
use xqa_xdm::{
    parse_boolean, parse_double, AtomicValue, Date, DateTime, Decimal, ErrorCode, XdmError,
    XdmResult,
};

/// Cast one atomic value to the target type, per the XQuery 1.0 casting
/// table (restricted to the supported types).
pub fn cast_atomic(v: &AtomicValue, target: CastTarget) -> XdmResult<AtomicValue> {
    use AtomicValue as V;
    Ok(match target {
        CastTarget::String => V::string(v.string_value()),
        CastTarget::Untyped => V::untyped(v.string_value()),
        CastTarget::Boolean => match v {
            V::Boolean(b) => V::Boolean(*b),
            V::Integer(i) => V::Boolean(*i != 0),
            V::Decimal(d) => V::Boolean(!d.is_zero()),
            V::Double(d) => V::Boolean(*d != 0.0 && !d.is_nan()),
            V::String(s) | V::Untyped(s) => V::Boolean(parse_boolean(s)?),
            other => return cast_err(other, "xs:boolean"),
        },
        CastTarget::Integer => match v {
            V::Integer(i) => V::Integer(*i),
            V::Decimal(d) => V::Integer(d.to_i64()?),
            V::Double(d) => {
                if d.is_nan() || d.is_infinite() {
                    return Err(XdmError::new(
                        ErrorCode::FOAR0002,
                        "cannot cast NaN or INF to xs:integer",
                    ));
                }
                let t = d.trunc();
                if t < i64::MIN as f64 || t > i64::MAX as f64 {
                    return Err(XdmError::new(
                        ErrorCode::FOAR0002,
                        "integer overflow in cast",
                    ));
                }
                V::Integer(t as i64)
            }
            V::Boolean(b) => V::Integer(i64::from(*b)),
            V::String(s) | V::Untyped(s) => {
                let t = s.trim();
                let i = t.parse::<i64>().map_err(|_| {
                    XdmError::value_error(format!("cannot cast {t:?} to xs:integer"))
                })?;
                V::Integer(i)
            }
            other => return cast_err(other, "xs:integer"),
        },
        CastTarget::Decimal => match v {
            V::Decimal(d) => V::Decimal(*d),
            V::Integer(i) => V::Decimal(Decimal::from_i64(*i)),
            V::Double(d) => V::Decimal(Decimal::from_f64(*d)?),
            V::Boolean(b) => V::Decimal(Decimal::from_i64(i64::from(*b))),
            V::String(s) | V::Untyped(s) => V::Decimal(Decimal::parse(s)?),
            other => return cast_err(other, "xs:decimal"),
        },
        CastTarget::Double => match v {
            V::Double(d) => V::Double(*d),
            V::Integer(i) => V::Double(*i as f64),
            V::Decimal(d) => V::Double(d.to_f64()),
            V::Boolean(b) => V::Double(if *b { 1.0 } else { 0.0 }),
            V::String(s) | V::Untyped(s) => V::Double(parse_double(s)?),
            other => return cast_err(other, "xs:double"),
        },
        CastTarget::DateTime => match v {
            V::DateTime(dt) => V::DateTime(*dt),
            V::Date(d) => V::DateTime(DateTime::new(
                d.year,
                d.month,
                d.day,
                0,
                0,
                0,
                0,
                d.tz_offset_min,
            )?),
            V::String(s) | V::Untyped(s) => V::DateTime(DateTime::parse(s)?),
            other => return cast_err(other, "xs:dateTime"),
        },
        CastTarget::Date => match v {
            V::Date(d) => V::Date(*d),
            V::DateTime(dt) => V::Date(dt.date()),
            V::String(s) | V::Untyped(s) => V::Date(Date::parse(s)?),
            other => return cast_err(other, "xs:date"),
        },
    })
}

fn cast_err(v: &AtomicValue, target: &str) -> XdmResult<AtomicValue> {
    Err(XdmError::type_error(format!(
        "cannot cast {} to {target}",
        v.atomic_type()
    )))
}

/// Resolve a lexical type name (`xs:integer`, `integer`) to a cast
/// target.
pub fn cast_target_from_name(prefix: Option<&str>, local: &str) -> Option<CastTarget> {
    if !matches!(prefix, None | Some("xs")) {
        return None;
    }
    Some(match local {
        "string" => CastTarget::String,
        "untypedAtomic" => CastTarget::Untyped,
        "boolean" => CastTarget::Boolean,
        "integer" | "int" | "long" => CastTarget::Integer,
        "decimal" => CastTarget::Decimal,
        "double" | "float" => CastTarget::Double,
        "dateTime" => CastTarget::DateTime,
        "date" => CastTarget::Date,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> AtomicValue {
        AtomicValue::string(v)
    }

    #[test]
    fn string_round_trips() {
        let two = cast_atomic(&s("2"), CastTarget::Integer).unwrap();
        assert!(matches!(two, AtomicValue::Integer(2)));
        let back = cast_atomic(&two, CastTarget::String).unwrap();
        assert_eq!(back.string_value(), "2");
    }

    #[test]
    fn numeric_casts() {
        assert!(matches!(
            cast_atomic(&AtomicValue::Double(2.9), CastTarget::Integer).unwrap(),
            AtomicValue::Integer(2)
        ));
        assert!(matches!(
            cast_atomic(&AtomicValue::Double(-2.9), CastTarget::Integer).unwrap(),
            AtomicValue::Integer(-2)
        ));
        assert!(cast_atomic(&AtomicValue::Double(f64::NAN), CastTarget::Integer).is_err());
        assert!(matches!(
            cast_atomic(&s("59.95"), CastTarget::Decimal).unwrap(),
            AtomicValue::Decimal(_)
        ));
        assert!(cast_atomic(&s("abc"), CastTarget::Double).is_err());
    }

    #[test]
    fn boolean_casts() {
        assert!(matches!(
            cast_atomic(&s("true"), CastTarget::Boolean).unwrap(),
            AtomicValue::Boolean(true)
        ));
        assert!(matches!(
            cast_atomic(&s("0"), CastTarget::Boolean).unwrap(),
            AtomicValue::Boolean(false)
        ));
        assert!(matches!(
            cast_atomic(&AtomicValue::Double(f64::NAN), CastTarget::Boolean).unwrap(),
            AtomicValue::Boolean(false)
        ));
        assert!(cast_atomic(&s("maybe"), CastTarget::Boolean).is_err());
    }

    #[test]
    fn temporal_casts() {
        let dt = cast_atomic(&s("2004-01-31T11:32:07"), CastTarget::DateTime).unwrap();
        assert!(matches!(dt, AtomicValue::DateTime(_)));
        let d = cast_atomic(&dt, CastTarget::Date).unwrap();
        assert_eq!(d.string_value(), "2004-01-31");
        let dt2 = cast_atomic(&d, CastTarget::DateTime).unwrap();
        assert_eq!(dt2.string_value(), "2004-01-31T00:00:00");
        // date -> integer is nonsense
        assert!(cast_atomic(&d, CastTarget::Integer).is_err());
    }

    #[test]
    fn name_resolution() {
        assert_eq!(
            cast_target_from_name(Some("xs"), "integer"),
            Some(CastTarget::Integer)
        );
        assert_eq!(
            cast_target_from_name(None, "double"),
            Some(CastTarget::Double)
        );
        assert_eq!(cast_target_from_name(Some("xs"), "anyURI"), None);
        assert_eq!(cast_target_from_name(Some("my"), "integer"), None);
    }
}
