//! Structured trace events.
//!
//! A query moving through the engine emits a small stream of events —
//! parse, rewrites fired (with *where* they fired), compile, execute —
//! through a [`Tracer`] into a pluggable [`TraceSink`]. The stock sink
//! is [`TraceRing`], a bounded ring buffer that drops the oldest events
//! under pressure, so tracing is safe to leave enabled in a server.
//!
//! Everything here is std-only; events render to JSON by hand.

use crate::profile::Clock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The engine phase an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// Source text parsed into the AST.
    Parse,
    /// AST compiled into IR.
    Compile,
    /// A rewrite fired (detail says which, and where).
    RewriteFired,
    /// Scalar expressions lowered to bytecode (detail lists what
    /// compiled and what stayed interpreted).
    CompileExpr,
    /// A prepared query was executed.
    Execute,
}

impl TracePhase {
    /// The wire name of the phase.
    pub fn as_str(&self) -> &'static str {
        match self {
            TracePhase::Parse => "parse",
            TracePhase::Compile => "compile",
            TracePhase::RewriteFired => "rewrite-fired",
            TracePhase::CompileExpr => "compile-expr",
            TracePhase::Execute => "execute",
        }
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock reading when the event was emitted (nanoseconds).
    pub ts_nanos: u64,
    /// The query this event belongs to.
    pub query_id: u64,
    /// Which phase emitted it.
    pub phase: TracePhase,
    /// Human-readable detail.
    pub detail: String,
}

impl TraceEvent {
    /// Render the event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ts_ns\":{},\"query_id\":{},\"phase\":\"{}\",\"detail\":\"{}\"}}",
            self.ts_nanos,
            self.query_id,
            self.phase.as_str(),
            json_escape(&self.detail)
        )
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Where trace events go. Implementations must tolerate concurrent
/// emitters (the service traces from many worker threads).
pub trait TraceSink: std::fmt::Debug + Send + Sync {
    /// Consume one event.
    fn emit(&self, event: TraceEvent);
}

/// A bounded ring buffer of the most recent events. When full, the
/// oldest event is dropped and counted, never blocking the emitter.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace ring poisoned").len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace ring poisoned")
            .drain(..)
            .collect()
    }

    /// Render all buffered events (without draining) as a JSON array,
    /// one event per line.
    pub fn to_json(&self) -> String {
        let events = self.events.lock().expect("trace ring poisoned");
        let mut out = String::from("[\n");
        for (i, e) in events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&e.to_json());
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

impl TraceSink for TraceRing {
    fn emit(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace ring poisoned");
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

/// A handle that stamps events with a query id and clock reading and
/// forwards them to the sink. Cheap to clone (two `Arc`s).
#[derive(Debug, Clone)]
pub struct Tracer {
    query_id: u64,
    clock: Arc<dyn Clock>,
    sink: Arc<dyn TraceSink>,
}

impl Tracer {
    /// A tracer for one query.
    pub fn new(query_id: u64, clock: Arc<dyn Clock>, sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            query_id,
            clock,
            sink,
        }
    }

    /// The query id events are stamped with.
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Emit one event, stamped with the tracer's query id and the
    /// clock's current reading.
    pub fn emit(&self, phase: TracePhase, detail: impl Into<String>) {
        self.sink.emit(TraceEvent {
            ts_nanos: self.clock.now_nanos(),
            query_id: self.query_id,
            phase,
            detail: detail.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TickClock;

    fn tracer(ring: &Arc<TraceRing>) -> Tracer {
        Tracer::new(7, Arc::new(TickClock::new(10)), Arc::clone(ring) as _)
    }

    #[test]
    fn events_are_stamped_and_ordered() {
        let ring = Arc::new(TraceRing::new(16));
        let t = tracer(&ring);
        t.emit(TracePhase::Parse, "parsed");
        t.emit(TracePhase::Compile, "compiled");
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, TracePhase::Parse);
        assert_eq!(events[0].query_id, 7);
        assert_eq!(events[0].ts_nanos, 10);
        assert_eq!(events[1].ts_nanos, 20);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let ring = Arc::new(TraceRing::new(2));
        let t = tracer(&ring);
        t.emit(TracePhase::Parse, "a");
        t.emit(TracePhase::Compile, "b");
        t.emit(TracePhase::Execute, "c");
        assert_eq!(ring.dropped(), 1);
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].detail, "b");
        assert_eq!(events[1].detail, "c");
    }

    #[test]
    fn json_escapes_details() {
        let e = TraceEvent {
            ts_nanos: 1,
            query_id: 2,
            phase: TracePhase::RewriteFired,
            detail: "say \"hi\"\nagain\\".into(),
        };
        assert_eq!(
            e.to_json(),
            "{\"ts_ns\":1,\"query_id\":2,\"phase\":\"rewrite-fired\",\
             \"detail\":\"say \\\"hi\\\"\\nagain\\\\\"}"
        );
    }

    #[test]
    fn ring_renders_json_array() {
        let ring = Arc::new(TraceRing::new(4));
        let t = tracer(&ring);
        t.emit(TracePhase::Parse, "a");
        t.emit(TracePhase::Execute, "b");
        let json = ring.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"phase\"").count(), 2);
        assert_eq!(json.matches(",\n").count(), 1);
    }
}
