//! Engine error type: wraps static (compile) and dynamic (runtime)
//! failures under one umbrella so the public API returns a single error.

use std::fmt;
use xqa_frontend::SyntaxError;
use xqa_xdm::{ErrorCode, XdmError};

/// Any failure while compiling or evaluating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A parse error.
    Syntax(SyntaxError),
    /// A static error found while compiling (undefined variable,
    /// unknown function, wrong arity, out-of-scope reference).
    Static {
        /// W3C error code (e.g. `XPST0008`).
        code: ErrorCode,
        /// Description.
        message: String,
    },
    /// A dynamic (runtime) error.
    Dynamic(XdmError),
}

impl EngineError {
    /// Create a static error.
    pub fn stat(code: ErrorCode, message: impl Into<String>) -> EngineError {
        EngineError::Static {
            code,
            message: message.into(),
        }
    }

    /// Create a dynamic error.
    pub fn dynamic(code: ErrorCode, message: impl Into<String>) -> EngineError {
        EngineError::Dynamic(XdmError::new(code, message))
    }

    /// The W3C error code, for matching in tests.
    pub fn code(&self) -> ErrorCode {
        match self {
            EngineError::Syntax(_) => ErrorCode::XPST0003,
            EngineError::Static { code, .. } => *code,
            EngineError::Dynamic(e) => e.code,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Syntax(e) => write!(f, "{e}"),
            EngineError::Static { code, message } => write!(f, "static error [{code}]: {message}"),
            EngineError::Dynamic(e) => write!(f, "dynamic error {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError::Syntax(e)
    }
}

impl From<XdmError> for EngineError {
    fn from(e: XdmError) -> Self {
        EngineError::Dynamic(e)
    }
}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_extraction() {
        let e = EngineError::stat(ErrorCode::XPST0008, "undefined variable $x");
        assert_eq!(e.code(), ErrorCode::XPST0008);
        let d: EngineError = XdmError::new(ErrorCode::FOAR0001, "div by zero").into();
        assert_eq!(d.code(), ErrorCode::FOAR0001);
    }

    #[test]
    fn display_variants() {
        let e = EngineError::stat(ErrorCode::XPST0017, "unknown function");
        assert!(e.to_string().contains("XPST0017"));
        let d = EngineError::dynamic(ErrorCode::FORG0006, "bad ebv");
        assert!(d.to_string().contains("FORG0006"));
    }
}
