//! Batch-compiled expression bytecode.
//!
//! The streaming pipeline evaluates the same small scalar expressions —
//! comparisons, arithmetic, EBV tests — once per tuple, and walking the
//! [`Ir`] tree for each evaluation pays enum dispatch and `Box` chasing
//! on every node. This module lowers the *scalar subset* of the IR into
//! a flat register program ([`ExprProgram`]) once at plan time; the
//! pipeline then runs the program per tuple with a reused register
//! file, hitting type-specialized fast paths for singleton
//! integer/decimal/double operands.
//!
//! Lowering is per-expression and silent: an expression containing any
//! op outside the scalar subset (paths, function calls, constructors,
//! nested FLWORs, focus-dependent ops) stays on the tree-walker and is
//! recorded as [`ExprPlan::Interpreted`]. Compiled programs reuse the
//! exact scalar kernels of [`crate::eval`] (promotion ladder, overflow
//! and division errors, untyped handling), so results and error codes
//! are byte-identical to the tree-walker by construction.

use crate::error::{EngineError, EngineResult};
use crate::eval::{self, Env, Interpreter};
use crate::ir::{CastTarget, ClauseIr, CompiledQuery, FlworIr, GlobalSlot, Ir, Slot};
use std::sync::Arc;
use xqa_frontend::ast::ArithOp;
use xqa_xdm::{effective_boolean_value, AtomicValue, CompOp, Item, Sequence};

/// A register index within one program's register file.
type Reg = usize;

/// One instruction of a compiled expression program. Every op writes a
/// destination register; control flow is forward-only jumps (used for
/// `and`/`or` short-circuiting and `if`).
#[derive(Debug, Clone)]
enum BcOp {
    /// Load a constant-pool sequence.
    Const { dst: Reg, idx: usize },
    /// Read a frame slot (O(1) CoW clone).
    ReadSlot { dst: Reg, slot: Slot },
    /// Read an evaluated global variable.
    ReadGlobal { dst: Reg, idx: GlobalSlot },
    /// Numeric arithmetic with the int → decimal → double ladder.
    Arith {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Unary minus.
    Neg { dst: Reg, a: Reg },
    /// Value comparison (`eq`, `lt`, ...) over optional singletons.
    ValueComp {
        op: CompOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// General (existential) comparison (`=`, `<`, ...).
    GeneralComp {
        op: CompOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Effective boolean value, producing a singleton boolean.
    Ebv { dst: Reg, a: Reg },
    /// Integer range construction (`a to b`).
    Range { dst: Reg, a: Reg, b: Reg },
    /// `cast as` with the optional (`?`) empty-sequence rule.
    Cast {
        dst: Reg,
        a: Reg,
        target: CastTarget,
        optional: bool,
    },
    /// `castable as` — never raises.
    Castable {
        dst: Reg,
        a: Reg,
        target: CastTarget,
        optional: bool,
    },
    /// Move (take) a register's value.
    Move { dst: Reg, src: Reg },
    /// Jump when `cond` (a singleton boolean) is false.
    JumpIfFalse { cond: Reg, target: usize },
    /// Jump when `cond` (a singleton boolean) is true.
    JumpIfTrue { cond: Reg, target: usize },
    /// Unconditional jump.
    Jump { target: usize },
}

/// A flat register program compiled from the scalar subset of [`Ir`]:
/// an ops array, a constant pool, and slot/global reads. Compiled once
/// at plan time and cached on the plan; evaluated per tuple against a
/// caller-owned register file so batches reuse one allocation.
#[derive(Debug, Clone)]
pub struct ExprProgram {
    ops: Vec<BcOp>,
    consts: Vec<Sequence>,
    regs: usize,
    result: Reg,
}

impl ExprProgram {
    /// Number of registers the program needs; callers size the scratch
    /// register file with this once per operator, not per tuple.
    pub fn reg_count(&self) -> usize {
        self.regs
    }

    /// Run the program against the current tuple's environment.
    /// `regs` must hold at least [`ExprProgram::reg_count`] entries.
    pub(crate) fn eval(
        &self,
        interp: &Interpreter<'_>,
        env: &Env,
        regs: &mut [Sequence],
    ) -> EngineResult<Sequence> {
        let stats = interp.stats;
        let mut pc = 0;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                BcOp::Const { dst, idx } => regs[*dst] = self.consts[*idx].clone(),
                BcOp::ReadSlot { dst, slot } => regs[*dst] = env.slots[*slot].clone(),
                BcOp::ReadGlobal { dst, idx } => regs[*dst] = interp.globals[*idx].clone(),
                BcOp::Arith { op, dst, a, b } => {
                    use AtomicValue as V;
                    let out = match (regs[*a].as_slice(), regs[*b].as_slice()) {
                        ([Item::Atomic(V::Integer(x))], [Item::Atomic(V::Integer(y))]) => {
                            Sequence::one(Item::Atomic(eval::integer_arith(*op, *x, *y)?))
                        }
                        ([Item::Atomic(V::Double(x))], [Item::Atomic(V::Double(y))]) => {
                            Sequence::one(Item::Atomic(eval::double_arith(*op, *x, *y)?))
                        }
                        ([Item::Atomic(V::Decimal(x))], [Item::Atomic(V::Decimal(y))]) => {
                            Sequence::one(Item::Atomic(eval::decimal_arith(*op, x, y)?))
                        }
                        (l, r) => eval::eval_arith(*op, l, r)?,
                    };
                    regs[*dst] = out;
                }
                BcOp::Neg { dst, a } => regs[*dst] = eval::eval_neg(&regs[*a])?,
                BcOp::ValueComp { op, dst, a, b } => {
                    use AtomicValue as V;
                    let out = match (regs[*a].as_slice(), regs[*b].as_slice()) {
                        ([Item::Atomic(V::Integer(x))], [Item::Atomic(V::Integer(y))]) => {
                            stats.add_comparisons(1);
                            Sequence::one(op.matches(x.cmp(y)))
                        }
                        ([Item::Atomic(V::Double(x))], [Item::Atomic(V::Double(y))]) => {
                            stats.add_comparisons(1);
                            Sequence::one(double_comp(*op, *x, *y))
                        }
                        (l, r) => eval::eval_value_comp(*op, l, r, stats)?,
                    };
                    regs[*dst] = out;
                }
                BcOp::GeneralComp { op, dst, a, b } => {
                    use AtomicValue as V;
                    let out = match (regs[*a].as_slice(), regs[*b].as_slice()) {
                        ([Item::Atomic(V::Integer(x))], [Item::Atomic(V::Integer(y))]) => {
                            stats.add_comparisons(1);
                            Sequence::one(op.matches(x.cmp(y)))
                        }
                        ([Item::Atomic(V::Double(x))], [Item::Atomic(V::Double(y))]) => {
                            stats.add_comparisons(1);
                            Sequence::one(double_comp(*op, *x, *y))
                        }
                        (l, r) => eval::eval_general_comp(*op, l, r, stats)?,
                    };
                    regs[*dst] = out;
                }
                BcOp::Ebv { dst, a } => {
                    let b = match regs[*a].as_slice() {
                        [Item::Atomic(AtomicValue::Boolean(v))] => *v,
                        [] => false,
                        s => effective_boolean_value(s).map_err(EngineError::from)?,
                    };
                    regs[*dst] = Sequence::one(b);
                }
                BcOp::Range { dst, a, b } => {
                    let lo = eval::range_bound(&regs[*a], "range start")?;
                    let hi = eval::range_bound(&regs[*b], "range end")?;
                    regs[*dst] = match (lo, hi) {
                        (Some(lo), Some(hi)) if lo <= hi => (lo..=hi).map(Item::from).collect(),
                        _ => Sequence::Empty,
                    };
                }
                BcOp::Cast {
                    dst,
                    a,
                    target,
                    optional,
                } => regs[*dst] = eval::eval_cast(&regs[*a], *target, *optional)?,
                BcOp::Castable {
                    dst,
                    a,
                    target,
                    optional,
                } => regs[*dst] = eval::eval_castable(&regs[*a], *target, *optional),
                BcOp::Move { dst, src } => {
                    regs[*dst] = std::mem::replace(&mut regs[*src], Sequence::Empty)
                }
                BcOp::JumpIfFalse { cond, target } => {
                    if !reg_bool(&regs[*cond]) {
                        pc = *target;
                        continue;
                    }
                }
                BcOp::JumpIfTrue { cond, target } => {
                    if reg_bool(&regs[*cond]) {
                        pc = *target;
                        continue;
                    }
                }
                BcOp::Jump { target } => {
                    pc = *target;
                    continue;
                }
            }
            pc += 1;
        }
        Ok(std::mem::replace(&mut regs[self.result], Sequence::Empty))
    }
}

/// Comparison of two doubles under value-comparison rules: NaN is
/// incomparable, so every operator except `ne` is false.
fn double_comp(op: CompOp, x: f64, y: f64) -> bool {
    match x.partial_cmp(&y) {
        Some(ord) => op.matches(ord),
        None => op == CompOp::Ne,
    }
}

/// Read a singleton boolean written by an [`BcOp::Ebv`] op.
fn reg_bool(seq: &Sequence) -> bool {
    matches!(seq.as_slice(), [Item::Atomic(AtomicValue::Boolean(true))])
}

/// Plan-time decision for one clause expression, cached on the plan
/// alongside the clause list ([`FlworIr::programs`]).
#[derive(Debug, Clone)]
pub enum ExprPlan {
    /// The expression lowered to a register program.
    Compiled(ExprProgram),
    /// Lowering declined (an op outside the scalar subset); the
    /// tree-walker evaluates it and each evaluation counts as an
    /// `expr_fallback`.
    Interpreted,
}

/// Lower one expression, or `None` when any op falls outside the
/// scalar subset.
pub fn lower(ir: &Ir) -> Option<ExprProgram> {
    let mut p = ExprProgram {
        ops: Vec::new(),
        consts: Vec::new(),
        regs: 0,
        result: 0,
    };
    p.result = lower_into(&mut p, ir)?;
    Some(p)
}

fn fresh(p: &mut ExprProgram) -> Reg {
    let r = p.regs;
    p.regs += 1;
    r
}

fn push_const(p: &mut ExprProgram, value: Sequence) -> Reg {
    let idx = p.consts.len();
    p.consts.push(value);
    let dst = fresh(p);
    p.ops.push(BcOp::Const { dst, idx });
    dst
}

fn lower_into(p: &mut ExprProgram, ir: &Ir) -> Option<Reg> {
    Some(match ir {
        Ir::Str(s) => push_const(
            p,
            Sequence::one(Item::Atomic(AtomicValue::String(Arc::clone(s)))),
        ),
        Ir::Int(v) => push_const(p, Sequence::one(*v)),
        Ir::Dec(v) => push_const(p, Sequence::one(Item::Atomic(AtomicValue::Decimal(*v)))),
        Ir::Dbl(v) => push_const(p, Sequence::one(*v)),
        Ir::Empty => push_const(p, Sequence::Empty),
        Ir::Var(slot) => {
            let dst = fresh(p);
            p.ops.push(BcOp::ReadSlot { dst, slot: *slot });
            dst
        }
        Ir::Global(g) => {
            let dst = fresh(p);
            p.ops.push(BcOp::ReadGlobal { dst, idx: *g });
            dst
        }
        Ir::Arith(op, a, b) => {
            let a = lower_into(p, a)?;
            let b = lower_into(p, b)?;
            let dst = fresh(p);
            p.ops.push(BcOp::Arith { op: *op, dst, a, b });
            dst
        }
        Ir::Neg(a) => {
            let a = lower_into(p, a)?;
            let dst = fresh(p);
            p.ops.push(BcOp::Neg { dst, a });
            dst
        }
        Ir::ValueComp(op, a, b) => {
            let a = lower_into(p, a)?;
            let b = lower_into(p, b)?;
            let dst = fresh(p);
            p.ops.push(BcOp::ValueComp { op: *op, dst, a, b });
            dst
        }
        Ir::GeneralComp(op, a, b) => {
            let a = lower_into(p, a)?;
            let b = lower_into(p, b)?;
            let dst = fresh(p);
            p.ops.push(BcOp::GeneralComp { op: *op, dst, a, b });
            dst
        }
        Ir::Range(a, b) => {
            let a = lower_into(p, a)?;
            let b = lower_into(p, b)?;
            let dst = fresh(p);
            p.ops.push(BcOp::Range { dst, a, b });
            dst
        }
        Ir::And(a, b) => {
            // EBV of the left; a false result short-circuits past the
            // right side, exactly like the tree-walker (errors in the
            // right operand are then never raised).
            let ra = lower_into(p, a)?;
            let dst = fresh(p);
            p.ops.push(BcOp::Ebv { dst, a: ra });
            let jump_at = p.ops.len();
            p.ops.push(BcOp::JumpIfFalse {
                cond: dst,
                target: 0,
            });
            let rb = lower_into(p, b)?;
            p.ops.push(BcOp::Ebv { dst, a: rb });
            let end = p.ops.len();
            patch_jump(p, jump_at, end);
            dst
        }
        Ir::Or(a, b) => {
            let ra = lower_into(p, a)?;
            let dst = fresh(p);
            p.ops.push(BcOp::Ebv { dst, a: ra });
            let jump_at = p.ops.len();
            p.ops.push(BcOp::JumpIfTrue {
                cond: dst,
                target: 0,
            });
            let rb = lower_into(p, b)?;
            p.ops.push(BcOp::Ebv { dst, a: rb });
            let end = p.ops.len();
            patch_jump(p, jump_at, end);
            dst
        }
        Ir::If(cond, then, otherwise) => {
            let rc = lower_into(p, cond)?;
            let cb = fresh(p);
            p.ops.push(BcOp::Ebv { dst: cb, a: rc });
            let jump_else = p.ops.len();
            p.ops.push(BcOp::JumpIfFalse {
                cond: cb,
                target: 0,
            });
            let out = fresh(p);
            let rt = lower_into(p, then)?;
            p.ops.push(BcOp::Move { dst: out, src: rt });
            let jump_end = p.ops.len();
            p.ops.push(BcOp::Jump { target: 0 });
            let else_at = p.ops.len();
            patch_jump(p, jump_else, else_at);
            let re = lower_into(p, otherwise)?;
            p.ops.push(BcOp::Move { dst: out, src: re });
            let end = p.ops.len();
            patch_jump(p, jump_end, end);
            out
        }
        Ir::Cast(a, target, optional) => {
            let a = lower_into(p, a)?;
            let dst = fresh(p);
            p.ops.push(BcOp::Cast {
                dst,
                a,
                target: *target,
                optional: *optional,
            });
            dst
        }
        Ir::Castable(a, target, optional) => {
            let a = lower_into(p, a)?;
            let dst = fresh(p);
            p.ops.push(BcOp::Castable {
                dst,
                a,
                target: *target,
                optional: *optional,
            });
            dst
        }
        // Everything else — paths, function calls, constructors, nested
        // FLWORs, focus-dependent ops, sequence construction — stays on
        // the tree-walker.
        _ => return None,
    })
}

fn patch_jump(p: &mut ExprProgram, at: usize, target: usize) {
    match &mut p.ops[at] {
        BcOp::JumpIfFalse { target: t, .. }
        | BcOp::JumpIfTrue { target: t, .. }
        | BcOp::Jump { target: t } => *t = target,
        other => unreachable!("patching a non-jump op {other:?}"),
    }
}

/// What one lowering pass did, for the `compile-expr` trace event: the
/// clause labels that lowered and those that stayed interpreted.
#[derive(Debug, Default)]
pub struct LowerSummary {
    /// Clause labels whose expressions compiled to programs.
    pub lowered: Vec<String>,
    /// Clause labels whose expressions stayed on the tree-walker.
    pub interpreted: Vec<String>,
}

/// Lower every FLWOR clause expression in the query — body, globals,
/// and user functions, including nested FLWORs — filling each
/// [`FlworIr::programs`] table in place.
pub fn lower_query(q: &mut CompiledQuery) -> LowerSummary {
    let mut summary = LowerSummary::default();
    for g in &mut q.globals {
        visit_ir(&mut g.init, &mut summary);
    }
    for f in &mut q.functions {
        visit_ir(&mut f.body, &mut summary);
    }
    visit_ir(&mut q.body, &mut summary);
    summary
}

/// Lower the clause expressions of one FLWOR into its programs table.
fn lower_flwor(f: &mut FlworIr, s: &mut LowerSummary) {
    f.programs = f
        .clauses
        .iter()
        .map(|clause| {
            let (label, expr) = match clause {
                ClauseIr::For { slot, expr, .. } => (format!("for slot{slot}"), expr),
                ClauseIr::Let { slot, expr, .. } => (format!("let slot{slot}"), expr),
                ClauseIr::Where(cond) => ("where".to_string(), cond),
                _ => return None,
            };
            match lower(expr) {
                Some(program) => {
                    s.lowered.push(label);
                    Some(ExprPlan::Compiled(program))
                }
                None => {
                    s.interpreted.push(label);
                    Some(ExprPlan::Interpreted)
                }
            }
        })
        .collect();
}

fn visit_ir(ir: &mut Ir, s: &mut LowerSummary) {
    use crate::ir::{AttrPartIr, ContentIr, PathStartIr, StepIr};
    match ir {
        Ir::Str(_)
        | Ir::Int(_)
        | Ir::Dec(_)
        | Ir::Dbl(_)
        | Ir::Empty
        | Ir::Var(_)
        | Ir::Global(_)
        | Ir::ContextItem
        | Ir::Comment(_)
        | Ir::Pi(..) => {}
        Ir::Seq(items) => items.iter_mut().for_each(|i| visit_ir(i, s)),
        Ir::Range(a, b)
        | Ir::Arith(_, a, b)
        | Ir::GeneralComp(_, a, b)
        | Ir::ValueComp(_, a, b)
        | Ir::NodeComp(_, a, b)
        | Ir::And(a, b)
        | Ir::Or(a, b)
        | Ir::SetOp(_, a, b) => {
            visit_ir(a, s);
            visit_ir(b, s);
        }
        Ir::Neg(a) | Ir::InstanceOf(a, _) | Ir::Cast(a, ..) | Ir::Castable(a, ..) => visit_ir(a, s),
        Ir::If(c, t, e) => {
            visit_ir(c, s);
            visit_ir(t, s);
            visit_ir(e, s);
        }
        Ir::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            bindings.iter_mut().for_each(|(_, e)| visit_ir(e, s));
            visit_ir(satisfies, s);
        }
        Ir::Flwor(f) => {
            lower_flwor(f, s);
            for clause in &mut f.clauses {
                visit_clause(clause, s);
            }
            visit_ir(&mut f.return_expr, s);
        }
        Ir::Path(p) => {
            if let PathStartIr::Expr(e) = &mut p.start {
                visit_ir(e, s);
            }
            for step in &mut p.steps {
                match step {
                    StepIr::Axis { predicates, .. } => {
                        predicates.iter_mut().for_each(|e| visit_ir(e, s))
                    }
                    StepIr::Expr { expr, predicates } => {
                        visit_ir(expr, s);
                        predicates.iter_mut().for_each(|e| visit_ir(e, s));
                    }
                }
            }
        }
        Ir::Filter { base, predicates } => {
            visit_ir(base, s);
            predicates.iter_mut().for_each(|e| visit_ir(e, s));
        }
        Ir::CallBuiltin(_, args) | Ir::CallUser(_, args) => {
            args.iter_mut().for_each(|e| visit_ir(e, s))
        }
        Ir::Element(el) => {
            for (_, parts) in &mut el.attributes {
                for part in parts {
                    if let AttrPartIr::Enclosed(e) = part {
                        visit_ir(e, s);
                    }
                }
            }
            for part in &mut el.content {
                match part {
                    ContentIr::Literal(_) => {}
                    ContentIr::Enclosed(e) | ContentIr::Child(e) => visit_ir(e, s),
                }
            }
        }
        Ir::Attribute { value, .. } => {
            if let Some(v) = value {
                visit_ir(v, s);
            }
        }
        Ir::Text(content) => {
            if let Some(c) = content {
                visit_ir(c, s);
            }
        }
    }
}

fn visit_clause(clause: &mut ClauseIr, s: &mut LowerSummary) {
    match clause {
        ClauseIr::For { expr, .. } | ClauseIr::Let { expr, .. } => visit_ir(expr, s),
        ClauseIr::Where(cond) => visit_ir(cond, s),
        ClauseIr::Count { .. } => {}
        ClauseIr::Window(w) => {
            visit_ir(&mut w.expr, s);
            visit_ir(&mut w.start.when, s);
            if let Some(end) = &mut w.end {
                visit_ir(&mut end.when, s);
            }
        }
        ClauseIr::GroupBy(g) => {
            for key in &mut g.keys {
                visit_ir(&mut key.expr, s);
            }
            for nest in &mut g.nests {
                visit_ir(&mut nest.expr, s);
                if let Some(ob) = &mut nest.order_by {
                    for spec in &mut ob.specs {
                        visit_ir(&mut spec.expr, s);
                    }
                }
            }
        }
        ClauseIr::OrderBy(ob) => {
            for spec in &mut ob.specs {
                visit_ir(&mut spec.expr, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use xqa_frontend::parse_query;

    fn body_of(src: &str) -> Ir {
        compile::compile(&parse_query(src).expect("parse"))
            .expect("compile")
            .body
    }

    #[test]
    fn scalar_subset_lowers() {
        for src in [
            "1 + 2",
            "1.5 * 2.5",
            "1e0 div 2e0",
            "-(3)",
            "1 eq 2",
            "1 = 2",
            "1 to 10",
            "\"a\" lt \"b\"",
            "if (1 lt 2) then 3 else 4",
            "1 lt 2 and 3 lt 4",
            "1 lt 2 or 3 lt 4",
            "\"1\" cast as xs:integer",
            "\"x\" castable as xs:integer",
        ] {
            assert!(lower(&body_of(src)).is_some(), "{src} must lower");
        }
    }

    #[test]
    fn uncovered_ops_decline() {
        for src in ["//a", "count((1,2))", "(1, 2)", "<e/>", "."] {
            assert!(lower(&body_of(src)).is_none(), "{src} must not lower");
        }
    }

    #[test]
    fn flwor_clause_table_is_aligned_with_clauses() {
        let mut q = compile::compile(
            &parse_query("for $x in 1 to 9 let $m := $x mod 3 where $m = 0 return $x")
                .expect("parse"),
        )
        .expect("compile");
        let summary = lower_query(&mut q);
        let Ir::Flwor(f) = &q.body else {
            panic!("expected a FLWOR body");
        };
        assert_eq!(f.programs.len(), f.clauses.len());
        assert!(f
            .programs
            .iter()
            .all(|p| matches!(p, Some(ExprPlan::Compiled(_)))));
        assert_eq!(summary.lowered.len(), 3);
        assert!(summary.interpreted.is_empty());
    }

    #[test]
    fn path_expressions_stay_interpreted() {
        let mut q = compile::compile(
            &parse_query("for $x in //a where $x/b = 1 return $x").expect("parse"),
        )
        .expect("compile");
        let summary = lower_query(&mut q);
        assert_eq!(summary.lowered.len(), 0);
        assert_eq!(summary.interpreted.len(), 2);
    }
}
