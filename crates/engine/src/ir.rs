//! Compiled intermediate representation.
//!
//! The compiler lowers the AST into this IR, resolving:
//! - variable references to *frame slots* (indices into a flat
//!   per-invocation environment), enforcing the paper's §3.2 scoping
//!   rule at compile time;
//! - function names to builtin ids or user-function indices;
//! - decimal literals to exact [`Decimal`] values;
//! - AST names to interned [`QName`]s.
//!
//! The evaluator walks this IR directly; FLWOR clauses form an explicit
//! tuple-stream pipeline mirroring the paper's §3.1 description.

use crate::functions::Builtin;
use xqa_frontend::ast::{ArithOp, NodeComparison, Quantifier, SetOp};
use xqa_xdm::{CompOp, Decimal, QName};

/// Index of a variable slot in the current frame.
pub type Slot = usize;

/// Index of a global (prolog-declared) variable.
pub type GlobalSlot = usize;

/// Index of a user-declared function.
pub type FunctionId = usize;

/// A compiled expression.
#[derive(Debug, Clone)]
pub enum Ir {
    /// String constant.
    Str(std::sync::Arc<str>),
    /// Integer constant.
    Int(i64),
    /// Decimal constant.
    Dec(Decimal),
    /// Double constant.
    Dbl(f64),
    /// The empty sequence.
    Empty,
    /// Sequence concatenation.
    Seq(Vec<Ir>),
    /// A local variable.
    Var(Slot),
    /// A global variable.
    Global(GlobalSlot),
    /// The context item (`.`).
    ContextItem,
    /// `a to b`.
    Range(Box<Ir>, Box<Ir>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<Ir>, Box<Ir>),
    /// Unary minus (unary plus folds away).
    Neg(Box<Ir>),
    /// General comparison (existential).
    GeneralComp(CompOp, Box<Ir>, Box<Ir>),
    /// Value comparison (singleton).
    ValueComp(CompOp, Box<Ir>, Box<Ir>),
    /// Node comparison.
    NodeComp(NodeComparison, Box<Ir>, Box<Ir>),
    /// Short-circuit conjunction.
    And(Box<Ir>, Box<Ir>),
    /// Short-circuit disjunction.
    Or(Box<Ir>, Box<Ir>),
    /// `union` / `intersect` / `except` over node sequences.
    SetOp(SetOp, Box<Ir>, Box<Ir>),
    /// Conditional.
    If(Box<Ir>, Box<Ir>, Box<Ir>),
    /// `some`/`every ... satisfies`.
    Quantified {
        /// `some` or `every`.
        kind: Quantifier,
        /// Bindings evaluated left to right.
        bindings: Vec<(Slot, Ir)>,
        /// The predicate.
        satisfies: Box<Ir>,
    },
    /// A FLWOR pipeline.
    Flwor(Box<FlworIr>),
    /// A path expression.
    Path(Box<PathIr>),
    /// Predicates over an arbitrary base.
    Filter {
        /// Base expression.
        base: Box<Ir>,
        /// Predicates applied left to right.
        predicates: Vec<Ir>,
    },
    /// Call to a built-in function.
    CallBuiltin(Builtin, Vec<Ir>),
    /// Call to a user-declared function.
    CallUser(FunctionId, Vec<Ir>),
    /// Direct or computed element constructor.
    Element(Box<ElementIr>),
    /// Computed attribute constructor.
    Attribute {
        /// Attribute name.
        name: QName,
        /// Value expression.
        value: Option<Box<Ir>>,
    },
    /// Computed text constructor.
    Text(Option<Box<Ir>>),
    /// Comment constructor (direct form has constant text).
    Comment(std::sync::Arc<str>),
    /// PI constructor.
    Pi(QName, std::sync::Arc<str>),
    /// `instance of` check.
    InstanceOf(Box<Ir>, SeqTypeIr),
    /// `cast as` (target type, empty-allowed flag).
    Cast(Box<Ir>, CastTarget, bool),
    /// `castable as` (target type, empty-allowed flag).
    Castable(Box<Ir>, CastTarget, bool),
}

/// A compiled element constructor (direct or computed).
#[derive(Debug, Clone)]
pub struct ElementIr {
    /// Element name.
    pub name: QName,
    /// Attributes: name plus value-template parts.
    pub attributes: Vec<(QName, Vec<AttrPartIr>)>,
    /// Content parts in document order.
    pub content: Vec<ContentIr>,
}

/// One part of an attribute value template.
#[derive(Debug, Clone)]
pub enum AttrPartIr {
    /// Literal text.
    Literal(std::sync::Arc<str>),
    /// `{ expr }` — atomized and space-joined.
    Enclosed(Ir),
}

/// One part of element content.
#[derive(Debug, Clone)]
pub enum ContentIr {
    /// Literal text.
    Literal(std::sync::Arc<str>),
    /// `{ expr }` — inserted per the construction rules.
    Enclosed(Ir),
    /// A nested constructor.
    Child(Ir),
}

/// Cast target types supported by `cast as` and constructor functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastTarget {
    /// `xs:string`
    String,
    /// `xs:untypedAtomic`
    Untyped,
    /// `xs:boolean`
    Boolean,
    /// `xs:integer`
    Integer,
    /// `xs:decimal`
    Decimal,
    /// `xs:double`
    Double,
    /// `xs:dateTime`
    DateTime,
    /// `xs:date`
    Date,
}

/// A compiled sequence type for runtime checks.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqTypeIr {
    /// Item test.
    pub item: ItemTypeIr,
    /// Occurrence bounds.
    pub occurrence: OccurrenceIr,
}

/// Runtime item tests.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemTypeIr {
    /// `item()`
    AnyItem,
    /// `node()`
    AnyNode,
    /// `element(name?)`
    Element(Option<QName>),
    /// `attribute(name?)`
    Attribute(Option<QName>),
    /// `document-node()`
    Document,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    Pi,
    /// A named atomic type.
    Atomic(CastTarget),
    /// `xs:anyAtomicType` — any atomic value.
    AnyAtomic,
    /// `empty-sequence()`
    EmptySequence,
}

/// Occurrence bounds for sequence types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccurrenceIr {
    /// Exactly one item.
    One,
    /// Zero or one.
    Optional,
    /// Any number.
    ZeroOrMore,
    /// At least one.
    OneOrMore,
}

/// A compiled FLWOR expression.
#[derive(Debug, Clone)]
pub struct FlworIr {
    /// The clause pipeline, in source order.
    pub clauses: Vec<ClauseIr>,
    /// The lowered operator plan, one entry per clause (the compile-time
    /// pipeline planner's output; see [`plan_pipeline`]).
    pub plan: Vec<PlanOpIr>,
    /// Slot for the output positional variable (`return at $v`).
    pub return_at: Option<Slot>,
    /// The return expression.
    pub return_expr: Ir,
    /// Compile-time parallel eligibility: whether the outermost `for`
    /// binding sequence may be split into morsels executed by worker
    /// threads (see [`parallel_eligible`]). Whether that actually
    /// happens is decided at run time from the effective thread count
    /// and the input size.
    pub parallel: bool,
    /// Per-clause expression programs, aligned with `clauses` — the
    /// output of [`crate::bytecode::lower_query`]. `Some(Compiled)`
    /// for clause expressions lowered to register programs,
    /// `Some(Interpreted)` for eligible expressions the lowering
    /// declined, `None` for clause kinds without a scalar expression.
    /// Empty (the construction default) until the engine's expression
    /// compilation pass runs, or when `expr_eval` is `Tree`.
    pub programs: Vec<Option<crate::bytecode::ExprPlan>>,
    /// Planner row estimates, one per clause operator plus a trailing
    /// entry for the `ReturnAt` sink — the output of
    /// [`crate::estimate::stamp_estimates`]. `None` marks an operator
    /// the planner could not estimate. Empty (the construction
    /// default) until the engine's estimation pass runs.
    pub estimates: Vec<Option<u64>>,
    /// Join annotations, aligned with `clauses` — the output of
    /// [`crate::rewrite::detect_join_unnest`]. `Some` on a `let` or
    /// `where` clause whose nested equality predicate was unnested to a
    /// [`PlanOpIr::HashJoin`]; the clause's original IR is kept intact
    /// so the nested-loop plan remains available (`--join nested`
    /// differential baseline, and the per-probe fallback scan). Empty
    /// (the construction default) until the detection pass runs.
    pub joins: Vec<Option<JoinIr>>,
}

/// A join-graph annotation: one nested-FLWOR equality predicate proven
/// unnestable into a hash join (see [`crate::rewrite::detect_join_unnest`]
/// for the exact detection rules).
#[derive(Debug, Clone)]
pub struct JoinIr {
    /// What the probe result feeds: a `let` binding of all matching
    /// build items, or an existential `where` filter.
    pub kind: JoinKindIr,
    /// Slot of the inner binding variable (`$y`), bound per build item
    /// when key expressions and the residual predicate are evaluated.
    pub build_slot: Slot,
    /// The build-side source — independent of every slot the enclosing
    /// FLWOR binds, so it is evaluated once per FLWOR execution.
    pub build_src: Ir,
    /// The original equality predicate, re-evaluated per candidate to
    /// verify bucket matches (and wholesale on the fallback scan path).
    pub pred: Ir,
    /// The predicate side that references `$y` — atomized per build
    /// item into the hash-table keys.
    pub build_key: Ir,
    /// The predicate side independent of `$y` — atomized per probe
    /// tuple into lookup keys.
    pub probe_key: Ir,
    /// Whether the probe side is the predicate's left operand
    /// (evaluation-order bookkeeping: the runtime reproduces the
    /// nested-loop plan's first-pair error ordering exactly).
    pub probe_is_lhs: bool,
    /// `true` for a value comparison (`eq`, singleton atomization with
    /// XPTY0004 on more), `false` for a general comparison (`=`,
    /// existential over both atomized sequences).
    pub value_comp: bool,
    /// Human-readable `probe ~ build` key description for explain
    /// output and rewrite notes.
    pub key_desc: String,
}

/// The output shape of an unnested join.
#[derive(Debug, Clone)]
pub enum JoinKindIr {
    /// From `let $m := (for $y in S where <eq> return $y)`: bind `$m`
    /// to every matching build item, in build order.
    LetMany {
        /// The `let` clause's slot.
        slot: Slot,
        /// The `let` clause's declared type check, if any.
        ty: Option<SeqTypeIr>,
    },
    /// From `where some $y in S satisfies <eq>`: keep the tuple iff any
    /// build item matches (first match short-circuits, like the
    /// quantifier it replaces).
    ExistsSemi,
}

/// One operator of the compiled pipeline plan.
///
/// The planner lowers each [`ClauseIr`] to the Volcano-style operator
/// that will evaluate it in the streaming engine ([`crate::pipeline`]).
/// Streaming operators pass tuples through batch-at-a-time; pipeline
/// *breakers* must consume their entire input before emitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOpIr {
    /// `for` — streaming fan-out scan (one output tuple per item).
    ForScan,
    /// `let` — streaming 1:1 binder.
    LetBind,
    /// `where` — streaming filter.
    Filter,
    /// `count` — streaming ordinal binder.
    CountBind,
    /// window clause — streaming window scan.
    WindowScan,
    /// `group by` — pipeline breaker: hash aggregation over deep-equal
    /// keys (reuses [`crate::keys::GroupIndex`]).
    GroupConsume,
    /// `order by` — pipeline breaker: full sort, or a bounded binary
    /// heap when [`OrderByIr::limit`] is set (top-k in O(n log k)).
    OrderBy,
    /// An unnested join probe (`let` binding or existential filter with
    /// a [`JoinIr`] annotation): streams probe tuples against a build
    /// table materialized once per FLWOR execution.
    HashJoin,
}

impl PlanOpIr {
    /// Whether the operator streams tuples through (`true`) or must
    /// materialize its whole input first (`false`). `HashJoin` streams:
    /// only the build side (not the tuple stream) is materialized.
    pub fn streams(&self) -> bool {
        !matches!(self, PlanOpIr::GroupConsume | PlanOpIr::OrderBy)
    }
}

/// The compile-time pipeline planner: lower a FLWOR clause list to its
/// operator plan. Today the plan is a linear chain that mirrors the
/// clause order; the indirection is what lets rewrites (e.g. top-k
/// pushdown) annotate operators without touching clause semantics.
pub fn plan_pipeline(clauses: &[ClauseIr]) -> Vec<PlanOpIr> {
    clauses
        .iter()
        .map(|clause| match clause {
            ClauseIr::For { .. } => PlanOpIr::ForScan,
            ClauseIr::Let { .. } => PlanOpIr::LetBind,
            ClauseIr::Where(_) => PlanOpIr::Filter,
            ClauseIr::Count { .. } => PlanOpIr::CountBind,
            ClauseIr::Window(_) => PlanOpIr::WindowScan,
            ClauseIr::GroupBy(_) => PlanOpIr::GroupConsume,
            ClauseIr::OrderBy(_) => PlanOpIr::OrderBy,
        })
        .collect()
}

/// Compile-time analysis: may this clause chain run morsel-parallel
/// over the outermost `for` binding sequence?
///
/// The chain is eligible when it starts with a `for` and every clause
/// up to (and including) the first breaker is safe to evaluate on a
/// partition of the input:
///
/// - `for` / `let` / `where` / `window` are tuple-local — safe.
/// - `count $c` assigns a sequential ordinal mid-chain; partitioned
///   workers cannot see the global ordinal, so the chain is ineligible.
/// - `group by` partitions merge per-worker hash tables by key, which
///   requires the engine's canonical key equality; a `using` clause
///   (user-defined equality) defeats that merge, so it gates.
/// - `order by` (the other breaker) merges per-worker sorted runs with
///   the original ordinal as tie-breaker — always safe.
///
/// Clauses *after* the first breaker run serially on the coordinator
/// over the merged output, so they don't affect eligibility. `return
/// at $rank` ranks are assigned post-merge and are likewise safe.
pub fn parallel_eligible(clauses: &[ClauseIr]) -> bool {
    if !matches!(clauses.first(), Some(ClauseIr::For { .. })) {
        return false;
    }
    for clause in &clauses[1..] {
        match clause {
            ClauseIr::For { .. }
            | ClauseIr::Let { .. }
            | ClauseIr::Where(_)
            | ClauseIr::Window(_) => {}
            ClauseIr::Count { .. } => return false,
            ClauseIr::GroupBy(g) => return g.keys.iter().all(|k| k.using.is_none()),
            ClauseIr::OrderBy(_) => return true,
        }
    }
    true
}

/// One clause of the pipeline.
#[derive(Debug, Clone)]
pub enum ClauseIr {
    /// `for $v (at $i)? in e` — fan out.
    For {
        /// Slot bound per item.
        slot: Slot,
        /// Input-position slot (`at`).
        at_slot: Option<Slot>,
        /// Declared type check, if any.
        ty: Option<SeqTypeIr>,
        /// Binding sequence.
        expr: Ir,
    },
    /// `let $v := e`.
    Let {
        /// Slot bound to the whole sequence.
        slot: Slot,
        /// Declared type check, if any.
        ty: Option<SeqTypeIr>,
        /// Bound expression.
        expr: Ir,
    },
    /// `where e` — filter tuples.
    Where(Ir),
    /// `count $v` — number tuples at this pipeline point (XQuery 3.0).
    Count {
        /// Slot bound to the 1-based ordinal.
        slot: Slot,
    },
    /// `for tumbling|sliding window` (XQuery 3.0 windows).
    Window(Box<WindowIr>),
    /// `group by ... nest ...` — the paper's §3 operator.
    GroupBy(GroupByIr),
    /// `order by` — blocking sort.
    OrderBy(OrderByIr),
}

/// A compiled window clause.
#[derive(Debug, Clone)]
pub struct WindowIr {
    /// Overlapping (`sliding`) vs disjoint (`tumbling`) windows.
    pub sliding: bool,
    /// Slot bound to each window's item sequence.
    pub slot: Slot,
    /// The binding sequence.
    pub expr: Ir,
    /// Start condition.
    pub start: WindowCondIr,
    /// End condition.
    pub end: Option<WindowCondIr>,
    /// Drop windows whose end condition never matched.
    pub only_end: bool,
}

/// A compiled window boundary condition.
#[derive(Debug, Clone)]
pub struct WindowCondIr {
    /// Slot for the boundary item.
    pub item_slot: Option<Slot>,
    /// Slot for the boundary position.
    pub at_slot: Option<Slot>,
    /// Slot for the item before the boundary.
    pub previous_slot: Option<Slot>,
    /// Slot for the item after the boundary.
    pub next_slot: Option<Slot>,
    /// The `when` predicate.
    pub when: Ir,
}

/// The compiled `group by` clause.
#[derive(Debug, Clone)]
pub struct GroupByIr {
    /// Grouping keys.
    pub keys: Vec<GroupKeyIr>,
    /// Nesting bindings.
    pub nests: Vec<NestIr>,
}

/// One grouping key.
#[derive(Debug, Clone)]
pub struct GroupKeyIr {
    /// Key expression, evaluated per input tuple (pre-group scope).
    pub expr: Ir,
    /// Output slot for the grouping variable.
    pub slot: Slot,
    /// Custom equality function (§3.3 `using`): a user function of
    /// arity 2 returning `xs:boolean`.
    pub using: Option<FunctionId>,
}

/// One nesting binding.
#[derive(Debug, Clone)]
pub struct NestIr {
    /// Nest expression, evaluated per input tuple (pre-group scope).
    pub expr: Ir,
    /// Optional per-group ordering of input tuples (§3.4.1); key
    /// expressions are compiled in pre-group scope.
    pub order_by: Option<OrderByIr>,
    /// Output slot for the nesting variable.
    pub slot: Slot,
}

/// A compiled `order by` clause.
#[derive(Debug, Clone)]
pub struct OrderByIr {
    /// `stable` keyword present (we always sort stably; the flag is kept
    /// for explain output).
    pub stable: bool,
    /// Sort keys, major first.
    pub specs: Vec<OrderSpecIr>,
    /// Keep only the first `k` tuples of the sorted stream (top-k
    /// pushdown, set by [`crate::rewrite::pushdown_topk`]). The
    /// pipeline then runs a bounded binary heap instead of a full sort
    /// (the residual positional predicate still bounds the result).
    pub limit: Option<usize>,
}

/// One sort key.
#[derive(Debug, Clone)]
pub struct OrderSpecIr {
    /// Key expression (must atomize to 0 or 1 items).
    pub expr: Ir,
    /// Descending?
    pub descending: bool,
    /// Empty-sequence placement; `None` = the default (`empty least`).
    pub empty_greatest: bool,
}

/// A compiled path.
#[derive(Debug, Clone)]
pub struct PathIr {
    /// Starting point.
    pub start: PathStartIr,
    /// Steps, left to right.
    pub steps: Vec<StepIr>,
    /// How the leading step is executed: tree walk (default) or a
    /// document-store index lookup, chosen at plan time by
    /// [`crate::rewrite::annotate_index_scans`]. Runtime falls back to
    /// the walk per context item when no store covers its document.
    pub access: AccessPathIr,
}

/// The plan-time access-path decision for a path's leading step.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum AccessPathIr {
    /// Tree-walk the axis (always applicable).
    #[default]
    Walk,
    /// Resolve a leading `descendant::T` step as a label-range slice of
    /// `T`'s element postings in the document store.
    IndexDescendant,
    /// Resolve `descendant::T[c = literal]` via the typed-value index:
    /// candidate parents from the index, then the residual predicate
    /// re-evaluated so results stay byte-identical to the walk.
    IndexValueEq {
        /// The leaf child name the equality predicate probes.
        child: QName,
        /// The literal being compared against.
        probe: ValueProbeIr,
    },
}

/// The comparison literal of an index-resolved value predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueProbeIr {
    /// A string literal — exact codepoint equality on leaf values.
    Str(std::sync::Arc<str>),
    /// A numeric literal — `xs:double` equality on leaf values (the
    /// same promotion general comparison applies to untyped operands).
    Num(f64),
}

/// Where a path starts.
#[derive(Debug, Clone)]
pub enum PathStartIr {
    /// The context item.
    Context,
    /// The root of the context node's tree.
    Root,
    /// An arbitrary expression.
    Expr(Ir),
}

/// A compiled step.
#[derive(Debug, Clone)]
pub enum StepIr {
    /// An axis step.
    Axis {
        /// The axis.
        axis: xqa_frontend::ast::Axis,
        /// The node test.
        test: NodeTestIr,
        /// Predicates.
        predicates: Vec<Ir>,
    },
    /// A general expression step (evaluated per context item).
    Expr {
        /// The step expression.
        expr: Ir,
        /// Predicates.
        predicates: Vec<Ir>,
    },
}

/// A compiled node test.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTestIr {
    /// Match by name (principal node kind of the axis).
    Name(QName),
    /// `*`
    Wildcard,
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction(target?)`
    Pi(Option<String>),
    /// `element(name?)`
    Element(Option<QName>),
    /// `attribute(name?)`
    Attribute(Option<QName>),
    /// `document-node()`
    Document,
}

/// A compiled user function.
#[derive(Debug, Clone)]
pub struct UserFunction {
    /// Diagnostic name.
    pub name: String,
    /// Number of parameters (parameters occupy slots `0..arity`).
    pub arity: usize,
    /// Declared parameter types.
    pub param_types: Vec<Option<SeqTypeIr>>,
    /// Declared return type.
    pub return_type: Option<SeqTypeIr>,
    /// The body.
    pub body: Ir,
    /// Total frame size needed by the body.
    pub frame_size: usize,
}

/// A global-variable initializer.
#[derive(Debug, Clone)]
pub struct GlobalInit {
    /// Diagnostic name.
    pub name: String,
    /// The initializer expression.
    pub init: Ir,
    /// Frame size needed to evaluate it.
    pub frame_size: usize,
}

/// A fully compiled query: globals, functions, main body.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Global variable initializers, in declaration order.
    pub globals: Vec<GlobalInit>,
    /// User functions.
    pub functions: Vec<UserFunction>,
    /// The main expression.
    pub body: Ir,
    /// Frame size for the main expression.
    pub frame_size: usize,
    /// Whether `declare ordering unordered` was in effect (informational;
    /// the engine always produces the ordered result).
    pub ordered: bool,
    /// Requested degree of intra-query parallelism, copied from
    /// [`crate::EngineOptions::threads`] (0 = resolve at run time).
    pub threads: usize,
}
