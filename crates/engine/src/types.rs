//! Runtime sequence-type checks and the function conversion rules.

use crate::casts::cast_atomic;
use crate::error::{EngineError, EngineResult};
use crate::ir::{CastTarget, ItemTypeIr, OccurrenceIr, SeqTypeIr};
use xqa_xdm::{AtomicType, AtomicValue, ErrorCode, Item, NodeKind, Sequence};

/// Does `seq` match the sequence type?
pub fn matches_seq_type(seq: &[Item], ty: &SeqTypeIr) -> bool {
    if matches!(ty.item, ItemTypeIr::EmptySequence) {
        return seq.is_empty();
    }
    let len_ok = match ty.occurrence {
        OccurrenceIr::One => seq.len() == 1,
        OccurrenceIr::Optional => seq.len() <= 1,
        OccurrenceIr::ZeroOrMore => true,
        OccurrenceIr::OneOrMore => !seq.is_empty(),
    };
    len_ok && seq.iter().all(|i| matches_item_type(i, &ty.item))
}

/// Does one item match the item type?
pub fn matches_item_type(item: &Item, ty: &ItemTypeIr) -> bool {
    match (item, ty) {
        (_, ItemTypeIr::AnyItem) => true,
        (Item::Node(_), ItemTypeIr::AnyNode) => true,
        (Item::Node(n), ItemTypeIr::Element(name)) => {
            n.kind() == NodeKind::Element
                && name.as_ref().map(|q| n.name() == Some(q)).unwrap_or(true)
        }
        (Item::Node(n), ItemTypeIr::Attribute(name)) => {
            n.kind() == NodeKind::Attribute
                && name.as_ref().map(|q| n.name() == Some(q)).unwrap_or(true)
        }
        (Item::Node(n), ItemTypeIr::Document) => n.kind() == NodeKind::Document,
        (Item::Node(n), ItemTypeIr::Text) => n.kind() == NodeKind::Text,
        (Item::Node(n), ItemTypeIr::Comment) => n.kind() == NodeKind::Comment,
        (Item::Node(n), ItemTypeIr::Pi) => n.kind() == NodeKind::ProcessingInstruction,
        (Item::Atomic(_), ItemTypeIr::AnyAtomic) => true,
        (Item::Atomic(v), ItemTypeIr::Atomic(t)) => atomic_matches(v, *t),
        _ => false,
    }
}

/// Dynamic-type/target compatibility, honouring the XDM derivation
/// `xs:integer` ⊆ `xs:decimal`.
fn atomic_matches(v: &AtomicValue, t: CastTarget) -> bool {
    matches!(
        (v.atomic_type(), t),
        (AtomicType::String, CastTarget::String)
            | (AtomicType::Untyped, CastTarget::Untyped)
            | (AtomicType::Boolean, CastTarget::Boolean)
            | (
                AtomicType::Integer,
                CastTarget::Integer | CastTarget::Decimal
            )
            | (AtomicType::Decimal, CastTarget::Decimal)
            | (AtomicType::Double, CastTarget::Double)
            | (AtomicType::DateTime, CastTarget::DateTime)
            | (AtomicType::Date, CastTarget::Date)
    )
}

/// The XQuery *function conversion rules*, applied to arguments and
/// return values of user functions with declared types:
/// 1. if the expected item type is atomic, atomize;
/// 2. cast `xs:untypedAtomic` items to the expected type;
/// 3. promote numerics (`integer → decimal → double`);
/// 4. check the final sequence against the type.
pub fn function_conversion(seq: Sequence, ty: &SeqTypeIr, what: &str) -> EngineResult<Sequence> {
    let expects_atomic = matches!(ty.item, ItemTypeIr::Atomic(_) | ItemTypeIr::AnyAtomic);
    let converted: Sequence = if expects_atomic {
        let target = match ty.item {
            ItemTypeIr::Atomic(t) => Some(t),
            _ => None,
        };
        let mut out = Vec::with_capacity(seq.len());
        for item in &seq {
            let v = item.atomize();
            let v = match (&v, target) {
                (AtomicValue::Untyped(_), Some(t)) => cast_atomic(&v, t)?,
                (AtomicValue::Integer(_), Some(CastTarget::Double)) => {
                    cast_atomic(&v, CastTarget::Double)?
                }
                (AtomicValue::Integer(_), Some(CastTarget::Decimal)) => v,
                (AtomicValue::Decimal(_), Some(CastTarget::Double)) => {
                    cast_atomic(&v, CastTarget::Double)?
                }
                _ => v,
            };
            out.push(Item::Atomic(v));
        }
        out.into()
    } else {
        seq
    };
    if matches_seq_type(&converted, ty) {
        Ok(converted)
    } else {
        Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: value does not match declared type"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xdm::{DocumentBuilder, QName};

    fn st(item: ItemTypeIr, occurrence: OccurrenceIr) -> SeqTypeIr {
        SeqTypeIr { item, occurrence }
    }

    fn element(name: &str) -> Item {
        let mut b = DocumentBuilder::new();
        b.start_element(QName::local(name)).end_element();
        Item::Node(b.finish().root().children().next().unwrap())
    }

    #[test]
    fn occurrence_checks() {
        let one = st(ItemTypeIr::AnyItem, OccurrenceIr::One);
        assert!(matches_seq_type(&[Item::from(1i64)], &one));
        assert!(!matches_seq_type(&[], &one));
        let star = st(ItemTypeIr::AnyItem, OccurrenceIr::ZeroOrMore);
        assert!(matches_seq_type(&[], &star));
        let plus = st(ItemTypeIr::AnyItem, OccurrenceIr::OneOrMore);
        assert!(!matches_seq_type(&[], &plus));
        let opt = st(ItemTypeIr::AnyItem, OccurrenceIr::Optional);
        assert!(!matches_seq_type(
            &[Item::from(1i64), Item::from(2i64)],
            &opt
        ));
    }

    #[test]
    fn node_kind_tests() {
        let el = element("book");
        assert!(matches_item_type(&el, &ItemTypeIr::AnyNode));
        assert!(matches_item_type(&el, &ItemTypeIr::Element(None)));
        assert!(matches_item_type(
            &el,
            &ItemTypeIr::Element(Some(QName::local("book")))
        ));
        assert!(!matches_item_type(
            &el,
            &ItemTypeIr::Element(Some(QName::local("sale")))
        ));
        assert!(!matches_item_type(&el, &ItemTypeIr::Attribute(None)));
        assert!(!matches_item_type(&Item::from(1i64), &ItemTypeIr::AnyNode));
    }

    #[test]
    fn integer_is_a_decimal() {
        let i = Item::from(5i64);
        assert!(matches_item_type(
            &i,
            &ItemTypeIr::Atomic(CastTarget::Integer)
        ));
        assert!(matches_item_type(
            &i,
            &ItemTypeIr::Atomic(CastTarget::Decimal)
        ));
        assert!(!matches_item_type(
            &i,
            &ItemTypeIr::Atomic(CastTarget::Double)
        ));
        assert!(matches_item_type(&i, &ItemTypeIr::AnyAtomic));
    }

    #[test]
    fn empty_sequence_type() {
        let ty = st(ItemTypeIr::EmptySequence, OccurrenceIr::One);
        assert!(matches_seq_type(&[], &ty));
        assert!(!matches_seq_type(&[Item::from(1i64)], &ty));
    }

    #[test]
    fn conversion_casts_untyped_and_promotes() {
        let ty = st(ItemTypeIr::Atomic(CastTarget::Double), OccurrenceIr::One);
        let out = function_conversion(
            vec![Item::Atomic(AtomicValue::untyped("2.5"))].into(),
            &ty,
            "t",
        )
        .unwrap();
        assert!(matches!(out[0], Item::Atomic(AtomicValue::Double(d)) if d == 2.5));
        // integer promoted to double
        let out = function_conversion(vec![Item::from(2i64)].into(), &ty, "t").unwrap();
        assert!(matches!(out[0], Item::Atomic(AtomicValue::Double(_))));
        // node atomized then cast
        let el = {
            let mut b = DocumentBuilder::new();
            b.start_element(QName::local("price"))
                .text("9.5")
                .end_element();
            Item::Node(b.finish().root().children().next().unwrap())
        };
        let out = function_conversion(vec![el].into(), &ty, "t").unwrap();
        assert!(matches!(out[0], Item::Atomic(AtomicValue::Double(d)) if d == 9.5));
    }

    #[test]
    fn conversion_failures() {
        let ty = st(ItemTypeIr::Atomic(CastTarget::Integer), OccurrenceIr::One);
        assert!(
            function_conversion(Sequence::Empty, &ty, "t").is_err(),
            "cardinality"
        );
        assert!(
            function_conversion(vec![Item::from("abc")].into(), &ty, "t").is_err(),
            "string is not an integer (no implicit cast for typed values)"
        );
        let ok = function_conversion(
            vec![Item::Atomic(AtomicValue::untyped("7"))].into(),
            &ty,
            "t",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn node_types_pass_through_conversion() {
        let ty = st(ItemTypeIr::Element(None), OccurrenceIr::ZeroOrMore);
        let out = function_conversion(vec![element("c")].into(), &ty, "t").unwrap();
        assert!(matches!(out[0], Item::Node(_)));
    }
}
