//! Canonical hash keys for value- and deep-equality.
//!
//! Both `fn:distinct-values` and the paper's `group by` need to bucket
//! values by an equality that spans the numeric tower (`2` = `2.0` =
//! `xs:double(2)`), treats untyped data as strings, and (for grouping)
//! extends to whole sequences under `fn:deep-equal` semantics.
//!
//! We compute a *canonical key string* per value. The key is designed so
//! that equal values always produce equal keys; the converse may fail in
//! corner cases (e.g. two distinct `xs:decimal`s that collapse to the
//! same `f64`), so callers must verify bucket hits with the real
//! equality predicate. That combination gives hash-speed grouping with
//! exact semantics.

use std::collections::HashMap;
use xqa_xdm::{deep_equal, AtomicValue, Item, NodeHandle, NodeKind, Sequence};

/// Append the canonical key of one atomic value.
pub fn atomic_key(v: &AtomicValue, out: &mut String) {
    use std::fmt::Write;
    match v {
        AtomicValue::String(s) | AtomicValue::Untyped(s) => {
            out.push_str("s:");
            out.push_str(s);
        }
        AtomicValue::Boolean(b) => {
            out.push_str(if *b { "b:1" } else { "b:0" });
        }
        AtomicValue::Integer(i) => {
            let _ = write!(out, "n:{i}");
        }
        AtomicValue::Decimal(d) => {
            if d.is_integer() {
                // Align with Integer keys for whole numbers.
                let _ = write!(out, "n:{d}");
            } else {
                // Align with Double keys through the f64 image; bucket
                // collisions between near-equal decimals are resolved by
                // the verifying comparison.
                let _ = write!(out, "f:{}", d.to_f64().to_bits());
            }
        }
        AtomicValue::Double(d) => {
            if d.is_nan() {
                out.push_str("f:nan");
            } else if *d == d.trunc() && d.abs() < 9.0e18 {
                let _ = write!(out, "n:{}", *d as i64);
            } else {
                let _ = write!(out, "f:{}", d.to_bits());
            }
        }
        AtomicValue::DateTime(dt) => {
            let _ = write!(out, "dt:{}:{}", dt.epoch_seconds(), dt.nanos);
        }
        AtomicValue::Date(d) => {
            let _ = write!(out, "d:{}", d.epoch_seconds());
        }
    }
}

/// Append a structural key for a node, mirroring `fn:deep-equal`:
/// kind + name + (sorted) attributes + significant children.
pub fn node_key(n: &NodeHandle, out: &mut String) {
    match n.kind() {
        NodeKind::Document => {
            out.push_str("D[");
            for c in n.children() {
                node_key(&c, out);
            }
            out.push(']');
        }
        NodeKind::Element => {
            out.push_str("E<");
            if let Some(name) = n.name() {
                out.push_str(&name.to_string());
            }
            out.push('>');
            let mut attrs: Vec<(String, String)> = n
                .attributes()
                .map(|a| {
                    (
                        a.name().map(|q| q.to_string()).unwrap_or_default(),
                        a.string_value(),
                    )
                })
                .collect();
            attrs.sort();
            for (name, value) in attrs {
                out.push('@');
                out.push_str(&name);
                out.push('=');
                out.push_str(&value);
                out.push(';');
            }
            out.push('[');
            for c in n.children() {
                // deep-equal ignores comments and PIs inside elements.
                if !matches!(
                    c.kind(),
                    NodeKind::Comment | NodeKind::ProcessingInstruction
                ) {
                    node_key(&c, out);
                }
            }
            out.push(']');
        }
        NodeKind::Attribute => {
            out.push_str("A<");
            if let Some(name) = n.name() {
                out.push_str(&name.to_string());
            }
            out.push_str(">=");
            out.push_str(&n.string_value());
        }
        NodeKind::Text => {
            out.push_str("T:");
            out.push_str(&n.string_value());
            out.push('\u{0}');
        }
        NodeKind::Comment => {
            out.push_str("C:");
            out.push_str(&n.string_value());
            out.push('\u{0}');
        }
        NodeKind::ProcessingInstruction => {
            out.push_str("P<");
            if let Some(name) = n.name() {
                out.push_str(&name.to_string());
            }
            out.push_str(">:");
            out.push_str(&n.string_value());
            out.push('\u{0}');
        }
    }
}

/// Append the key of one item.
pub fn item_key(item: &Item, out: &mut String) {
    match item {
        Item::Atomic(a) => atomic_key(a, out),
        Item::Node(n) => node_key(n, out),
    }
}

/// Canonical key of a whole sequence (order-sensitive, as the paper
/// requires: "each permutation is considered a distinct value", §3.3).
pub fn sequence_key(seq: &[Item]) -> String {
    let mut out = String::with_capacity(16 * seq.len() + 2);
    sequence_key_into(seq, &mut out);
    out
}

/// Append the canonical key of a whole sequence to `out` (the
/// allocation-free form of [`sequence_key`], for per-tuple hot loops).
pub fn sequence_key_into(seq: &[Item], out: &mut String) {
    for item in seq {
        item_key(item, out);
        out.push('\u{1}'); // item separator, cannot appear ambiguously
    }
}

/// A set of atomic values under `eq` semantics (NaN collapses to one
/// value), used by `fn:distinct-values`.
#[derive(Debug, Default)]
pub struct AtomicDistinctSet {
    buckets: HashMap<String, Vec<AtomicValue>>,
    /// Reused key buffer: a hit (the common case on low-cardinality
    /// data) allocates nothing.
    scratch: String,
}

impl AtomicDistinctSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert, returning `true` when the value was not yet present.
    pub fn insert(&mut self, v: &AtomicValue) -> bool {
        self.scratch.clear();
        atomic_key(v, &mut self.scratch);
        if let Some(bucket) = self.buckets.get_mut(self.scratch.as_str()) {
            for existing in bucket.iter() {
                if atomic_eq_for_distinct(existing, v) {
                    return false;
                }
            }
            bucket.push(v.clone());
            return true;
        }
        self.buckets.insert(self.scratch.clone(), vec![v.clone()]);
        true
    }
}

/// Equality used by `distinct-values`: `eq`, with NaN = NaN and
/// incomparable types simply unequal.
fn atomic_eq_for_distinct(a: &AtomicValue, b: &AtomicValue) -> bool {
    if let (AtomicValue::Double(x), AtomicValue::Double(y)) = (a, b) {
        if x.is_nan() && y.is_nan() {
            return true;
        }
    }
    matches!(xqa_xdm::value_compare(a, b, xqa_xdm::CompOp::Eq), Ok(true))
}

/// A map from deep-equal sequence keys to group indices, with exact
/// verification: the backbone of the `group by` operator.
#[derive(Debug, Default)]
pub struct GroupIndex {
    buckets: HashMap<String, Vec<usize>>,
}

impl GroupIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Find the group whose key sequences are pairwise deep-equal to
    /// `keys`, or insert `new_index` for them. `stored_keys(i)` yields
    /// the key sequences of group `i` for verification.
    pub fn find_or_insert<'a>(
        &mut self,
        keys: &[Sequence],
        new_index: usize,
        stored_keys: impl Fn(usize) -> &'a [Sequence],
    ) -> Result<usize, usize> {
        let mut scratch = String::new();
        self.find_or_insert_buf(&mut scratch, keys, new_index, stored_keys)
    }

    /// [`GroupIndex::find_or_insert`] with a caller-owned scratch buffer:
    /// the combined key is built into `scratch` and only cloned into the
    /// map on a vacant bucket, so a hit (the common case once groups
    /// stabilize) allocates nothing.
    pub fn find_or_insert_buf<'a>(
        &mut self,
        scratch: &mut String,
        keys: &[Sequence],
        new_index: usize,
        stored_keys: impl Fn(usize) -> &'a [Sequence],
    ) -> Result<usize, usize> {
        scratch.clear();
        for k in keys {
            sequence_key_into(k, scratch);
            scratch.push('\u{2}'); // key separator
        }
        if let Some(bucket) = self.buckets.get_mut(scratch.as_str()) {
            for &idx in bucket.iter() {
                let stored = stored_keys(idx);
                if stored.len() == keys.len()
                    && stored.iter().zip(keys).all(|(a, b)| deep_equal(a, b))
                {
                    return Ok(idx);
                }
            }
            bucket.push(new_index);
            return Err(new_index);
        }
        self.buckets.insert(scratch.clone(), vec![new_index]);
        Err(new_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xdm::{Decimal, DocumentBuilder, QName};

    fn key_of(v: AtomicValue) -> String {
        let mut s = String::new();
        atomic_key(&v, &mut s);
        s
    }

    #[test]
    fn numeric_tower_collapses() {
        assert_eq!(
            key_of(AtomicValue::Integer(2)),
            key_of(AtomicValue::Double(2.0))
        );
        assert_eq!(
            key_of(AtomicValue::Integer(2)),
            key_of(AtomicValue::Decimal(Decimal::parse("2.0").unwrap()))
        );
        assert_eq!(
            key_of(AtomicValue::Decimal(Decimal::parse("0.5").unwrap())),
            key_of(AtomicValue::Double(0.5))
        );
        assert_ne!(
            key_of(AtomicValue::Integer(2)),
            key_of(AtomicValue::Integer(3))
        );
    }

    #[test]
    fn strings_and_untyped_collapse() {
        assert_eq!(
            key_of(AtomicValue::string("x")),
            key_of(AtomicValue::untyped("x"))
        );
        // but string "2" is not the number 2
        assert_ne!(
            key_of(AtomicValue::string("2")),
            key_of(AtomicValue::Integer(2))
        );
    }

    #[test]
    fn nan_is_one_value() {
        assert_eq!(
            key_of(AtomicValue::Double(f64::NAN)),
            key_of(AtomicValue::Double(f64::NAN))
        );
        let mut set = AtomicDistinctSet::new();
        assert!(set.insert(&AtomicValue::Double(f64::NAN)));
        assert!(!set.insert(&AtomicValue::Double(f64::NAN)));
    }

    #[test]
    fn distinct_set_dedups_across_types() {
        let mut set = AtomicDistinctSet::new();
        assert!(set.insert(&AtomicValue::Integer(2)));
        assert!(!set.insert(&AtomicValue::Double(2.0)));
        assert!(set.insert(&AtomicValue::string("2")));
        assert!(!set.insert(&AtomicValue::untyped("2")));
    }

    #[test]
    fn sequence_key_is_order_sensitive() {
        let gray = Item::from("Gray");
        let reuter = Item::from("Reuter");
        assert_ne!(
            sequence_key(&[gray.clone(), reuter.clone()]),
            sequence_key(&[reuter, gray])
        );
        assert_eq!(sequence_key(&[]), sequence_key(&[]));
    }

    #[test]
    fn sequence_key_no_concat_ambiguity() {
        // ("ab") vs ("a", "b") must differ.
        let one = vec![Item::from("ab")];
        let two = vec![Item::from("a"), Item::from("b")];
        assert_ne!(sequence_key(&one), sequence_key(&two));
    }

    #[test]
    fn node_keys_follow_deep_equal() {
        let make = |author: &str| {
            let mut b = DocumentBuilder::new();
            b.start_element(QName::local("author"))
                .text(author)
                .end_element();
            b.finish().root().children().next().unwrap()
        };
        let a = make("Jim Gray");
        let b = make("Jim Gray");
        let c = make("Andreas Reuter");
        let mut ka = String::new();
        node_key(&a, &mut ka);
        let mut kb = String::new();
        node_key(&b, &mut kb);
        let mut kc = String::new();
        node_key(&c, &mut kc);
        assert_eq!(ka, kb);
        assert_ne!(ka, kc);
    }

    #[test]
    fn node_key_ignores_comments_in_elements() {
        let with_comment = {
            let mut b = DocumentBuilder::new();
            b.start_element(QName::local("r"));
            b.comment("x");
            b.start_element(QName::local("v")).text("1").end_element();
            b.end_element();
            b.finish().root().children().next().unwrap()
        };
        let without = {
            let mut b = DocumentBuilder::new();
            b.start_element(QName::local("r"));
            b.start_element(QName::local("v")).text("1").end_element();
            b.end_element();
            b.finish().root().children().next().unwrap()
        };
        let mut k1 = String::new();
        node_key(&with_comment, &mut k1);
        let mut k2 = String::new();
        node_key(&without, &mut k2);
        assert_eq!(k1, k2);
    }

    #[test]
    fn group_index_find_or_insert() {
        let mut idx = GroupIndex::new();
        let keys_a: Vec<Sequence> = vec![
            vec![Item::from("West")].into(),
            vec![Item::from(2004i64)].into(),
        ];
        let keys_b: Vec<Sequence> = vec![
            vec![Item::from("East")].into(),
            vec![Item::from(2004i64)].into(),
        ];
        let stored: Vec<Vec<Sequence>> = vec![keys_a.clone(), keys_b.clone()];
        let lookup = |i: usize| stored[i].as_slice();
        assert_eq!(idx.find_or_insert(&keys_a, 0, lookup), Err(0));
        assert_eq!(idx.find_or_insert(&keys_b, 1, lookup), Err(1));
        assert_eq!(idx.find_or_insert(&keys_a, 2, lookup), Ok(0));
        assert_eq!(idx.find_or_insert(&keys_b, 2, lookup), Ok(1));
    }

    #[test]
    fn empty_sequence_is_its_own_group_key() {
        let mut idx = GroupIndex::new();
        let empty: Vec<Sequence> = vec![Sequence::Empty];
        let nonempty: Vec<Sequence> = vec![vec![Item::from("x")].into()];
        let stored = [empty.clone(), nonempty.clone()];
        let lookup = |i: usize| stored[i].as_slice();
        assert_eq!(idx.find_or_insert(&empty, 0, lookup), Err(0));
        assert_eq!(idx.find_or_insert(&nonempty, 1, lookup), Err(1));
        assert_eq!(idx.find_or_insert(&empty, 2, lookup), Ok(0));
    }
}
