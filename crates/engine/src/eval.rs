//! The IR evaluator.
//!
//! A straightforward tree-walking interpreter: expressions evaluate to
//! [`Sequence`]s against an environment of frame slots plus the focus
//! (context item / position / size). FLWOR evaluation lives in
//! [`crate::flwor`]; this module covers everything else — literals,
//! arithmetic, comparisons, paths, constructors, and function calls.

use crate::casts::cast_atomic;
use crate::context::{DynamicContext, EvalStats, Focus};
use crate::error::{EngineError, EngineResult};
use crate::functions::{self, FnCtx};
use crate::ir::*;
use crate::types::{function_conversion, matches_seq_type};
use std::cell::Cell;
use std::sync::Arc;
use xqa_frontend::ast::{ArithOp, Axis, NodeComparison, Quantifier, SetOp};
use xqa_xdm::{
    effective_boolean_value, general_compare, AtomicValue, Decimal, Document, DocumentBuilder,
    ErrorCode, Item, NodeHandle, NodeKind, Sequence, SequenceBuilder,
};

/// Maximum user-function recursion depth. Kept conservative because each
/// level costs several (large, debug-mode) Rust stack frames; the paper's
/// recursive membership functions only recurse to category-tree depth.
const MAX_RECURSION: usize = 64;

/// Execute a compiled query against a dynamic context.
pub fn execute(query: &CompiledQuery, dynamic: &DynamicContext) -> EngineResult<Sequence> {
    with_run_accounting(dynamic, || execute_inner(query, dynamic))
}

/// Streaming twin of [`execute`]: instead of materializing the result,
/// each pipeline batch of result items is handed to `emit` as it is
/// produced. Returns the total item count. Counter and profiler
/// bookkeeping matches [`execute`] exactly, so `--stats` totals and
/// flight records look the same whether a request streamed or not.
pub fn execute_streaming(
    query: &CompiledQuery,
    dynamic: &DynamicContext,
    emit: &mut dyn FnMut(&[Item]) -> EngineResult<()>,
) -> EngineResult<u64> {
    with_run_accounting(dynamic, || {
        let mut interp = Interpreter {
            query,
            dynamic,
            globals: Vec::new(),
            depth: Cell::new(0),
            stats: &dynamic.stats,
            parallel_ok: true,
        };
        for g in &query.globals {
            let mut env = Env::new(g.frame_size, initial_focus(dynamic));
            let v = interp.eval(&g.init, &mut env)?;
            interp.globals.push(v);
        }
        let mut env = Env::new(query.frame_size, initial_focus(dynamic));
        match &query.body {
            // A FLWOR body streams straight off the pipeline sink.
            Ir::Flwor(f) => crate::pipeline::run_streaming(&interp, f, &mut env, emit),
            // Any other body shape materializes (there is no tuple
            // pipeline to tap), then feeds out in batches.
            body => {
                let seq = interp.eval(body, &mut env)?;
                crate::pipeline::emit_sequence(&seq, emit)
            }
        }
    })
}

/// Wrap one evaluation in the per-run sequence-copy drain and profiler
/// delta bookkeeping shared by the materializing and streaming paths.
fn with_run_accounting<T>(
    dynamic: &DynamicContext,
    run: impl FnOnce() -> EngineResult<T>,
) -> EngineResult<T> {
    // Discard sequence-copy counts accumulated outside evaluation
    // (compile-time constant folding, earlier runs on this thread) so
    // the per-run totals cover this evaluation alone.
    let _ = xqa_xdm::take_seq_counters();
    let before = dynamic.profiler().map(|_| dynamic.stats.snapshot());
    let result = run();
    let (copied, shared) = xqa_xdm::take_seq_counters();
    dynamic.stats.add_seq_counters(copied, shared);
    // The stats delta (not the local drain alone) also covers counts
    // parallel workers merged in through their per-worker sinks.
    if let (Some(profiler), Some(before)) = (dynamic.profiler(), before) {
        let after = dynamic.stats.snapshot();
        profiler.add_seq(
            after
                .seq_items_copied
                .saturating_sub(before.seq_items_copied),
            after
                .seq_clones_shared
                .saturating_sub(before.seq_clones_shared),
        );
        profiler.add_access(
            after.scan_index_hits.saturating_sub(before.scan_index_hits),
            after
                .scan_index_tuples
                .saturating_sub(before.scan_index_tuples),
            after
                .scan_walk_tuples
                .saturating_sub(before.scan_walk_tuples),
        );
        profiler.add_expr(
            after.expr_compiled.saturating_sub(before.expr_compiled),
            after.expr_fallback.saturating_sub(before.expr_fallback),
        );
    }
    result
}

fn execute_inner(query: &CompiledQuery, dynamic: &DynamicContext) -> EngineResult<Sequence> {
    let mut interp = Interpreter {
        query,
        dynamic,
        globals: Vec::new(),
        depth: Cell::new(0),
        stats: &dynamic.stats,
        parallel_ok: true,
    };
    for g in &query.globals {
        let mut env = Env::new(g.frame_size, initial_focus(dynamic));
        let v = interp.eval(&g.init, &mut env)?;
        interp.globals.push(v);
    }
    let mut env = Env::new(query.frame_size, initial_focus(dynamic));
    interp.eval(&query.body, &mut env)
}

fn initial_focus(dynamic: &DynamicContext) -> Option<Focus> {
    dynamic.context_item().map(|item| Focus {
        item: item.clone(),
        position: 1,
        size: 1,
    })
}

/// The evaluation environment: frame slots plus the focus.
pub(crate) struct Env {
    /// Variable slots (`Sequence` clones are O(1), so tuple snapshots
    /// bind values directly — no `Arc<Sequence>` double indirection).
    pub slots: Vec<Sequence>,
    /// The focus, if a context item is defined.
    pub focus: Option<Focus>,
}

impl Env {
    pub(crate) fn new(frame_size: usize, focus: Option<Focus>) -> Env {
        Env {
            slots: vec![Sequence::Empty; frame_size],
            focus,
        }
    }
}

pub(crate) struct Interpreter<'a> {
    pub(crate) query: &'a CompiledQuery,
    pub(crate) dynamic: &'a DynamicContext,
    pub(crate) globals: Vec<Sequence>,
    depth: Cell<usize>,
    /// Where evaluator counters go. Normally `&dynamic.stats`; a forked
    /// worker interpreter points at a thread-local sink merged into the
    /// context stats once at pipeline close, so `--stats` totals don't
    /// interleave mid-query across parallel workers.
    pub(crate) stats: &'a EvalStats,
    /// Whether this interpreter may spawn morsel workers. False in
    /// forked workers, so nested FLWORs inside a parallel region run
    /// serially instead of oversubscribing.
    pub(crate) parallel_ok: bool,
}

impl<'a> Interpreter<'a> {
    /// A worker-thread clone of this interpreter: shares the compiled
    /// query, dynamic context, and evaluated globals, but counts into
    /// its own stats sink and may not re-parallelize.
    pub(crate) fn fork<'b>(&'b self, stats: &'b EvalStats) -> Interpreter<'b> {
        Interpreter {
            query: self.query,
            dynamic: self.dynamic,
            globals: self.globals.clone(),
            depth: Cell::new(self.depth.get()),
            stats,
            parallel_ok: false,
        }
    }

    pub(crate) fn eval(&self, ir: &Ir, env: &mut Env) -> EngineResult<Sequence> {
        match ir {
            Ir::Str(s) => Ok(Sequence::one(Item::Atomic(AtomicValue::String(
                Arc::clone(s),
            )))),
            Ir::Int(v) => Ok(Sequence::one(*v)),
            Ir::Dec(v) => Ok(Sequence::one(Item::Atomic(AtomicValue::Decimal(*v)))),
            Ir::Dbl(v) => Ok(Sequence::one(*v)),
            Ir::Empty => Ok(Sequence::Empty),
            Ir::Seq(items) => {
                let mut out = SequenceBuilder::new();
                for item in items {
                    out.append(self.eval(item, env)?);
                }
                Ok(out.build())
            }
            Ir::Var(slot) => Ok(env.slots[*slot].clone()),
            Ir::Global(g) => Ok(self.globals[*g].clone()),
            Ir::ContextItem => match &env.focus {
                Some(f) => Ok(Sequence::one(f.item.clone())),
                None => Err(no_context("'.'")),
            },
            Ir::Range(a, b) => {
                let lo = range_bound(&self.eval(a, env)?, "range start")?;
                let hi = range_bound(&self.eval(b, env)?, "range end")?;
                match (lo, hi) {
                    (Some(lo), Some(hi)) if lo <= hi => Ok((lo..=hi).map(Item::from).collect()),
                    _ => Ok(Sequence::Empty),
                }
            }
            Ir::Arith(op, a, b) => {
                let lhs = self.eval(a, env)?;
                let rhs = self.eval(b, env)?;
                eval_arith(*op, &lhs, &rhs)
            }
            Ir::Neg(a) => {
                let v = self.eval(a, env)?;
                eval_neg(&v)
            }
            Ir::GeneralComp(op, a, b) => {
                let lhs = self.eval(a, env)?;
                let rhs = self.eval(b, env)?;
                eval_general_comp(*op, &lhs, &rhs, self.stats)
            }
            Ir::ValueComp(op, a, b) => {
                let lhs = self.eval(a, env)?;
                let rhs = self.eval(b, env)?;
                eval_value_comp(*op, &lhs, &rhs, self.stats)
            }
            Ir::NodeComp(op, a, b) => {
                let lhs = self.eval(a, env)?;
                let rhs = self.eval(b, env)?;
                let ln = opt_node(&lhs, "node comparison")?;
                let rn = opt_node(&rhs, "node comparison")?;
                match (ln, rn) {
                    (Some(ln), Some(rn)) => {
                        let result = match op {
                            NodeComparison::Is => ln.is_same_node(&rn),
                            NodeComparison::Precedes => ln.document_order(&rn).is_lt(),
                            NodeComparison::Follows => ln.document_order(&rn).is_gt(),
                        };
                        Ok(Sequence::one(result))
                    }
                    _ => Ok(Sequence::Empty),
                }
            }
            Ir::And(a, b) => {
                let lhs = self.eval_ebv(a, env)?;
                if !lhs {
                    return Ok(Sequence::one(false));
                }
                Ok(Sequence::one(self.eval_ebv(b, env)?))
            }
            Ir::Or(a, b) => {
                let lhs = self.eval_ebv(a, env)?;
                if lhs {
                    return Ok(Sequence::one(true));
                }
                Ok(Sequence::one(self.eval_ebv(b, env)?))
            }
            Ir::SetOp(op, a, b) => {
                let lhs = self.eval(a, env)?;
                let rhs = self.eval(b, env)?;
                eval_set_op(*op, lhs, rhs)
            }
            Ir::If(cond, then, otherwise) => {
                if self.eval_ebv(cond, env)? {
                    self.eval(then, env)
                } else {
                    self.eval(otherwise, env)
                }
            }
            Ir::Quantified {
                kind,
                bindings,
                satisfies,
            } => {
                let result = self.eval_quantified(*kind, bindings, satisfies, env, 0)?;
                Ok(Sequence::one(result))
            }
            Ir::Flwor(f) => self.eval_flwor(f, env),
            Ir::Path(p) => self.eval_path(p, env),
            Ir::Filter { base, predicates } => {
                let seq = self.eval(base, env)?;
                self.apply_predicates(seq, predicates, env)
            }
            Ir::CallBuiltin(b, args) => {
                let mut evaluated = Vec::with_capacity(args.len());
                for a in args {
                    evaluated.push(self.eval(a, env)?);
                }
                let cx = FnCtx {
                    focus: env.focus.as_ref(),
                    dynamic: self.dynamic,
                };
                functions::dispatch(*b, evaluated, &cx)
            }
            Ir::CallUser(id, args) => self.call_user(*id, args, env),
            Ir::Element(el) => {
                let mut b = DocumentBuilder::new();
                self.construct_element(&mut b, el, env)?;
                let doc = b.finish();
                let node = doc
                    .root()
                    .children()
                    .next()
                    .expect("constructor built one element");
                Ok(Sequence::one(Item::Node(node)))
            }
            Ir::Attribute { name, value } => {
                let text = match value {
                    Some(v) => atomize_join(&self.eval(v, env)?),
                    None => String::new(),
                };
                Ok(Sequence::one(Item::Node(Document::standalone_attribute(
                    name.clone(),
                    text.as_str(),
                ))))
            }
            Ir::Text(content) => {
                let text = match content {
                    Some(c) => atomize_join(&self.eval(c, env)?),
                    None => String::new(),
                };
                if text.is_empty() {
                    // Zero-length text constructors produce no node.
                    return Ok(Sequence::Empty);
                }
                let mut b = DocumentBuilder::new();
                b.text(&text);
                let doc = b.finish();
                Ok(Sequence::one(Item::Node(
                    doc.root().children().next().expect("text node built"),
                )))
            }
            Ir::Comment(text) => {
                let mut b = DocumentBuilder::new();
                b.comment(&**text);
                let doc = b.finish();
                Ok(Sequence::one(Item::Node(
                    doc.root().children().next().expect("comment built"),
                )))
            }
            Ir::Pi(target, data) => {
                let mut b = DocumentBuilder::new();
                b.processing_instruction(target.clone(), &**data);
                let doc = b.finish();
                Ok(Sequence::one(Item::Node(
                    doc.root().children().next().expect("PI built"),
                )))
            }
            Ir::InstanceOf(a, ty) => {
                let v = self.eval(a, env)?;
                Ok(Sequence::one(matches_seq_type(&v, ty)))
            }
            Ir::Castable(a, target, optional) => {
                let v = self.eval(a, env)?;
                Ok(eval_castable(&v, *target, *optional))
            }
            Ir::Cast(a, target, optional) => {
                let v = self.eval(a, env)?;
                eval_cast(&v, *target, *optional)
            }
        }
    }

    pub(crate) fn eval_ebv(&self, ir: &Ir, env: &mut Env) -> EngineResult<bool> {
        let v = self.eval(ir, env)?;
        effective_boolean_value(&v).map_err(EngineError::from)
    }

    fn eval_quantified(
        &self,
        kind: Quantifier,
        bindings: &[(Slot, Ir)],
        satisfies: &Ir,
        env: &mut Env,
        index: usize,
    ) -> EngineResult<bool> {
        if index == bindings.len() {
            return self.eval_ebv(satisfies, env);
        }
        let (slot, ref expr) = bindings[index];
        let seq = self.eval(expr, env)?;
        for item in seq {
            env.slots[slot] = Sequence::One(item);
            let inner = self.eval_quantified(kind, bindings, satisfies, env, index + 1)?;
            match kind {
                Quantifier::Some if inner => return Ok(true),
                Quantifier::Every if !inner => return Ok(false),
                _ => {}
            }
        }
        Ok(kind == Quantifier::Every)
    }

    fn call_user(&self, id: FunctionId, args: &[Ir], env: &mut Env) -> EngineResult<Sequence> {
        let func = &self.query.functions[id];
        debug_assert_eq!(func.arity, args.len());
        let depth = self.depth.get();
        if depth >= MAX_RECURSION {
            return Err(EngineError::dynamic(
                ErrorCode::Other,
                format!(
                    "recursion limit ({MAX_RECURSION}) exceeded in {}",
                    func.name
                ),
            ));
        }
        // Function bodies see no focus (the context item is undefined
        // inside a function body per XQuery 1.0).
        let mut callee = Env::new(func.frame_size.max(func.arity), None);
        for (i, arg) in args.iter().enumerate() {
            let value = self.eval(arg, env)?;
            let value = match &func.param_types[i] {
                Some(ty) => {
                    function_conversion(value, ty, &format!("argument {} of {}", i + 1, func.name))?
                }
                None => value,
            };
            callee.slots[i] = value;
        }
        self.depth.set(depth + 1);
        let result = self.eval(&func.body, &mut callee);
        self.depth.set(depth);
        let result = result?;
        match &func.return_type {
            Some(ty) => function_conversion(result, ty, &format!("result of {}", func.name)),
            None => Ok(result),
        }
    }

    /// Call a user function (by id) with already-evaluated arguments —
    /// used by the `using` comparator in `group by`.
    pub(crate) fn call_user_values(
        &self,
        id: FunctionId,
        values: Vec<Sequence>,
    ) -> EngineResult<Sequence> {
        let func = &self.query.functions[id];
        debug_assert_eq!(func.arity, values.len());
        let depth = self.depth.get();
        if depth >= MAX_RECURSION {
            return Err(EngineError::dynamic(
                ErrorCode::Other,
                format!(
                    "recursion limit ({MAX_RECURSION}) exceeded in {}",
                    func.name
                ),
            ));
        }
        let mut callee = Env::new(func.frame_size.max(func.arity), None);
        for (i, value) in values.into_iter().enumerate() {
            let value = match &func.param_types[i] {
                Some(ty) => {
                    function_conversion(value, ty, &format!("argument {} of {}", i + 1, func.name))?
                }
                None => value,
            };
            callee.slots[i] = value;
        }
        self.depth.set(depth + 1);
        let result = self.eval(&func.body, &mut callee);
        self.depth.set(depth);
        let result = result?;
        match &func.return_type {
            Some(ty) => function_conversion(result, ty, &format!("result of {}", func.name)),
            None => Ok(result),
        }
    }

    // ---- paths ---------------------------------------------------------

    fn eval_path(&self, p: &PathIr, env: &mut Env) -> EngineResult<Sequence> {
        let mut current: Sequence = match &p.start {
            PathStartIr::Context => match &env.focus {
                Some(f) => Sequence::one(f.item.clone()),
                None => return Err(no_context("relative path")),
            },
            PathStartIr::Root => match &env.focus {
                Some(f) => match &f.item {
                    Item::Node(n) => {
                        let root = n.ancestors().last().unwrap_or_else(|| n.clone());
                        Sequence::one(Item::Node(root))
                    }
                    _ => {
                        return Err(EngineError::dynamic(
                            ErrorCode::XPTY0004,
                            "'/' requires the context item to be a node",
                        ))
                    }
                },
                None => return Err(no_context("'/'")),
            },
            PathStartIr::Expr(e) => self.eval(e, env)?,
        };
        let mut steps = p.steps.as_slice();
        if p.access != AccessPathIr::Walk {
            if let Some((first, rest)) = steps.split_first() {
                current = self.eval_indexed_step(&p.access, first, current, env)?;
                steps = rest;
            }
        }
        for step in steps {
            current = self.eval_step(step, current, env)?;
        }
        Ok(current)
    }

    /// Evaluate an index-annotated leading step. Resolution is decided
    /// per context item: items whose document has a registered store
    /// (and whose index can answer exactly) are served from postings /
    /// the value index, everything else tree-walks — so mixed inputs
    /// and store-less documents stay byte-identical to the walk.
    fn eval_indexed_step(
        &self,
        access: &AccessPathIr,
        step: &StepIr,
        input: Sequence,
        env: &mut Env,
    ) -> EngineResult<Sequence> {
        let StepIr::Axis {
            axis: Axis::Descendant,
            test,
            predicates,
        } = step
        else {
            // The annotation only ever lands on descendant axis steps;
            // anything else means a stale plan — walk it.
            return self.eval_step(step, input, env);
        };
        let NodeTestIr::Name(name) = test else {
            return self.eval_step(step, input, env);
        };
        let mut out: Vec<Item> = Vec::new();
        for item in &input {
            let node = match item {
                Item::Node(n) => n,
                Item::Atomic(_) => {
                    return Err(EngineError::dynamic(
                        ErrorCode::XPTY0004,
                        "axis step applied to an atomic value",
                    ))
                }
            };
            let candidates = match self.index_candidates(access, name, node) {
                Some(nodes) => {
                    self.stats.add_scan_index(nodes.len() as u64);
                    nodes
                }
                None => self.axis_nodes(Axis::Descendant, node, test),
            };
            if predicates.is_empty() {
                out.extend(candidates.into_iter().map(Item::Node));
            } else {
                // Residual predicates always re-run on the candidates
                // (the index prefilters; the walk semantics decide).
                let filtered = self.apply_predicates(
                    candidates.into_iter().map(Item::Node).collect(),
                    predicates,
                    env,
                )?;
                out.extend(filtered);
            }
        }
        dedup_sort_document_order(&mut out);
        Ok(out.into())
    }

    /// The index-resolved candidates for one origin node, or `None`
    /// when the lookup must fall back to the tree walk (no store for
    /// the document, or the value index cannot answer exactly).
    fn index_candidates(
        &self,
        access: &AccessPathIr,
        name: &xqa_xdm::QName,
        node: &NodeHandle,
    ) -> Option<Vec<NodeHandle>> {
        let doc = node.document();
        let store = self.dynamic.store(doc.serial())?;
        match access {
            AccessPathIr::Walk => None,
            AccessPathIr::IndexDescendant => {
                let ids = store.descendants_named(node.id(), name);
                Some(ids.iter().filter_map(|&id| doc.handle(id)).collect())
            }
            AccessPathIr::IndexValueEq { child, probe } => {
                let parents = match probe {
                    ValueProbeIr::Str(s) => store.parents_by_string_eq(child, s)?,
                    ValueProbeIr::Num(v) => store.parents_by_numeric_eq(child, *v)?,
                };
                let origin = node.id();
                let end = store.subtree_end(origin);
                Some(
                    parents
                        .into_iter()
                        .filter(|&id| id > origin && id <= end)
                        .filter_map(|id| doc.handle(id))
                        .filter(|h| h.kind() == NodeKind::Element && h.name() == Some(name))
                        .collect(),
                )
            }
        }
    }

    fn eval_step(&self, step: &StepIr, input: Sequence, env: &mut Env) -> EngineResult<Sequence> {
        match step {
            StepIr::Axis {
                axis,
                test,
                predicates,
            } => {
                let mut out: Vec<Item> = Vec::new();
                for item in &input {
                    let node = match item {
                        Item::Node(n) => n,
                        Item::Atomic(_) => {
                            return Err(EngineError::dynamic(
                                ErrorCode::XPTY0004,
                                "axis step applied to an atomic value",
                            ))
                        }
                    };
                    let candidates = self.axis_nodes(*axis, node, test);
                    if predicates.is_empty() {
                        out.extend(candidates.into_iter().map(Item::Node));
                    } else {
                        let filtered = self.apply_predicates(
                            candidates.into_iter().map(Item::Node).collect(),
                            predicates,
                            env,
                        )?;
                        out.extend(filtered);
                    }
                }
                dedup_sort_document_order(&mut out);
                Ok(out.into())
            }
            StepIr::Expr { expr, predicates } => {
                let size = input.len() as i64;
                let saved = env.focus.take();
                let mut out: Vec<Item> = Vec::new();
                let mut result: EngineResult<()> = Ok(());
                for (i, item) in input.iter().enumerate() {
                    env.focus = Some(Focus {
                        item: item.clone(),
                        position: i as i64 + 1,
                        size,
                    });
                    match self.eval(expr, env) {
                        Ok(r) => match self.apply_predicates(r, predicates, env) {
                            Ok(r) => out.extend(r),
                            Err(e) => {
                                result = Err(e);
                                break;
                            }
                        },
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                env.focus = saved;
                result?;
                let nodes = out.iter().filter(|i| i.is_node()).count();
                if nodes == out.len() {
                    dedup_sort_document_order(&mut out);
                    Ok(out.into())
                } else if nodes == 0 {
                    Ok(out.into())
                } else {
                    Err(EngineError::dynamic(
                        ErrorCode::XPTY0004,
                        "path step result mixes nodes and atomic values (XPTY0018)",
                    ))
                }
            }
        }
    }

    /// The nodes selected by `axis::test` from `node`, in axis order.
    fn axis_nodes(&self, axis: Axis, node: &NodeHandle, test: &NodeTestIr) -> Vec<NodeHandle> {
        let stats = &self.stats;
        let mut visited = 0u64;
        let out: Vec<NodeHandle> = match axis {
            Axis::Child => node
                .children()
                .inspect(|_| visited += 1)
                .filter(|n| test_matches(test, n, false))
                .collect(),
            Axis::Attribute => node
                .attributes()
                .inspect(|_| visited += 1)
                .filter(|n| test_matches(test, n, true))
                .collect(),
            Axis::Descendant => node
                .descendants()
                .inspect(|_| visited += 1)
                .filter(|n| test_matches(test, n, false))
                .collect(),
            Axis::DescendantOrSelf => node
                .descendants_or_self()
                .inspect(|_| visited += 1)
                .filter(|n| test_matches(test, n, false))
                .collect(),
            Axis::SelfAxis => {
                visited += 1;
                if test_matches(test, node, false) {
                    vec![node.clone()]
                } else {
                    vec![]
                }
            }
            Axis::Parent => {
                visited += 1;
                node.parent()
                    .filter(|n| test_matches(test, n, false))
                    .into_iter()
                    .collect()
            }
            Axis::Ancestor => node
                .ancestors()
                .inspect(|_| visited += 1)
                .filter(|n| test_matches(test, n, false))
                .collect(),
            Axis::AncestorOrSelf => std::iter::once(node.clone())
                .chain(node.ancestors())
                .inspect(|_| visited += 1)
                .filter(|n| test_matches(test, n, false))
                .collect(),
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                let Some(parent) = node.parent() else {
                    return Vec::new();
                };
                let siblings: Vec<NodeHandle> = parent.children().collect();
                visited += siblings.len() as u64;
                let pos = siblings
                    .iter()
                    .position(|s| s.is_same_node(node))
                    .expect("node is among its parent's children");
                let mut picked: Vec<NodeHandle> = if axis == Axis::FollowingSibling {
                    siblings[pos + 1..].to_vec()
                } else {
                    let mut v = siblings[..pos].to_vec();
                    v.reverse(); // axis order: nearest sibling first
                    v
                };
                picked.retain(|n| test_matches(test, n, false));
                picked
            }
        };
        stats.add_nodes_visited(visited);
        if matches!(axis, Axis::Descendant | Axis::DescendantOrSelf) {
            stats.add_scan_walk_tuples(out.len() as u64);
        }
        out
    }

    /// Apply predicates to a sequence with the usual focus/positional
    /// semantics (forward order).
    pub(crate) fn apply_predicates(
        &self,
        seq: Sequence,
        predicates: &[Ir],
        env: &mut Env,
    ) -> EngineResult<Sequence> {
        let mut current = seq;
        for pred in predicates {
            let size = current.len() as i64;
            let saved = env.focus.take();
            let mut kept: Vec<Item> = Vec::with_capacity(current.len());
            let mut failure: Option<EngineError> = None;
            for (i, item) in current.iter().enumerate() {
                let position = i as i64 + 1;
                env.focus = Some(Focus {
                    item: item.clone(),
                    position,
                    size,
                });
                match self.eval(pred, env) {
                    Ok(value) => match predicate_truth(&value, position) {
                        Ok(true) => kept.push(item.clone()),
                        Ok(false) => {}
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    },
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            env.focus = saved;
            if let Some(e) = failure {
                return Err(e);
            }
            current = kept.into();
        }
        Ok(current)
    }

    // ---- constructors ---------------------------------------------------

    fn construct_element(
        &self,
        b: &mut DocumentBuilder,
        el: &ElementIr,
        env: &mut Env,
    ) -> EngineResult<()> {
        b.start_element(el.name.clone());
        for (name, parts) in &el.attributes {
            let mut value = String::new();
            for part in parts {
                match part {
                    AttrPartIr::Literal(s) => value.push_str(s),
                    AttrPartIr::Enclosed(e) => {
                        let v = self.eval(e, env)?;
                        value.push_str(&atomize_join(&v));
                    }
                }
            }
            b.attribute(name.clone(), value.as_str());
        }
        let mut content_started = false;
        for part in &el.content {
            match part {
                ContentIr::Literal(s) => {
                    content_started = true;
                    b.text(s);
                }
                ContentIr::Child(ir) => match ir {
                    // Nested direct constructors build straight into the
                    // parent's arena — no temporary document.
                    Ir::Element(child) => {
                        content_started = true;
                        self.construct_element(b, child, env)?;
                    }
                    Ir::Comment(text) => {
                        content_started = true;
                        b.comment(&**text);
                    }
                    Ir::Pi(target, data) => {
                        content_started = true;
                        b.processing_instruction(target.clone(), &**data);
                    }
                    other => {
                        let v = self.eval(other, env)?;
                        self.insert_content(b, &v, &mut content_started)?;
                    }
                },
                ContentIr::Enclosed(e) => {
                    let v = self.eval(e, env)?;
                    self.insert_content(b, &v, &mut content_started)?;
                }
            }
        }
        b.end_element();
        Ok(())
    }

    /// Insert an evaluated sequence as element content: adjacent atomic
    /// values join with single spaces into text; nodes are deep-copied;
    /// attribute nodes become attributes (only before other content).
    fn insert_content(
        &self,
        b: &mut DocumentBuilder,
        seq: &[Item],
        content_started: &mut bool,
    ) -> EngineResult<()> {
        let mut pending_text = String::new();
        let mut have_pending = false;
        for item in seq {
            match item {
                Item::Atomic(v) => {
                    if have_pending {
                        pending_text.push(' ');
                    }
                    pending_text.push_str(&v.string_value());
                    have_pending = true;
                }
                Item::Node(n) => {
                    if have_pending {
                        *content_started = true;
                        b.text(&pending_text);
                        pending_text.clear();
                        have_pending = false;
                    }
                    if n.kind() == NodeKind::Attribute {
                        if *content_started {
                            return Err(EngineError::dynamic(
                                ErrorCode::Other,
                                "attribute node after element content (XQTY0024)",
                            ));
                        }
                        b.attribute(
                            n.name().expect("attribute has a name").clone(),
                            n.raw_text().unwrap_or(""),
                        );
                    } else {
                        *content_started = true;
                        b.copy_node(n);
                    }
                }
            }
        }
        if have_pending {
            *content_started = true;
            b.text(&pending_text);
        }
        Ok(())
    }
}

// ---- helpers --------------------------------------------------------

fn no_context(what: &str) -> EngineError {
    EngineError::dynamic(
        ErrorCode::Other,
        format!("{what} used with no context item (XPDY0002)"),
    )
}

fn overflow() -> EngineError {
    EngineError::dynamic(ErrorCode::FOAR0002, "integer overflow")
}

/// Truth of a predicate value at `position`: singleton numerics are
/// positional tests, everything else uses the effective boolean value.
fn predicate_truth(value: &[Item], position: i64) -> EngineResult<bool> {
    if let [Item::Atomic(v)] = value {
        match v {
            AtomicValue::Integer(i) => return Ok(*i == position),
            AtomicValue::Decimal(d) => {
                return Ok(d.is_integer() && d.to_i64()? == position);
            }
            AtomicValue::Double(d) => {
                return Ok(d.fract() == 0.0 && *d == position as f64);
            }
            _ => {}
        }
    }
    effective_boolean_value(value).map_err(EngineError::from)
}

/// Atomized optional singleton.
pub(crate) fn opt_atomic(seq: &[Item], what: &str) -> EngineResult<Option<AtomicValue>> {
    match seq {
        [] => Ok(None),
        [item] => Ok(Some(item.atomize())),
        _ => Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: expected at most one item, got {}", seq.len()),
        )),
    }
}

fn opt_node(seq: &[Item], what: &str) -> EngineResult<Option<NodeHandle>> {
    match seq {
        [] => Ok(None),
        [Item::Node(n)] => Ok(Some(n.clone())),
        [Item::Atomic(_)] => Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: expected a node"),
        )),
        _ => Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: expected at most one node, got {}", seq.len()),
        )),
    }
}

pub(crate) fn untyped_to_string(v: AtomicValue) -> AtomicValue {
    match v {
        AtomicValue::Untyped(s) => AtomicValue::String(s),
        other => other,
    }
}

// ---- scalar kernels shared with the bytecode evaluator ---------------
//
// Each kernel is the single implementation of one scalar op's dynamic
// semantics, called by both the tree-walking arms above and the
// compiled programs in `crate::bytecode` — results and error codes
// cannot drift between the two evaluation strategies.

/// Unary minus over an atomized optional numeric singleton.
pub(crate) fn eval_neg(v: &[Item]) -> EngineResult<Sequence> {
    match opt_numeric(v, "unary minus")? {
        None => Ok(Sequence::Empty),
        Some(AtomicValue::Integer(i)) => Ok(Sequence::one(i.checked_neg().ok_or_else(overflow)?)),
        Some(AtomicValue::Decimal(d)) => {
            Ok(Sequence::one(Item::Atomic(AtomicValue::Decimal(d.neg()))))
        }
        Some(AtomicValue::Double(d)) => Ok(Sequence::one(-d)),
        Some(_) => unreachable!("opt_numeric returns numerics"),
    }
}

/// Value comparison (`eq`, `lt`, ...): optional singletons, untyped
/// operands compared as strings, empty when either side is empty.
pub(crate) fn eval_value_comp(
    op: xqa_xdm::CompOp,
    lhs: &[Item],
    rhs: &[Item],
    stats: &EvalStats,
) -> EngineResult<Sequence> {
    let la = opt_atomic(lhs, "value comparison")?;
    let ra = opt_atomic(rhs, "value comparison")?;
    match (la, ra) {
        (Some(la), Some(ra)) => {
            stats.add_comparisons(1);
            // Value comparisons treat untyped operands as strings.
            let la = untyped_to_string(la);
            let ra = untyped_to_string(ra);
            Ok(Sequence::one(
                xqa_xdm::value_compare(&la, &ra, op).map_err(EngineError::from)?,
            ))
        }
        _ => Ok(Sequence::Empty),
    }
}

/// General (existential) comparison (`=`, `<`, ...).
pub(crate) fn eval_general_comp(
    op: xqa_xdm::CompOp,
    lhs: &[Item],
    rhs: &[Item],
    stats: &EvalStats,
) -> EngineResult<Sequence> {
    stats.add_comparisons((lhs.len() * rhs.len()) as u64);
    Ok(Sequence::one(
        general_compare(lhs, rhs, op).map_err(EngineError::from)?,
    ))
}

/// `cast as`: empty input is an error unless the target is optional.
pub(crate) fn eval_cast(v: &[Item], target: CastTarget, optional: bool) -> EngineResult<Sequence> {
    match opt_atomic(v, "cast")? {
        None => {
            if optional {
                Ok(Sequence::Empty)
            } else {
                Err(EngineError::dynamic(
                    ErrorCode::XPTY0004,
                    "cast of an empty sequence (use 'cast as T?' to allow it)",
                ))
            }
        }
        Some(v) => Ok(Sequence::one(Item::Atomic(cast_atomic(&v, target)?))),
    }
}

/// `castable as` — never raises; multi-item inputs are simply not
/// castable.
pub(crate) fn eval_castable(v: &[Item], target: CastTarget, optional: bool) -> Sequence {
    let ok = match opt_atomic(v, "castable") {
        Err(_) => false, // more than one item is never castable
        Ok(None) => optional,
        Ok(Some(v)) => cast_atomic(&v, target).is_ok(),
    };
    Sequence::one(ok)
}

/// A range bound: an atomized optional numeric singleton coerced to an
/// integer (whole doubles allowed, anything fractional is a type error).
pub(crate) fn range_bound(v: &[Item], what: &str) -> EngineResult<Option<i64>> {
    match opt_numeric(v, what)? {
        None => Ok(None),
        Some(AtomicValue::Integer(i)) => Ok(Some(i)),
        Some(AtomicValue::Decimal(d)) => Ok(Some(d.to_i64()?)),
        Some(AtomicValue::Double(d)) => {
            if d.fract() == 0.0 && d.is_finite() {
                Ok(Some(d as i64))
            } else {
                Err(EngineError::dynamic(
                    ErrorCode::XPTY0004,
                    format!("{what}: not an integer"),
                ))
            }
        }
        Some(_) => unreachable!("opt_numeric returns numerics"),
    }
}

/// Atomized optional singleton coerced to a numeric (untyped → double).
fn opt_numeric(seq: &[Item], what: &str) -> EngineResult<Option<AtomicValue>> {
    match opt_atomic(seq, what)? {
        None => Ok(None),
        Some(AtomicValue::Untyped(s)) => Ok(Some(AtomicValue::Double(
            xqa_xdm::parse_double(&s).map_err(EngineError::from)?,
        ))),
        Some(v @ (AtomicValue::Integer(_) | AtomicValue::Decimal(_) | AtomicValue::Double(_))) => {
            Ok(Some(v))
        }
        Some(other) => Err(EngineError::dynamic(
            ErrorCode::XPTY0004,
            format!("{what}: expected a number, got {}", other.atomic_type()),
        )),
    }
}

/// Arithmetic with the integer → decimal → double promotion ladder.
pub(crate) fn eval_arith(op: ArithOp, lhs: &[Item], rhs: &[Item]) -> EngineResult<Sequence> {
    let a = opt_numeric(lhs, "arithmetic")?;
    let b = opt_numeric(rhs, "arithmetic")?;
    let (a, b) = match (a, b) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Sequence::Empty),
    };
    use AtomicValue as V;
    let out = match (&a, &b) {
        (V::Double(_), _) | (_, V::Double(_)) => {
            let x = a.to_double()?;
            let y = b.to_double()?;
            double_arith(op, x, y)?
        }
        (V::Integer(x), V::Integer(y)) => integer_arith(op, *x, *y)?,
        _ => {
            let x = to_decimal(&a)?;
            let y = to_decimal(&b)?;
            decimal_arith(op, &x, &y)?
        }
    };
    Ok(Sequence::one(Item::Atomic(out)))
}

fn to_decimal(v: &AtomicValue) -> EngineResult<Decimal> {
    Ok(match v {
        AtomicValue::Integer(i) => Decimal::from_i64(*i),
        AtomicValue::Decimal(d) => *d,
        _ => unreachable!("filtered by eval_arith"),
    })
}

pub(crate) fn integer_arith(op: ArithOp, x: i64, y: i64) -> EngineResult<AtomicValue> {
    Ok(match op {
        ArithOp::Add => AtomicValue::Integer(x.checked_add(y).ok_or_else(overflow)?),
        ArithOp::Sub => AtomicValue::Integer(x.checked_sub(y).ok_or_else(overflow)?),
        ArithOp::Mul => AtomicValue::Integer(x.checked_mul(y).ok_or_else(overflow)?),
        ArithOp::Div => {
            // Integer ÷ integer is a decimal in XQuery.
            AtomicValue::Decimal(Decimal::from_i64(x).checked_div(&Decimal::from_i64(y))?)
        }
        ArithOp::IDiv => {
            if y == 0 {
                return Err(EngineError::dynamic(
                    ErrorCode::FOAR0001,
                    "integer division by zero",
                ));
            }
            AtomicValue::Integer(x.checked_div(y).ok_or_else(overflow)?)
        }
        ArithOp::Mod => {
            if y == 0 {
                return Err(EngineError::dynamic(ErrorCode::FOAR0001, "modulus by zero"));
            }
            AtomicValue::Integer(x % y)
        }
    })
}

pub(crate) fn decimal_arith(op: ArithOp, x: &Decimal, y: &Decimal) -> EngineResult<AtomicValue> {
    Ok(match op {
        ArithOp::Add => AtomicValue::Decimal(x.checked_add(y)?),
        ArithOp::Sub => AtomicValue::Decimal(x.checked_sub(y)?),
        ArithOp::Mul => AtomicValue::Decimal(x.checked_mul(y)?),
        ArithOp::Div => AtomicValue::Decimal(x.checked_div(y)?),
        ArithOp::IDiv => {
            AtomicValue::Integer(i64::try_from(x.checked_idiv(y)?).map_err(|_| overflow())?)
        }
        ArithOp::Mod => AtomicValue::Decimal(x.checked_rem(y)?),
    })
}

pub(crate) fn double_arith(op: ArithOp, x: f64, y: f64) -> EngineResult<AtomicValue> {
    Ok(match op {
        ArithOp::Add => AtomicValue::Double(x + y),
        ArithOp::Sub => AtomicValue::Double(x - y),
        ArithOp::Mul => AtomicValue::Double(x * y),
        ArithOp::Div => AtomicValue::Double(x / y),
        ArithOp::IDiv => {
            if y == 0.0 || y.is_nan() || x.is_nan() || x.is_infinite() {
                return Err(EngineError::dynamic(
                    ErrorCode::FOAR0001,
                    "invalid operands to idiv",
                ));
            }
            AtomicValue::Integer((x / y).trunc() as i64)
        }
        ArithOp::Mod => AtomicValue::Double(x % y),
    })
}

/// Sort nodes into document order and drop duplicate identities.
pub(crate) fn dedup_sort_document_order(items: &mut Vec<Item>) {
    items.sort_by(|a, b| match (a, b) {
        (Item::Node(x), Item::Node(y)) => x.document_order(y),
        _ => std::cmp::Ordering::Equal,
    });
    items.dedup_by(|a, b| match (a, b) {
        (Item::Node(x), Item::Node(y)) => x.is_same_node(y),
        _ => false,
    });
}

fn node_identity_key(n: &NodeHandle) -> (u64, u32) {
    (n.document().serial(), n.id())
}

fn eval_set_op(op: SetOp, lhs: Sequence, rhs: Sequence) -> EngineResult<Sequence> {
    use std::collections::HashSet;
    let as_nodes = |seq: Sequence| -> EngineResult<Vec<NodeHandle>> {
        seq.into_iter()
            .map(|i| match i {
                Item::Node(n) => Ok(n),
                Item::Atomic(_) => Err(EngineError::dynamic(
                    ErrorCode::XPTY0004,
                    "set operations require node sequences",
                )),
            })
            .collect()
    };
    let l = as_nodes(lhs)?;
    let r = as_nodes(rhs)?;
    let r_ids: HashSet<(u64, u32)> = r.iter().map(node_identity_key).collect();
    let mut out: Vec<Item> = match op {
        SetOp::Union => l.into_iter().chain(r).map(Item::Node).collect(),
        SetOp::Intersect => l
            .into_iter()
            .filter(|n| r_ids.contains(&node_identity_key(n)))
            .map(Item::Node)
            .collect(),
        SetOp::Except => l
            .into_iter()
            .filter(|n| !r_ids.contains(&node_identity_key(n)))
            .map(Item::Node)
            .collect(),
    };
    dedup_sort_document_order(&mut out);
    Ok(out.into())
}

/// Atomize a sequence and join the string values with single spaces
/// (attribute value templates, computed constructors).
fn atomize_join(seq: &[Item]) -> String {
    let mut out = String::new();
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&item.atomize().string_value());
    }
    out
}

/// Node-test matching; `principal_attribute` is true on the attribute
/// axis, where name tests select attributes.
fn test_matches(test: &NodeTestIr, node: &NodeHandle, principal_attribute: bool) -> bool {
    match test {
        NodeTestIr::AnyKind => true,
        NodeTestIr::Name(q) => {
            let kind_ok = if principal_attribute {
                node.kind() == NodeKind::Attribute
            } else {
                node.kind() == NodeKind::Element
            };
            kind_ok && node.name() == Some(q)
        }
        NodeTestIr::Wildcard => {
            if principal_attribute {
                node.kind() == NodeKind::Attribute
            } else {
                node.kind() == NodeKind::Element
            }
        }
        NodeTestIr::Text => node.kind() == NodeKind::Text,
        NodeTestIr::Comment => node.kind() == NodeKind::Comment,
        NodeTestIr::Pi(target) => {
            node.kind() == NodeKind::ProcessingInstruction
                && target
                    .as_ref()
                    .map(|t| node.name().map(|q| q.local_part() == t).unwrap_or(false))
                    .unwrap_or(true)
        }
        NodeTestIr::Element(name) => {
            node.kind() == NodeKind::Element
                && name
                    .as_ref()
                    .map(|q| node.name() == Some(q))
                    .unwrap_or(true)
        }
        NodeTestIr::Attribute(name) => {
            node.kind() == NodeKind::Attribute
                && name
                    .as_ref()
                    .map(|q| node.name() == Some(q))
                    .unwrap_or(true)
        }
        NodeTestIr::Document => node.kind() == NodeKind::Document,
    }
}
