//! AST → IR lowering with static checks.
//!
//! The compiler resolves variables to frame slots and functions to ids,
//! raising static errors for:
//! - undefined variables (`XPST0008`) — including the paper's §3.2 rule
//!   that variables bound *before* `group by` are out of scope in the
//!   clauses *after* it (a dedicated diagnostic explains the rule);
//! - unknown functions or wrong arity (`XPST0017`);
//! - a grouping expression referencing another grouping variable (§3.2);
//! - unknown `using` comparators (must be a declared arity-2 function).

use crate::casts::cast_target_from_name;
use crate::error::{EngineError, EngineResult};
use crate::functions;
use crate::ir::{self, Ir};
use std::collections::HashMap;
use std::sync::Arc;
use xqa_frontend::ast;
use xqa_xdm::{Decimal, ErrorCode, QName};

/// Compile a parsed module to an executable query.
pub fn compile(module: &ast::Module) -> EngineResult<ir::CompiledQuery> {
    let mut c = Compiler::new();
    // Pass 1: register function signatures (enables mutual recursion).
    for f in &module.prolog.functions {
        c.declare_function(f)?;
    }
    // Pass 2: compile function bodies.
    let mut functions = Vec::with_capacity(module.prolog.functions.len());
    for (id, f) in module.prolog.functions.iter().enumerate() {
        functions.push(c.compile_function(id, f)?);
    }
    // Globals, in order (each sees the previous ones).
    let mut globals = Vec::new();
    for v in &module.prolog.variables {
        c.frame = Frame::default();
        let init = c.compile_expr(&v.init)?;
        let init = match &v.ty {
            Some(ty) => wrap_type_check(init, c.compile_seq_type(ty)?, &format!("${}", v.name)),
            None => init,
        };
        globals.push(ir::GlobalInit {
            name: v.name.clone(),
            init,
            frame_size: c.frame.max_slots,
        });
        let idx = globals.len() - 1;
        c.globals.insert(v.name.clone(), idx);
    }
    // Main body.
    c.frame = Frame::default();
    let body = c.compile_expr(&module.body)?;
    Ok(ir::CompiledQuery {
        globals,
        functions,
        body,
        frame_size: c.frame.max_slots,
        ordered: module.prolog.ordering != Some(ast::OrderingMode::Unordered),
        threads: 1,
    })
}

#[derive(Default)]
struct Frame {
    /// Innermost-last visible bindings.
    bindings: Vec<(String, ir::Slot)>,
    next_slot: usize,
    max_slots: usize,
}

impl Frame {
    fn bind(&mut self, name: &str) -> ir::Slot {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot);
        self.bindings.push((name.to_string(), slot));
        slot
    }

    fn lookup(&self, name: &str) -> Option<ir::Slot> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    fn mark(&self) -> usize {
        self.bindings.len()
    }

    /// Drop visibility of bindings made after `mark` (slots stay
    /// allocated — tuples may still carry their values).
    fn truncate(&mut self, mark: usize) -> Vec<String> {
        self.bindings
            .split_off(mark)
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    }
}

struct Compiler {
    frame: Frame,
    globals: HashMap<String, ir::GlobalSlot>,
    /// (name, arity) → function id.
    function_ids: HashMap<(String, usize), ir::FunctionId>,
    /// Signatures registered in pass 1.
    signatures: Vec<FunctionSig>,
    /// Names hidden by an enclosing `group by` (for the §3.2 diagnostic).
    group_hidden: Vec<Vec<String>>,
}

struct FunctionSig {
    arity: usize,
}

impl Compiler {
    fn new() -> Compiler {
        Compiler {
            frame: Frame::default(),
            globals: HashMap::new(),
            function_ids: HashMap::new(),
            signatures: Vec::new(),
            group_hidden: Vec::new(),
        }
    }

    fn declare_function(&mut self, f: &ast::FunctionDecl) -> EngineResult<()> {
        let name = f.name.to_string();
        let key = (name.clone(), f.params.len());
        if self.function_ids.contains_key(&key) {
            return Err(EngineError::stat(
                ErrorCode::XPST0017,
                format!("duplicate function declaration {name}#{}", f.params.len()),
            ));
        }
        let id = self.signatures.len();
        self.function_ids.insert(key, id);
        let _ = name;
        self.signatures.push(FunctionSig {
            arity: f.params.len(),
        });
        Ok(())
    }

    fn compile_function(
        &mut self,
        id: ir::FunctionId,
        f: &ast::FunctionDecl,
    ) -> EngineResult<ir::UserFunction> {
        debug_assert_eq!(self.signatures[id].arity, f.params.len());
        self.frame = Frame::default();
        let mut param_types = Vec::new();
        for p in &f.params {
            self.frame.bind(&p.name);
            param_types.push(match &p.ty {
                Some(t) => Some(self.compile_seq_type(t)?),
                None => None,
            });
        }
        let body = self.compile_expr(&f.body)?;
        let return_type = match &f.return_type {
            Some(t) => Some(self.compile_seq_type(t)?),
            None => None,
        };
        Ok(ir::UserFunction {
            name: f.name.to_string(),
            arity: f.params.len(),
            param_types,
            return_type,
            body,
            frame_size: self.frame.max_slots,
        })
    }

    fn compile_seq_type(&self, t: &ast::SequenceType) -> EngineResult<ir::SeqTypeIr> {
        let item = match &t.item {
            ast::ItemType::AnyItem => ir::ItemTypeIr::AnyItem,
            ast::ItemType::AnyNode => ir::ItemTypeIr::AnyNode,
            ast::ItemType::Element(n) => ir::ItemTypeIr::Element(n.as_ref().map(to_qname)),
            ast::ItemType::Attribute(n) => ir::ItemTypeIr::Attribute(n.as_ref().map(to_qname)),
            ast::ItemType::Document => ir::ItemTypeIr::Document,
            ast::ItemType::Text => ir::ItemTypeIr::Text,
            ast::ItemType::Comment => ir::ItemTypeIr::Comment,
            ast::ItemType::ProcessingInstruction => ir::ItemTypeIr::Pi,
            ast::ItemType::EmptySequence => ir::ItemTypeIr::EmptySequence,
            ast::ItemType::Atomic(name) => {
                if name.local == "anyAtomicType"
                    && matches!(name.prefix.as_deref(), None | Some("xs"))
                {
                    ir::ItemTypeIr::AnyAtomic
                } else {
                    match cast_target_from_name(name.prefix.as_deref(), &name.local) {
                        Some(t) => ir::ItemTypeIr::Atomic(t),
                        None => {
                            return Err(EngineError::stat(
                                ErrorCode::XPST0003,
                                format!("unknown atomic type {name}"),
                            ))
                        }
                    }
                }
            }
        };
        let occurrence = match t.occurrence {
            ast::Occurrence::One => ir::OccurrenceIr::One,
            ast::Occurrence::Optional => ir::OccurrenceIr::Optional,
            ast::Occurrence::ZeroOrMore => ir::OccurrenceIr::ZeroOrMore,
            ast::Occurrence::OneOrMore => ir::OccurrenceIr::OneOrMore,
        };
        Ok(ir::SeqTypeIr { item, occurrence })
    }

    fn lookup_var(&self, name: &str) -> EngineResult<Ir> {
        if let Some(slot) = self.frame.lookup(name) {
            return Ok(Ir::Var(slot));
        }
        if let Some(&g) = self.globals.get(name) {
            return Ok(Ir::Global(g));
        }
        // The §3.2 diagnostic: the name exists but was hidden by group by.
        if self
            .group_hidden
            .iter()
            .any(|level| level.iter().any(|n| n == name))
        {
            return Err(EngineError::stat(
                ErrorCode::XPST0008,
                format!(
                    "variable ${name} is bound before 'group by' and is not in scope after it; \
                     rebind it as a grouping or nesting variable (paper §3.2)"
                ),
            ));
        }
        Err(EngineError::stat(
            ErrorCode::XPST0008,
            format!("undefined variable ${name}"),
        ))
    }

    fn compile_expr(&mut self, e: &ast::Expr) -> EngineResult<Ir> {
        Ok(match &e.kind {
            ast::ExprKind::StringLit(s) => Ir::Str(Arc::from(s.as_str())),
            ast::ExprKind::IntegerLit(v) => Ir::Int(*v),
            ast::ExprKind::DecimalLit(s) => Ir::Dec(Decimal::parse(s).map_err(EngineError::from)?),
            ast::ExprKind::DoubleLit(v) => Ir::Dbl(*v),
            ast::ExprKind::VarRef(name) => self.lookup_var(name)?,
            ast::ExprKind::ContextItem => Ir::ContextItem,
            ast::ExprKind::Sequence(items) => {
                if items.is_empty() {
                    Ir::Empty
                } else {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        match self.compile_expr(item)? {
                            Ir::Seq(inner) => out.extend(inner),
                            Ir::Empty => {}
                            other => out.push(other),
                        }
                    }
                    match out.len() {
                        0 => Ir::Empty,
                        1 => out.into_iter().next().expect("len checked"),
                        _ => Ir::Seq(out),
                    }
                }
            }
            ast::ExprKind::Range(a, b) => Ir::Range(
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::Arith(op, a, b) => Ir::Arith(
                *op,
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::Unary(ast::UnaryOp::Neg, a) => Ir::Neg(Box::new(self.compile_expr(a)?)),
            ast::ExprKind::Unary(ast::UnaryOp::Plus, a) => self.compile_expr(a)?,
            ast::ExprKind::GeneralComp(op, a, b) => Ir::GeneralComp(
                comp_op(*op),
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::ValueComp(op, a, b) => Ir::ValueComp(
                comp_op(*op),
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::NodeComp(op, a, b) => Ir::NodeComp(
                *op,
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::And(a, b) => Ir::And(
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::Or(a, b) => Ir::Or(
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::SetOp(op, a, b) => Ir::SetOp(
                *op,
                Box::new(self.compile_expr(a)?),
                Box::new(self.compile_expr(b)?),
            ),
            ast::ExprKind::If {
                cond,
                then,
                otherwise,
            } => Ir::If(
                Box::new(self.compile_expr(cond)?),
                Box::new(self.compile_expr(then)?),
                Box::new(self.compile_expr(otherwise)?),
            ),
            ast::ExprKind::Quantified {
                kind,
                bindings,
                satisfies,
            } => {
                let mark = self.frame.mark();
                let mut compiled = Vec::with_capacity(bindings.len());
                for (var, expr) in bindings {
                    let e = self.compile_expr(expr)?;
                    let slot = self.frame.bind(var);
                    compiled.push((slot, e));
                }
                let satisfies = Box::new(self.compile_expr(satisfies)?);
                self.frame.truncate(mark);
                Ir::Quantified {
                    kind: *kind,
                    bindings: compiled,
                    satisfies,
                }
            }
            ast::ExprKind::Flwor(f) => self.compile_flwor(f)?,
            ast::ExprKind::Path(p) => self.compile_path(p)?,
            ast::ExprKind::Filter { base, predicates } => {
                let base = Box::new(self.compile_expr(base)?);
                let predicates = self.compile_predicates(predicates)?;
                Ir::Filter { base, predicates }
            }
            ast::ExprKind::FunctionCall { name, args } => self.compile_call(name, args)?,
            ast::ExprKind::DirectElement(el) => self.compile_direct_element(el)?,
            ast::ExprKind::DirectComment(text) => Ir::Comment(Arc::from(text.as_str())),
            ast::ExprKind::DirectPi(target, data) => {
                Ir::Pi(QName::local(target.as_str()), Arc::from(data.as_str()))
            }
            ast::ExprKind::ComputedElement { name, content } => {
                let content = match content {
                    Some(c) => vec![ir::ContentIr::Enclosed(self.compile_expr(c)?)],
                    None => Vec::new(),
                };
                Ir::Element(Box::new(ir::ElementIr {
                    name: to_qname(name),
                    attributes: Vec::new(),
                    content,
                }))
            }
            ast::ExprKind::ComputedAttribute { name, content } => Ir::Attribute {
                name: to_qname(name),
                value: match content {
                    Some(c) => Some(Box::new(self.compile_expr(c)?)),
                    None => None,
                },
            },
            ast::ExprKind::ComputedText(content) => Ir::Text(match content {
                Some(c) => Some(Box::new(self.compile_expr(c)?)),
                None => None,
            }),
            ast::ExprKind::InstanceOf(a, ty) => {
                Ir::InstanceOf(Box::new(self.compile_expr(a)?), self.compile_seq_type(ty)?)
            }
            ast::ExprKind::CastAs(a, name, optional) => {
                match cast_target_from_name(name.prefix.as_deref(), &name.local) {
                    Some(t) => Ir::Cast(Box::new(self.compile_expr(a)?), t, *optional),
                    None => {
                        return Err(EngineError::stat(
                            ErrorCode::XPST0003,
                            format!("unknown cast target {name}"),
                        ))
                    }
                }
            }
            ast::ExprKind::CastableAs(a, name, optional) => {
                match cast_target_from_name(name.prefix.as_deref(), &name.local) {
                    Some(t) => Ir::Castable(Box::new(self.compile_expr(a)?), t, *optional),
                    None => {
                        return Err(EngineError::stat(
                            ErrorCode::XPST0003,
                            format!("unknown cast target {name}"),
                        ))
                    }
                }
            }
        })
    }

    fn compile_predicates(&mut self, preds: &[ast::Expr]) -> EngineResult<Vec<Ir>> {
        preds.iter().map(|p| self.compile_expr(p)).collect()
    }

    fn compile_call(&mut self, name: &ast::Name, args: &[ast::Expr]) -> EngineResult<Ir> {
        let compiled: Vec<Ir> = args
            .iter()
            .map(|a| self.compile_expr(a))
            .collect::<EngineResult<_>>()?;
        // User functions take precedence for prefixed names they define
        // (`local:` in practice).
        let key = (name.to_string(), args.len());
        if let Some(&id) = self.function_ids.get(&key) {
            return Ok(Ir::CallUser(id, compiled));
        }
        if let Some(b) = functions::resolve(name.prefix.as_deref(), &name.local) {
            let (min, max) = functions::arity(b);
            if args.len() < min || args.len() > max {
                return Err(EngineError::stat(
                    ErrorCode::XPST0017,
                    format!(
                        "wrong number of arguments for {name}(): got {}, expected {}",
                        args.len(),
                        if max == usize::MAX {
                            format!("at least {min}")
                        } else if min == max {
                            format!("{min}")
                        } else {
                            format!("{min} to {max}")
                        }
                    ),
                ));
            }
            return Ok(Ir::CallBuiltin(b, compiled));
        }
        Err(EngineError::stat(
            ErrorCode::XPST0017,
            format!("unknown function {name}() with arity {}", args.len()),
        ))
    }

    fn compile_flwor(&mut self, f: &ast::Flwor) -> EngineResult<Ir> {
        let flwor_mark = self.frame.mark();
        let mut clauses = Vec::new();
        for clause in &f.clauses {
            match clause {
                ast::InitialClause::For(bindings) => {
                    for b in bindings {
                        let expr = self.compile_expr(&b.expr)?;
                        let slot = self.frame.bind(&b.var);
                        let at_slot = b.at.as_ref().map(|v| self.frame.bind(v));
                        let ty = match &b.ty {
                            Some(t) => Some(self.compile_seq_type(t)?),
                            None => None,
                        };
                        clauses.push(ir::ClauseIr::For {
                            slot,
                            at_slot,
                            ty,
                            expr,
                        });
                    }
                }
                ast::InitialClause::Let(bindings) => {
                    for b in bindings {
                        let expr = self.compile_expr(&b.expr)?;
                        let slot = self.frame.bind(&b.var);
                        let ty = match &b.ty {
                            Some(t) => Some(self.compile_seq_type(t)?),
                            None => None,
                        };
                        clauses.push(ir::ClauseIr::Let { slot, ty, expr });
                    }
                }
                ast::InitialClause::Count(var) => {
                    let slot = self.frame.bind(var);
                    clauses.push(ir::ClauseIr::Count { slot });
                }
                ast::InitialClause::Window(w) => {
                    clauses.push(ir::ClauseIr::Window(Box::new(self.compile_window(w)?)));
                }
            }
        }
        if let Some(w) = &f.where_clause {
            clauses.push(ir::ClauseIr::Where(self.compile_expr(w)?));
        }

        let mut hidden_pushed = false;
        if let Some(g) = &f.group_by {
            // Grouping/nesting expressions and nest order-by keys are
            // compiled in the *pre-group* scope (§3.1, §3.4.1).
            let mut key_exprs = Vec::new();
            for key in &g.keys {
                key_exprs.push((self.compile_expr(&key.expr)?, key.using.clone()));
            }
            let mut nest_parts = Vec::new();
            for nest in &g.nests {
                let expr = self.compile_expr(&nest.expr)?;
                let order_by = match &nest.order_by {
                    Some(ob) => Some(self.compile_order_by(ob)?),
                    None => None,
                };
                nest_parts.push((expr, order_by));
            }
            // Hide everything bound by this FLWOR before the group by.
            let hidden = self.frame.truncate(flwor_mark);
            self.group_hidden.push(hidden);
            hidden_pushed = true;
            // Bind output variables.
            let mut keys = Vec::new();
            for (key, (expr, using)) in g.keys.iter().zip(key_exprs) {
                let slot = self.frame.bind(&key.var);
                let using = match using {
                    None => None,
                    Some(name) => {
                        let key2 = (name.to_string(), 2usize);
                        match self.function_ids.get(&key2) {
                            Some(&id) => Some(id),
                            None => {
                                return Err(EngineError::stat(
                                    ErrorCode::XPST0017,
                                    format!(
                                        "'using {name}' requires a declared function \
                                         {name}($a, $b) of arity 2"
                                    ),
                                ))
                            }
                        }
                    }
                };
                keys.push(ir::GroupKeyIr { expr, slot, using });
            }
            let mut nests = Vec::new();
            for (nest, (expr, order_by)) in g.nests.iter().zip(nest_parts) {
                let slot = self.frame.bind(&nest.var);
                nests.push(ir::NestIr {
                    expr,
                    order_by,
                    slot,
                });
            }
            clauses.push(ir::ClauseIr::GroupBy(ir::GroupByIr { keys, nests }));

            for clause in &f.post_group_clauses {
                match clause {
                    ast::PostGroupClause::Let(b) => {
                        let expr = self.compile_expr(&b.expr)?;
                        let slot = self.frame.bind(&b.var);
                        let ty = match &b.ty {
                            Some(t) => Some(self.compile_seq_type(t)?),
                            None => None,
                        };
                        clauses.push(ir::ClauseIr::Let { slot, ty, expr });
                    }
                    ast::PostGroupClause::Count(var) => {
                        let slot = self.frame.bind(var);
                        clauses.push(ir::ClauseIr::Count { slot });
                    }
                }
            }
            if let Some(w) = &f.post_group_where {
                clauses.push(ir::ClauseIr::Where(self.compile_expr(w)?));
            }
        }

        if let Some(ob) = &f.order_by {
            clauses.push(ir::ClauseIr::OrderBy(self.compile_order_by(ob)?));
        }

        let return_at = f.return_at.as_ref().map(|v| self.frame.bind(v));
        let return_expr = self.compile_expr(&f.return_expr)?;

        if hidden_pushed {
            self.group_hidden.pop();
        }
        self.frame.truncate(flwor_mark);
        let plan = ir::plan_pipeline(&clauses);
        let parallel = ir::parallel_eligible(&clauses);
        Ok(Ir::Flwor(Box::new(ir::FlworIr {
            clauses,
            plan,
            return_at,
            return_expr,
            parallel,
            // Filled by the engine's expression-compilation,
            // cardinality-estimation and join-unnesting passes after
            // all IR rewrites.
            programs: Vec::new(),
            estimates: Vec::new(),
            joins: Vec::new(),
        })))
    }

    /// Compile a window clause. Scoping per XQuery 3.0: the start
    /// condition sees its own variables; the end condition additionally
    /// sees the start variables; later clauses see everything plus the
    /// window variable itself.
    fn compile_window(&mut self, w: &ast::WindowClause) -> EngineResult<ir::WindowIr> {
        let expr = self.compile_expr(&w.expr)?;
        let bind_opt = |frame: &mut Frame, v: &Option<String>| v.as_ref().map(|n| frame.bind(n));
        let item_slot = bind_opt(&mut self.frame, &w.start.item_var);
        let at_slot = bind_opt(&mut self.frame, &w.start.at_var);
        let previous_slot = bind_opt(&mut self.frame, &w.start.previous_var);
        let next_slot = bind_opt(&mut self.frame, &w.start.next_var);
        let when = self.compile_expr(&w.start.when)?;
        let start = ir::WindowCondIr {
            item_slot,
            at_slot,
            previous_slot,
            next_slot,
            when,
        };
        let end = match &w.end {
            Some(c) => {
                let item_slot = bind_opt(&mut self.frame, &c.item_var);
                let at_slot = bind_opt(&mut self.frame, &c.at_var);
                let previous_slot = bind_opt(&mut self.frame, &c.previous_var);
                let next_slot = bind_opt(&mut self.frame, &c.next_var);
                let when = self.compile_expr(&c.when)?;
                Some(ir::WindowCondIr {
                    item_slot,
                    at_slot,
                    previous_slot,
                    next_slot,
                    when,
                })
            }
            None => None,
        };
        let slot = self.frame.bind(&w.var);
        Ok(ir::WindowIr {
            sliding: w.sliding,
            slot,
            expr,
            start,
            end,
            only_end: w.only_end,
        })
    }

    fn compile_order_by(&mut self, ob: &ast::OrderByClause) -> EngineResult<ir::OrderByIr> {
        let mut specs = Vec::new();
        for spec in &ob.specs {
            specs.push(ir::OrderSpecIr {
                expr: self.compile_expr(&spec.expr)?,
                descending: spec.descending,
                empty_greatest: spec.empty == Some(ast::EmptyOrder::Greatest),
            });
        }
        Ok(ir::OrderByIr {
            stable: ob.stable,
            specs,
            limit: None,
        })
    }

    fn compile_path(&mut self, p: &ast::Path) -> EngineResult<Ir> {
        let start = match &p.start {
            ast::PathStart::Context => ir::PathStartIr::Context,
            ast::PathStart::Root => ir::PathStartIr::Root,
            ast::PathStart::Expr(e) => ir::PathStartIr::Expr(self.compile_expr(e)?),
        };
        let mut steps = Vec::with_capacity(p.steps.len());
        for step in &p.steps {
            steps.push(match step {
                ast::Step::Axis(s) => ir::StepIr::Axis {
                    axis: s.axis,
                    test: compile_node_test(&s.test),
                    predicates: self.compile_predicates(&s.predicates)?,
                },
                ast::Step::Expr { expr, predicates } => ir::StepIr::Expr {
                    expr: self.compile_expr(expr)?,
                    predicates: self.compile_predicates(predicates)?,
                },
            });
        }
        Ok(Ir::Path(Box::new(ir::PathIr {
            start,
            steps,
            access: ir::AccessPathIr::Walk,
        })))
    }

    fn compile_direct_element(&mut self, el: &ast::DirectElement) -> EngineResult<Ir> {
        let mut attributes = Vec::new();
        for (name, parts) in &el.attributes {
            let mut compiled = Vec::new();
            for part in parts {
                compiled.push(match part {
                    ast::AttrPart::Literal(s) => ir::AttrPartIr::Literal(Arc::from(s.as_str())),
                    ast::AttrPart::Enclosed(e) => ir::AttrPartIr::Enclosed(self.compile_expr(e)?),
                });
            }
            attributes.push((to_qname(name), compiled));
        }
        let mut content = Vec::new();
        for part in &el.content {
            content.push(match part {
                ast::ContentPart::Literal(s) => ir::ContentIr::Literal(Arc::from(s.as_str())),
                ast::ContentPart::Enclosed(e) => ir::ContentIr::Enclosed(self.compile_expr(e)?),
                ast::ContentPart::Child(e) => ir::ContentIr::Child(self.compile_expr(e)?),
            });
        }
        Ok(Ir::Element(Box::new(ir::ElementIr {
            name: to_qname(&el.name),
            attributes,
            content,
        })))
    }
}

/// Wrap an initializer in a runtime type check.
fn wrap_type_check(init: Ir, _ty: ir::SeqTypeIr, _what: &str) -> Ir {
    // Global declared types are currently advisory; function parameter
    // and return types are enforced at call boundaries in the evaluator.
    init
}

fn comp_op(op: ast::Comparison) -> xqa_xdm::CompOp {
    match op {
        ast::Comparison::Eq => xqa_xdm::CompOp::Eq,
        ast::Comparison::Ne => xqa_xdm::CompOp::Ne,
        ast::Comparison::Lt => xqa_xdm::CompOp::Lt,
        ast::Comparison::Le => xqa_xdm::CompOp::Le,
        ast::Comparison::Gt => xqa_xdm::CompOp::Gt,
        ast::Comparison::Ge => xqa_xdm::CompOp::Ge,
    }
}

fn to_qname(n: &ast::Name) -> QName {
    match &n.prefix {
        Some(p) => QName::prefixed(p.as_str(), n.local.as_str()),
        None => QName::local(n.local.as_str()),
    }
}

fn compile_node_test(t: &ast::NodeTest) -> ir::NodeTestIr {
    match t {
        ast::NodeTest::Name(n) => ir::NodeTestIr::Name(to_qname(n)),
        ast::NodeTest::Wildcard => ir::NodeTestIr::Wildcard,
        ast::NodeTest::AnyKind => ir::NodeTestIr::AnyKind,
        ast::NodeTest::Text => ir::NodeTestIr::Text,
        ast::NodeTest::Comment => ir::NodeTestIr::Comment,
        ast::NodeTest::ProcessingInstruction(target) => ir::NodeTestIr::Pi(target.clone()),
        ast::NodeTest::Element(n) => ir::NodeTestIr::Element(n.as_ref().map(to_qname)),
        ast::NodeTest::Attribute(n) => ir::NodeTestIr::Attribute(n.as_ref().map(to_qname)),
        ast::NodeTest::Document => ir::NodeTestIr::Document,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_frontend::parse_query;

    fn compile_src(src: &str) -> EngineResult<ir::CompiledQuery> {
        compile(&parse_query(src).expect("parse"))
    }

    #[test]
    fn literals_and_arithmetic_compile() {
        let q = compile_src("1 + 2.5").unwrap();
        assert!(matches!(q.body, Ir::Arith(..)));
        assert_eq!(q.frame_size, 0);
    }

    #[test]
    fn undefined_variable_is_static_error() {
        let err = compile_src("$nope").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0008);
        assert!(err.to_string().contains("$nope"));
    }

    #[test]
    fn flwor_allocates_slots() {
        let q = compile_src("for $b in (1,2,3) let $p := $b return $p").unwrap();
        assert_eq!(q.frame_size, 2);
    }

    #[test]
    fn pre_group_variable_out_of_scope_after_group_by() {
        let err = compile_src("for $b in (1,2) group by $b into $k return $b").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0008);
        assert!(err.to_string().contains("group by"), "got: {err}");
    }

    #[test]
    fn rebinding_same_name_as_nest_variable_is_allowed_q7() {
        // Q7 rebinds $b as a nesting variable.
        let q = compile_src("for $b in (1,2) group by $b into $pub nest $b into $b return $b");
        assert!(q.is_ok(), "{q:?}");
    }

    #[test]
    fn grouping_expression_may_not_reference_grouping_variable() {
        // $k is only in scope *after* groups form.
        let err =
            compile_src("for $b in (1,2) group by $b into $k, $k into $k2 return $k").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0008);
    }

    #[test]
    fn outer_variables_stay_in_scope_after_group_by() {
        let q = compile_src(
            "let $outer := 5 \
             return for $b in (1,2) group by $b into $k return ($k, $outer)",
        );
        assert!(q.is_ok(), "{q:?}");
    }

    #[test]
    fn unknown_function_is_xpst0017() {
        let err = compile_src("frobnicate(1)").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0017);
    }

    #[test]
    fn wrong_arity_is_xpst0017() {
        let err = compile_src("count()").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0017);
        let err = compile_src("count((1,2), 3)").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0017);
    }

    #[test]
    fn user_function_resolution_and_recursion() {
        let q = compile_src(
            "declare function local:fact($n as xs:integer) as xs:integer \
             { if ($n le 1) then 1 else $n * local:fact($n - 1) }; \
             local:fact(5)",
        )
        .unwrap();
        assert_eq!(q.functions.len(), 1);
        assert!(matches!(q.body, Ir::CallUser(0, _)));
    }

    #[test]
    fn using_requires_declared_arity_2_function() {
        let err = compile_src("for $b in (1,2) group by $b into $k using local:nope return $k")
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0017);
        let ok = compile_src(
            "declare function local:same($a as item()*, $b as item()*) as xs:boolean { true() }; \
             for $b in (1,2) group by $b into $k using local:same return $k",
        );
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn globals_compile_in_order() {
        let q = compile_src("declare variable $a := 1; declare variable $b := $a + 1; $b").unwrap();
        assert_eq!(q.globals.len(), 2);
        assert!(matches!(q.body, Ir::Global(1)));
        // $b referencing a later global fails
        let err =
            compile_src("declare variable $b := $c; declare variable $c := 1; $b").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0008);
    }

    #[test]
    fn quantified_scope_is_local() {
        let err = compile_src("(some $x in (1,2) satisfies $x = 1) and $x = 2").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0008);
    }

    #[test]
    fn duplicate_function_declaration_rejected() {
        let err = compile_src(
            "declare function local:f($a) { 1 }; \
             declare function local:f($b) { 2 }; \
             local:f(0)",
        )
        .unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0017);
    }

    #[test]
    fn arity_overloading_allowed() {
        let q = compile_src(
            "declare function local:f($a) { 1 }; \
             declare function local:f($a, $b) { 2 }; \
             local:f(0) + local:f(0, 0)",
        )
        .unwrap();
        assert_eq!(q.functions.len(), 2);
    }

    #[test]
    fn unknown_cast_target_rejected() {
        let err = compile_src("\"x\" cast as xs:anyURI").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XPST0003);
    }

    #[test]
    fn return_at_binds_rank_variable() {
        let q = compile_src("for $b in (3,1,2) order by $b return at $i ($i, $b)").unwrap();
        match q.body {
            Ir::Flwor(f) => assert!(f.return_at.is_some()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
