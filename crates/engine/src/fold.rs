//! Constant folding over the IR.
//!
//! A conservative bottom-up pass: arithmetic, comparisons, logic and
//! conditionals over literal operands are evaluated at compile time.
//! Folding never changes semantics for succeeding expressions; an
//! expression that would raise a *dynamic* error (`1 div 0`) is left
//! unfolded so the error is still raised at run time, when and if the
//! expression is actually evaluated.

use crate::eval::eval_arith;
use crate::ir::*;
use xqa_xdm::{effective_boolean_value, general_compare, value_compare, AtomicValue, Item};

/// Fold a whole query in place. Returns the number of folds performed.
pub fn fold_query(query: &mut CompiledQuery) -> usize {
    let mut count = 0;
    for g in &mut query.globals {
        fold_ir(&mut g.init, &mut count);
    }
    for f in &mut query.functions {
        fold_ir(&mut f.body, &mut count);
    }
    fold_ir(&mut query.body, &mut count);
    count
}

/// The literal value of an IR node, if it is one.
fn literal(ir: &Ir) -> Option<Item> {
    Some(match ir {
        Ir::Str(s) => Item::Atomic(AtomicValue::String(s.clone())),
        Ir::Int(v) => Item::from(*v),
        Ir::Dec(v) => Item::Atomic(AtomicValue::Decimal(*v)),
        Ir::Dbl(v) => Item::from(*v),
        Ir::CallBuiltin(crate::functions::Builtin::TrueFn, args) if args.is_empty() => {
            Item::from(true)
        }
        Ir::CallBuiltin(crate::functions::Builtin::FalseFn, args) if args.is_empty() => {
            Item::from(false)
        }
        _ => return None,
    })
}

/// Build an IR literal back from a singleton result.
fn make_literal(items: &[Item]) -> Option<Ir> {
    match items {
        [] => Some(Ir::Empty),
        [Item::Atomic(v)] => Some(match v {
            AtomicValue::String(s) => Ir::Str(s.clone()),
            AtomicValue::Integer(i) => Ir::Int(*i),
            AtomicValue::Decimal(d) => Ir::Dec(*d),
            AtomicValue::Double(d) => Ir::Dbl(*d),
            AtomicValue::Boolean(true) => {
                Ir::CallBuiltin(crate::functions::Builtin::TrueFn, Vec::new())
            }
            AtomicValue::Boolean(false) => {
                Ir::CallBuiltin(crate::functions::Builtin::FalseFn, Vec::new())
            }
            _ => return None,
        }),
        _ => None,
    }
}

fn fold_ir(ir: &mut Ir, count: &mut usize) {
    // Fold children first.
    for child in child_irs(ir) {
        fold_ir(child, count);
    }
    // Then try to collapse this node.
    let replacement: Option<Ir> =
        match &*ir {
            Ir::Arith(op, a, b) => match (literal(a), literal(b)) {
                (Some(la), Some(lb)) => eval_arith(*op, &[la], &[lb])
                    .ok()
                    .and_then(|r| make_literal(&r)),
                _ => None,
            },
            Ir::Neg(a) => literal(a).and_then(|v| {
                eval_arith(xqa_frontend::ast::ArithOp::Sub, &[Item::from(0i64)], &[v])
                    .ok()
                    .and_then(|r| make_literal(&r))
            }),
            Ir::ValueComp(op, a, b) => match (literal(a), literal(b)) {
                (Some(Item::Atomic(la)), Some(Item::Atomic(lb))) => value_compare(&la, &lb, *op)
                    .ok()
                    .map(|v| make_literal(&[Item::from(v)]).expect("boolean literal")),
                _ => None,
            },
            Ir::GeneralComp(op, a, b) => match (literal(a), literal(b)) {
                (Some(la), Some(lb)) => general_compare(&[la], &[lb], *op)
                    .ok()
                    .map(|v| make_literal(&[Item::from(v)]).expect("boolean literal")),
                _ => None,
            },
            Ir::And(a, b) => fold_logic(a, b, true),
            Ir::Or(a, b) => fold_logic(a, b, false),
            Ir::If(c, t, e) => literal(c).and_then(|v| {
                effective_boolean_value(&[v]).ok().map(|cond| {
                    if cond {
                        (**t).clone()
                    } else {
                        (**e).clone()
                    }
                })
            }),
            _ => None,
        };
    if let Some(new) = replacement {
        *ir = new;
        *count += 1;
    }
}

/// Fold `and`/`or` when an operand is a boolean literal.
/// `is_and` selects the identity/absorbing values.
fn fold_logic(a: &Ir, b: &Ir, is_and: bool) -> Option<Ir> {
    let lit_bool = |ir: &Ir| {
        literal(ir).and_then(|item| match item {
            Item::Atomic(AtomicValue::Boolean(v)) => Some(v),
            _ => None,
        })
    };
    let t = || Ir::CallBuiltin(crate::functions::Builtin::TrueFn, Vec::new());
    let f = || Ir::CallBuiltin(crate::functions::Builtin::FalseFn, Vec::new());
    let wrap_ebv =
        |ir: &Ir| Ir::CallBuiltin(crate::functions::Builtin::BooleanFn, vec![ir.clone()]);
    match (lit_bool(a), lit_bool(b)) {
        (Some(x), Some(y)) => Some(if is_and {
            if x && y {
                t()
            } else {
                f()
            }
        } else if x || y {
            t()
        } else {
            f()
        }),
        // and false / or true absorb regardless of the other side (XQuery
        // explicitly permits not evaluating the other operand).
        (Some(false), _) | (_, Some(false)) if is_and => Some(f()),
        (Some(true), _) | (_, Some(true)) if !is_and => Some(t()),
        // and true / or false reduce to the EBV of the other operand.
        (Some(true), None) if is_and => Some(wrap_ebv(b)),
        (None, Some(true)) if is_and => Some(wrap_ebv(a)),
        (Some(false), None) if !is_and => Some(wrap_ebv(b)),
        (None, Some(false)) if !is_and => Some(wrap_ebv(a)),
        _ => None,
    }
}

/// All direct child expressions of an IR node (shared with the IR-level
/// rewrites in [`crate::rewrite`]).
pub(crate) fn child_irs(ir: &mut Ir) -> Vec<&mut Ir> {
    let mut out: Vec<&mut Ir> = Vec::new();
    match ir {
        Ir::Str(_)
        | Ir::Int(_)
        | Ir::Dec(_)
        | Ir::Dbl(_)
        | Ir::Empty
        | Ir::Var(_)
        | Ir::Global(_)
        | Ir::ContextItem
        | Ir::Comment(_)
        | Ir::Pi(..) => {}
        Ir::Seq(items) => out.extend(items.iter_mut()),
        Ir::Range(a, b)
        | Ir::Arith(_, a, b)
        | Ir::GeneralComp(_, a, b)
        | Ir::ValueComp(_, a, b)
        | Ir::NodeComp(_, a, b)
        | Ir::And(a, b)
        | Ir::Or(a, b)
        | Ir::SetOp(_, a, b) => {
            out.push(a);
            out.push(b);
        }
        Ir::Neg(a) | Ir::InstanceOf(a, _) | Ir::Cast(a, _, _) | Ir::Castable(a, _, _) => {
            out.push(a)
        }
        Ir::If(c, t, e) => {
            out.push(c);
            out.push(t);
            out.push(e);
        }
        Ir::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            out.extend(bindings.iter_mut().map(|(_, e)| e));
            out.push(satisfies);
        }
        Ir::Flwor(f) => {
            for clause in &mut f.clauses {
                match clause {
                    ClauseIr::For { expr, .. } | ClauseIr::Let { expr, .. } => out.push(expr),
                    ClauseIr::Where(cond) => out.push(cond),
                    ClauseIr::Count { .. } => {}
                    ClauseIr::Window(w) => {
                        out.push(&mut w.expr);
                        out.push(&mut w.start.when);
                        if let Some(end) = &mut w.end {
                            out.push(&mut end.when);
                        }
                    }
                    ClauseIr::GroupBy(g) => {
                        out.extend(g.keys.iter_mut().map(|k| &mut k.expr));
                        for nest in &mut g.nests {
                            out.push(&mut nest.expr);
                            if let Some(ob) = &mut nest.order_by {
                                out.extend(ob.specs.iter_mut().map(|s| &mut s.expr));
                            }
                        }
                    }
                    ClauseIr::OrderBy(ob) => out.extend(ob.specs.iter_mut().map(|s| &mut s.expr)),
                }
            }
            out.push(&mut f.return_expr);
        }
        Ir::Path(p) => {
            if let PathStartIr::Expr(e) = &mut p.start {
                out.push(e);
            }
            for step in &mut p.steps {
                match step {
                    StepIr::Axis { predicates, .. } => out.extend(predicates.iter_mut()),
                    StepIr::Expr { expr, predicates } => {
                        out.push(expr);
                        out.extend(predicates.iter_mut());
                    }
                }
            }
        }
        Ir::Filter { base, predicates } => {
            out.push(base);
            out.extend(predicates.iter_mut());
        }
        Ir::CallBuiltin(_, args) | Ir::CallUser(_, args) => out.extend(args.iter_mut()),
        Ir::Element(el) => {
            for (_, parts) in &mut el.attributes {
                for part in parts {
                    if let AttrPartIr::Enclosed(e) = part {
                        out.push(e);
                    }
                }
            }
            for part in &mut el.content {
                match part {
                    ContentIr::Enclosed(e) | ContentIr::Child(e) => out.push(e),
                    ContentIr::Literal(_) => {}
                }
            }
        }
        Ir::Attribute { value, .. } => {
            if let Some(v) = value {
                out.push(v);
            }
        }
        Ir::Text(content) => {
            if let Some(c) = content {
                out.push(c);
            }
        }
    }
    out
}

/// Read-only twin of [`child_irs`], for analyses that inspect subtrees
/// while the parent is immutably borrowed (e.g. the join-unnesting
/// detector's slot-reference and rebuild-safety checks). Keep the
/// traversal coverage in sync with [`child_irs`].
pub(crate) fn child_irs_ref(ir: &Ir) -> Vec<&Ir> {
    let mut out: Vec<&Ir> = Vec::new();
    match ir {
        Ir::Str(_)
        | Ir::Int(_)
        | Ir::Dec(_)
        | Ir::Dbl(_)
        | Ir::Empty
        | Ir::Var(_)
        | Ir::Global(_)
        | Ir::ContextItem
        | Ir::Comment(_)
        | Ir::Pi(..) => {}
        Ir::Seq(items) => out.extend(items.iter()),
        Ir::Range(a, b)
        | Ir::Arith(_, a, b)
        | Ir::GeneralComp(_, a, b)
        | Ir::ValueComp(_, a, b)
        | Ir::NodeComp(_, a, b)
        | Ir::And(a, b)
        | Ir::Or(a, b)
        | Ir::SetOp(_, a, b) => {
            out.push(a);
            out.push(b);
        }
        Ir::Neg(a) | Ir::InstanceOf(a, _) | Ir::Cast(a, _, _) | Ir::Castable(a, _, _) => {
            out.push(a)
        }
        Ir::If(c, t, e) => {
            out.push(c);
            out.push(t);
            out.push(e);
        }
        Ir::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            out.extend(bindings.iter().map(|(_, e)| e));
            out.push(satisfies);
        }
        Ir::Flwor(f) => {
            for clause in &f.clauses {
                match clause {
                    ClauseIr::For { expr, .. } | ClauseIr::Let { expr, .. } => out.push(expr),
                    ClauseIr::Where(cond) => out.push(cond),
                    ClauseIr::Count { .. } => {}
                    ClauseIr::Window(w) => {
                        out.push(&w.expr);
                        out.push(&w.start.when);
                        if let Some(end) = &w.end {
                            out.push(&end.when);
                        }
                    }
                    ClauseIr::GroupBy(g) => {
                        out.extend(g.keys.iter().map(|k| &k.expr));
                        for nest in &g.nests {
                            out.push(&nest.expr);
                            if let Some(ob) = &nest.order_by {
                                out.extend(ob.specs.iter().map(|s| &s.expr));
                            }
                        }
                    }
                    ClauseIr::OrderBy(ob) => out.extend(ob.specs.iter().map(|s| &s.expr)),
                }
            }
            out.push(&f.return_expr);
        }
        Ir::Path(p) => {
            if let PathStartIr::Expr(e) = &p.start {
                out.push(e);
            }
            for step in &p.steps {
                match step {
                    StepIr::Axis { predicates, .. } => out.extend(predicates.iter()),
                    StepIr::Expr { expr, predicates } => {
                        out.push(expr);
                        out.extend(predicates.iter());
                    }
                }
            }
        }
        Ir::Filter { base, predicates } => {
            out.push(base);
            out.extend(predicates.iter());
        }
        Ir::CallBuiltin(_, args) | Ir::CallUser(_, args) => out.extend(args.iter()),
        Ir::Element(el) => {
            for (_, parts) in &el.attributes {
                for part in parts {
                    if let AttrPartIr::Enclosed(e) = part {
                        out.push(e);
                    }
                }
            }
            for part in &el.content {
                match part {
                    ContentIr::Enclosed(e) | ContentIr::Child(e) => out.push(e),
                    ContentIr::Literal(_) => {}
                }
            }
        }
        Ir::Attribute { value, .. } => {
            if let Some(v) = value {
                out.push(v);
            }
        }
        Ir::Text(content) => {
            if let Some(c) = content {
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use xqa_frontend::parse_query;

    fn folded(src: &str) -> (CompiledQuery, usize) {
        let module = parse_query(src).expect("parse");
        let mut q = compile::compile(&module).expect("compile");
        let n = fold_query(&mut q);
        (q, n)
    }

    #[test]
    fn arithmetic_folds() {
        let (q, n) = folded("1 + 2 * 3");
        assert!(n >= 2, "folded {n}");
        assert!(matches!(q.body, Ir::Int(7)), "{:?}", q.body);
        let (q, _) = folded("65.00 - 5.50");
        assert!(matches!(q.body, Ir::Dec(d) if d.to_string() == "59.5"));
        let (q, _) = folded("-(2 + 3)");
        assert!(matches!(q.body, Ir::Int(-5)));
    }

    #[test]
    fn dynamic_errors_are_not_folded() {
        // 1 div 0 must raise at run time, not compile time.
        let (q, n) = folded("1 div 0");
        assert_eq!(n, 0);
        assert!(matches!(q.body, Ir::Arith(..)));
    }

    #[test]
    fn comparisons_fold() {
        let (q, _) = folded("1 < 2");
        assert!(matches!(
            q.body,
            Ir::CallBuiltin(crate::functions::Builtin::TrueFn, _)
        ));
        let (q, _) = folded("\"a\" eq \"b\"");
        assert!(matches!(
            q.body,
            Ir::CallBuiltin(crate::functions::Builtin::FalseFn, _)
        ));
    }

    #[test]
    fn logic_folds_and_absorbs() {
        let (q, _) = folded("1 = 1 and 2 = 2");
        assert!(matches!(
            q.body,
            Ir::CallBuiltin(crate::functions::Builtin::TrueFn, _)
        ));
        // false absorbs even with a non-constant side
        let (q, _) = folded("for $x in (1, 2) return (1 = 2 and $x = 1)");
        let Ir::Flwor(f) = &q.body else {
            panic!("not flwor")
        };
        assert!(
            matches!(
                f.return_expr,
                Ir::CallBuiltin(crate::functions::Builtin::FalseFn, _)
            ),
            "{:?}",
            f.return_expr
        );
        // true reduces `and` to the other operand's EBV
        let (q, _) = folded("for $x in (1, 2) return (1 = 1 and $x = 1)");
        let Ir::Flwor(f) = &q.body else {
            panic!("not flwor")
        };
        assert!(
            matches!(
                f.return_expr,
                Ir::CallBuiltin(crate::functions::Builtin::BooleanFn, _)
            ),
            "{:?}",
            f.return_expr
        );
    }

    #[test]
    fn constant_conditionals_select_branch() {
        let (q, _) = folded("if (1 = 1) then \"yes\" else \"no\"");
        assert!(matches!(q.body, Ir::Str(ref s) if &**s == "yes"));
    }

    #[test]
    fn folding_inside_flwor_clauses() {
        let (q, n) = folded("for $x in (1, 2) where $x > 1 + 1 return $x * (2 + 3)");
        assert!(n >= 2, "folded {n}");
        // the where comparison's rhs and the multiply's rhs are literals now
        let Ir::Flwor(f) = &q.body else {
            panic!("not flwor")
        };
        let has_lit_5 = format!("{:?}", f.return_expr).contains("Int(5)");
        assert!(has_lit_5, "{:?}", f.return_expr);
    }

    #[test]
    fn variables_block_folding() {
        let (_, n) = folded("for $x in (1, 2) return $x + 1");
        assert_eq!(n, 0);
    }
}
