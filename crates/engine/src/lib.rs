//! # xqa-engine — compiler and evaluator
//!
//! Compiles the XQuery subset (plus the SIGMOD'05 `group by` / output
//! numbering extensions) to an IR and evaluates it over
//! [`xqa_xdm`] values.
//!
//! ```
//! use xqa_engine::{Engine, DynamicContext};
//! use xqa_xmlparse::parse_document;
//!
//! let doc = parse_document("<bib><book><price>10</price></book></bib>").unwrap();
//! let engine = Engine::new();
//! let query = engine.compile("sum(//book/price)").unwrap();
//! let mut ctx = DynamicContext::new();
//! ctx.set_context_document(&doc);
//! let result = query.run(&ctx).unwrap();
//! assert_eq!(result[0].string_value(), "10");
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod casts;
pub mod compile;
pub mod context;
pub mod error;
pub mod estimate;
mod eval;
pub mod explain;
mod flwor;
pub mod fold;
pub mod functions;
pub mod ir;
pub mod keys;
mod pipeline;
pub mod profile;
pub mod rewrite;
pub mod trace;
pub mod types;

pub use context::{DynamicContext, EvalStats, EvalStatsSnapshot, Focus};
pub use error::{EngineError, EngineResult};
pub use explain::plan_fingerprint;
pub use profile::{Clock, Misestimate, MonotonicClock, OpKind, QueryProfile, Span, TickClock};
pub use trace::{TraceEvent, TracePhase, TraceRing, TraceSink, Tracer};

use xqa_frontend::parse_query;
use xqa_xdm::Sequence;

/// Engine configuration.
///
/// `PartialEq`/`Eq`/`Hash` are derived so options can key a prepared-plan
/// cache together with the query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineOptions {
    /// Detect the `distinct-values` + self-join pattern (Table 1's "Q"
    /// template) and rewrite it into an explicit `group by` plan. Off by
    /// default, matching the paper's experimental setup ("no rewrites
    /// were performed to detect the group-by implied in the query").
    pub detect_implicit_groupby: bool,
    /// Fold constant subexpressions at compile time (on by default;
    /// never changes results, only when work happens).
    pub constant_folding: bool,
    /// Push `[position() le k]`-style bounds over an `order by` FLWOR
    /// into the sort as a `limit`, so the streaming path runs a bounded
    /// top-k heap instead of a full sort (on by default; never changes
    /// results — the residual predicate stays in place).
    pub topk_pushdown: bool,
    /// Degree of intra-query parallelism for the streaming pipeline.
    /// `0` (the default) resolves at run time via the `XQA_THREADS`
    /// environment variable, falling back to
    /// `std::thread::available_parallelism`. `1` forces the exact
    /// single-threaded legacy execution path. Values above 1 split the
    /// outermost `for` binding sequence into morsels executed by that
    /// many scoped worker threads; output is byte-identical to serial.
    pub threads: usize,
    /// How leading `descendant::T` path steps are executed (see
    /// [`AccessPathMode`]). `Auto` (the default) consults the catalog
    /// statistics attached to the engine; the `XQA_FORCE_ACCESS_PATH`
    /// environment variable (`walk` | `index`) overrides at compile
    /// time, mirroring `XQA_THREADS`.
    pub access_path: AccessPathMode,
    /// How FLWOR clause expressions are evaluated (see [`ExprEvalMode`]).
    /// `Auto` (the default) compiles the scalar subset to register
    /// programs; the `XQA_FORCE_EXPR_EVAL` environment variable
    /// (`bytecode` | `tree`) overrides at compile time.
    pub expr_eval: ExprEvalMode,
    /// How joinable nested-FLWOR equality predicates are executed (see
    /// [`JoinMode`]). `Auto` (the default) consults catalog statistics;
    /// the `XQA_FORCE_JOIN` environment variable (`hash` | `nested`)
    /// overrides at compile time, mirroring `XQA_FORCE_ACCESS_PATH`.
    pub join: JoinMode,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            detect_implicit_groupby: false,
            constant_folding: true,
            topk_pushdown: true,
            threads: 0,
            access_path: AccessPathMode::Auto,
            expr_eval: ExprEvalMode::Auto,
            join: JoinMode::Auto,
        }
    }
}

/// Plan-time access-path policy for `//T` descendant scans and simple
/// value predicates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AccessPathMode {
    /// Decide from catalog statistics: index-annotate a scan only when
    /// statistics are attached and favor the index (selective name, or a
    /// value predicate the typed-value index can answer exactly). With
    /// no statistics attached every plan keeps the tree walk, so plans
    /// compiled without a catalog behave exactly as before.
    #[default]
    Auto,
    /// Never annotate: always tree-walk.
    Walk,
    /// Annotate every eligible scan shape regardless of statistics; the
    /// runtime still falls back to the walk per document when no store
    /// covers it or the value index cannot answer exactly.
    Index,
}

impl AccessPathMode {
    /// The wire/CLI name (`auto` | `walk` | `index`).
    pub fn as_str(&self) -> &'static str {
        match self {
            AccessPathMode::Auto => "auto",
            AccessPathMode::Walk => "walk",
            AccessPathMode::Index => "index",
        }
    }

    /// Parse a wire/CLI name; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<AccessPathMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(AccessPathMode::Auto),
            "walk" => Some(AccessPathMode::Walk),
            "index" => Some(AccessPathMode::Index),
            _ => None,
        }
    }
}

/// The effective access-path mode: `XQA_FORCE_ACCESS_PATH` (`walk` |
/// `index`) wins over the engine option, mirroring how `XQA_THREADS`
/// overrides the thread count.
pub fn resolve_access_path(requested: AccessPathMode) -> AccessPathMode {
    if let Ok(v) = std::env::var("XQA_FORCE_ACCESS_PATH") {
        if let Some(mode) = AccessPathMode::parse(&v) {
            return mode;
        }
    }
    requested
}

/// Plan-time expression-evaluation policy for FLWOR clause expressions
/// (`for` bindings, `let` values, `where` conditions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExprEvalMode {
    /// Compile the scalar subset to register programs (the bytecode
    /// path); expressions outside the subset stay on the tree-walker
    /// per expression, silently. Currently identical to `Bytecode` —
    /// the lowering itself decides per expression.
    #[default]
    Auto,
    /// Same as `Auto`: lower everything the scalar subset covers.
    Bytecode,
    /// Never lower: every expression evaluates on the IR tree-walker
    /// (the pre-bytecode behavior, kept as the differential baseline).
    Tree,
}

impl ExprEvalMode {
    /// The wire/CLI name (`auto` | `bytecode` | `tree`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ExprEvalMode::Auto => "auto",
            ExprEvalMode::Bytecode => "bytecode",
            ExprEvalMode::Tree => "tree",
        }
    }

    /// Parse a wire/CLI name; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<ExprEvalMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(ExprEvalMode::Auto),
            "bytecode" => Some(ExprEvalMode::Bytecode),
            "tree" => Some(ExprEvalMode::Tree),
            _ => None,
        }
    }
}

/// The effective expression-evaluation mode: `XQA_FORCE_EXPR_EVAL`
/// (`bytecode` | `tree`) wins over the engine option, mirroring
/// [`resolve_access_path`]. Unknown values are ignored, not errors.
pub fn resolve_expr_eval(requested: ExprEvalMode) -> ExprEvalMode {
    if let Ok(v) = std::env::var("XQA_FORCE_EXPR_EVAL") {
        if let Some(mode) = ExprEvalMode::parse(&v) {
            return mode;
        }
    }
    requested
}

/// Plan-time policy for joinable nested-FLWOR equality predicates
/// (an inner `for $y in <independent source> where $x/k eq $y/k`
/// binding, or its `some $y satisfies` existential form).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum JoinMode {
    /// Decide from catalog statistics: unnest to a `HashJoin` only when
    /// statistics are attached and the build side is either unknown or
    /// small enough to materialize ([`MAX_HASH_BUILD_ROWS`]). With no
    /// statistics attached every plan keeps the nested-loop evaluation,
    /// so plans compiled without a catalog behave exactly as before.
    #[default]
    Auto,
    /// Unnest every eligible join shape regardless of statistics; the
    /// runtime still falls back to an ordered build scan per probe when
    /// atom classes make hashing unable to reproduce comparison errors.
    Hash,
    /// Never unnest: always re-evaluate the inner FLWOR per tuple.
    Nested,
}

/// `Auto` declines to build a hash table the planner expects to exceed
/// this many rows (it would trade O(n·m) time for an oversized
/// materialization); `Hash` ignores the bound.
pub const MAX_HASH_BUILD_ROWS: u64 = 10_000_000;

impl JoinMode {
    /// The wire/CLI name (`auto` | `hash` | `nested`).
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinMode::Auto => "auto",
            JoinMode::Hash => "hash",
            JoinMode::Nested => "nested",
        }
    }

    /// Parse a wire/CLI name; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<JoinMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(JoinMode::Auto),
            "hash" => Some(JoinMode::Hash),
            "nested" => Some(JoinMode::Nested),
            _ => None,
        }
    }
}

/// The effective join mode: `XQA_FORCE_JOIN` (`hash` | `nested`) wins
/// over the engine option, mirroring [`resolve_access_path`]. Unknown
/// values are ignored, not errors.
pub fn resolve_join(requested: JoinMode) -> JoinMode {
    if let Ok(v) = std::env::var("XQA_FORCE_JOIN") {
        if let Some(mode) = JoinMode::parse(&v) {
            return mode;
        }
    }
    requested
}

/// Resolve a requested degree of parallelism to an effective thread
/// count: an explicit `requested > 0` wins, then a positive integer in
/// the `XQA_THREADS` environment variable, then
/// [`std::thread::available_parallelism`] (or 1 if unavailable).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("XQA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The kind of optimizer rewrite a [`RewriteNote`] records. The wire
/// names (`as_str`) key the service's rewrite-fired counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewriteKind {
    /// `distinct-values` self-join rewritten to explicit `group by`.
    ImplicitGroupBy,
    /// Constant subexpressions folded at compile time.
    ConstantFolding,
    /// Positional bound pushed into `order by` as a heap limit.
    TopKPushdown,
    /// `descendant-or-self::node()/child::T` fused to `descendant::T`.
    PathFusion,
    /// `//T` scan or value predicate annotated to resolve against the
    /// document store's label-range / typed-value indexes.
    IndexScan,
    /// Nested-FLWOR equality predicate over an independent source
    /// unnested into a `HashJoin` pipeline operator.
    JoinUnnest,
}

impl RewriteKind {
    /// Every rewrite kind, in compilation order.
    pub const ALL: [RewriteKind; 6] = [
        RewriteKind::ImplicitGroupBy,
        RewriteKind::ConstantFolding,
        RewriteKind::TopKPushdown,
        RewriteKind::PathFusion,
        RewriteKind::IndexScan,
        RewriteKind::JoinUnnest,
    ];

    /// The wire name of the rewrite.
    pub fn as_str(&self) -> &'static str {
        match self {
            RewriteKind::ImplicitGroupBy => "implicit-groupby",
            RewriteKind::ConstantFolding => "constant-folding",
            RewriteKind::TopKPushdown => "topk-pushdown",
            RewriteKind::PathFusion => "path-fusion",
            RewriteKind::IndexScan => "index-scan",
            RewriteKind::JoinUnnest => "join-unnest",
        }
    }
}

/// One optimizer rewrite that fired during compilation: a typed kind
/// plus a human-readable description saying what happened and where.
///
/// Derefs to the description `str`, so string-style call sites
/// (`note.contains(...)`, `format!("{note}")`) keep working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteNote {
    /// Which rewrite fired.
    pub kind: RewriteKind,
    /// What it did, and in which location (query body / global / function).
    pub detail: String,
}

impl std::ops::Deref for RewriteNote {
    type Target = str;

    fn deref(&self) -> &str {
        &self.detail
    }
}

impl std::fmt::Display for RewriteNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

/// The query engine: compiles query text into executable plans.
#[derive(Debug, Default, Clone)]
pub struct Engine {
    options: EngineOptions,
    /// Catalog statistics the access-path planner consults, attached by
    /// the service/CLI after loading documents. `None` = no catalog →
    /// `Auto` keeps every plan on the tree walk.
    statistics: Option<std::sync::Arc<xqa_storage::CatalogStatistics>>,
}

impl Engine {
    /// An engine with default options.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine with explicit options.
    pub fn with_options(options: EngineOptions) -> Engine {
        Engine {
            options,
            statistics: None,
        }
    }

    /// Attach catalog statistics for plan-time access-path decisions.
    pub fn set_statistics(
        &mut self,
        stats: std::sync::Arc<xqa_storage::CatalogStatistics>,
    ) -> &mut Self {
        self.statistics = Some(stats);
        self
    }

    /// Builder form of [`Engine::set_statistics`].
    pub fn with_statistics(
        mut self,
        stats: std::sync::Arc<xqa_storage::CatalogStatistics>,
    ) -> Self {
        self.statistics = Some(stats);
        self
    }

    /// The attached catalog statistics, if any.
    pub fn statistics(&self) -> Option<&std::sync::Arc<xqa_storage::CatalogStatistics>> {
        self.statistics.as_ref()
    }

    /// The active options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// Parse and compile a query.
    pub fn compile(&self, source: &str) -> EngineResult<PreparedQuery> {
        self.compile_traced(source, None)
    }

    /// Parse and compile a query, emitting parse / rewrite-fired /
    /// compile trace events through `tracer` when one is given.
    pub fn compile_traced(
        &self,
        source: &str,
        tracer: Option<&Tracer>,
    ) -> EngineResult<PreparedQuery> {
        let note = |kind: RewriteKind| move |detail: String| RewriteNote { kind, detail };
        let mut module = parse_query(source)?;
        if let Some(t) = tracer {
            t.emit(
                TracePhase::Parse,
                format!("parsed {} byte(s) of query text", source.len()),
            );
        }
        let mut rewrites: Vec<RewriteNote> = Vec::new();
        if self.options.detect_implicit_groupby {
            rewrites.extend(
                rewrite::detect_implicit_groupby(&mut module)
                    .into_iter()
                    .map(note(RewriteKind::ImplicitGroupBy)),
            );
        }
        let mut compiled = compile::compile(&module)?;
        compiled.threads = self.options.threads;
        if self.options.constant_folding {
            let folds = fold::fold_query(&mut compiled);
            if folds > 0 {
                rewrites.push(RewriteNote {
                    kind: RewriteKind::ConstantFolding,
                    detail: format!("constant folding: {folds} subexpression(s) folded"),
                });
            }
        }
        if self.options.topk_pushdown {
            // After folding, so literal bounds like `le 5 + 5` are
            // visible. The limit only changes how the order-by runs;
            // the residual predicate stays in place.
            rewrites.extend(
                rewrite::pushdown_topk(&mut compiled)
                    .into_iter()
                    .map(note(RewriteKind::TopKPushdown)),
            );
        }
        // Always-sound plan normalization: `//T` scans one descendant
        // pass instead of materializing every node of the subtree.
        rewrites.extend(
            rewrite::fuse_descendant_paths(&mut compiled)
                .into_iter()
                .map(note(RewriteKind::PathFusion)),
        );
        // After fusion, so `//T` is visible as a `descendant::T` step.
        rewrites.extend(
            rewrite::annotate_index_scans(
                &mut compiled,
                resolve_access_path(self.options.access_path),
                self.statistics.as_deref(),
            )
            .into_iter()
            .map(note(RewriteKind::IndexScan)),
        );
        // Join unnesting runs after index annotation so the build-side
        // cardinality gate sees the final access paths.
        rewrites.extend(
            rewrite::detect_join_unnest(
                &mut compiled,
                resolve_join(self.options.join),
                self.statistics.as_deref(),
            )
            .into_iter()
            .map(note(RewriteKind::JoinUnnest)),
        );
        // Cardinality estimation runs after every plan-shaping rewrite
        // (it reads top-k limits and access-path annotations) and
        // before expression compilation (which only fills programs).
        estimate::stamp_estimates(&mut compiled, self.statistics.as_deref());
        // Expression compilation runs last: every earlier rewrite
        // (folding, top-k pushdown, path fusion, index annotation)
        // mutates the IR the programs are lowered from.
        if resolve_expr_eval(self.options.expr_eval) != ExprEvalMode::Tree {
            let summary = bytecode::lower_query(&mut compiled);
            if let Some(t) = tracer {
                if !(summary.lowered.is_empty() && summary.interpreted.is_empty()) {
                    t.emit(
                        TracePhase::CompileExpr,
                        format!(
                            "expr bytecode: lowered {} [{}], interpreted {} [{}]",
                            summary.lowered.len(),
                            summary.lowered.join(", "),
                            summary.interpreted.len(),
                            summary.interpreted.join(", "),
                        ),
                    );
                }
            }
        }
        if let Some(t) = tracer {
            for r in &rewrites {
                t.emit(
                    TracePhase::RewriteFired,
                    format!("{}: {}", r.kind.as_str(), r.detail),
                );
            }
            t.emit(
                TracePhase::Compile,
                format!(
                    "compiled: {} global(s), {} function(s), frame size {}, streaming pipeline",
                    compiled.globals.len(),
                    compiled.functions.len(),
                    compiled.frame_size,
                ),
            );
        }
        let fingerprint = explain::plan_fingerprint(&compiled);
        Ok(PreparedQuery {
            compiled,
            rewrites,
            fingerprint,
        })
    }
}

/// A compiled, reusable query.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    compiled: ir::CompiledQuery,
    rewrites: Vec<RewriteNote>,
    fingerprint: u64,
}

impl PreparedQuery {
    /// Evaluate against a dynamic context.
    pub fn run(&self, ctx: &DynamicContext) -> EngineResult<Sequence> {
        eval::execute(&self.compiled, ctx)
    }

    /// Evaluate while streaming result items to `sink` batch by batch
    /// instead of materializing the full result sequence. Returns the
    /// total number of items handed to the sink.
    ///
    /// The error tells the caller exactly how far the stream got: a
    /// [`StreamError::BeforeFirstItem`] means nothing reached the sink
    /// (the caller may still produce an ordinary error response), while
    /// [`StreamError::MidStream`] / [`StreamError::Sink`] mean output
    /// was already handed over and the transport must signal truncation
    /// itself (e.g. by closing a chunked HTTP response without the
    /// terminal chunk).
    pub fn run_streaming(
        &self,
        ctx: &DynamicContext,
        sink: &mut dyn FnMut(&[xqa_xdm::Item]) -> std::io::Result<()>,
    ) -> Result<u64, StreamError> {
        let mut emitted: u64 = 0;
        let mut sink_error: Option<std::io::Error> = None;
        let result = eval::execute_streaming(&self.compiled, ctx, &mut |items| {
            match sink(items) {
                Ok(()) => {
                    emitted += items.len() as u64;
                    Ok(())
                }
                Err(e) => {
                    // Remember the transport failure and abort the
                    // pipeline through the engine's error channel; the
                    // classification below turns it back into `Sink`.
                    sink_error = Some(e);
                    Err(EngineError::dynamic(
                        xqa_xdm::ErrorCode::Other,
                        "result sink failed",
                    ))
                }
            }
        });
        match result {
            Ok(items) => Ok(items),
            Err(_) if sink_error.is_some() => Err(StreamError::Sink {
                error: sink_error.expect("sink error recorded"),
                items_emitted: emitted,
            }),
            Err(e) if emitted == 0 => Err(StreamError::BeforeFirstItem(e)),
            Err(e) => Err(StreamError::MidStream {
                error: e,
                items_emitted: emitted,
            }),
        }
    }

    /// Evaluate and serialize incrementally: each streamed batch is
    /// serialized with the engine's standard sequence serialization
    /// (single spaces between adjacent atomics, carried across batch
    /// boundaries) and handed to `write` as a text chunk. The
    /// concatenated chunks are byte-identical to serializing the
    /// materialized result of [`run`](Self::run).
    pub fn run_serialized(
        &self,
        ctx: &DynamicContext,
        write: &mut dyn FnMut(&str) -> std::io::Result<()>,
    ) -> Result<StreamStats, StreamError> {
        let mut ser = xqa_xmlparse::SequenceSerializer::new(Default::default());
        let mut buf = String::new();
        let mut stats = StreamStats::default();
        let items = self.run_streaming(ctx, &mut |items| {
            buf.clear();
            ser.push(items, &mut buf);
            if !buf.is_empty() {
                stats.chunks += 1;
                stats.bytes += buf.len() as u64;
                write(&buf)?;
            }
            Ok(())
        })?;
        stats.items = items;
        Ok(stats)
    }

    /// The stable plan fingerprint (see
    /// [`explain::plan_fingerprint`]): identical exactly when the
    /// optimizer produced the same rewritten plan, even for textually
    /// different query sources.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The optimizer rewrites that fired during compilation, with what
    /// they did and where.
    pub fn applied_rewrites(&self) -> &[RewriteNote] {
        &self.rewrites
    }

    /// The compiled IR (for inspection/explain).
    pub fn compiled(&self) -> &ir::CompiledQuery {
        &self.compiled
    }

    /// Render the compiled plan as an indented operator tree.
    pub fn explain(&self) -> String {
        explain::explain_query(&self.compiled)
    }

    /// Render a measured profile (from a profiling-enabled run of this
    /// query) as `explain analyze` text.
    pub fn explain_analyze(&self, profile: &QueryProfile) -> String {
        explain::explain_analyze(profile)
    }
}

/// How far a streaming run ([`PreparedQuery::run_streaming`] /
/// [`PreparedQuery::run_serialized`]) got before failing. The serving
/// layer branches on this: before the first item it can still send an
/// ordinary error response; after, it can only truncate the stream.
#[derive(Debug)]
pub enum StreamError {
    /// The query failed before any item reached the sink; nothing has
    /// been written and a normal error response is still possible.
    BeforeFirstItem(EngineError),
    /// The query failed after `items_emitted` items were handed over;
    /// the transport must signal truncation to the client.
    MidStream {
        /// The engine error that aborted the pipeline.
        error: EngineError,
        /// Items already delivered to the sink before the failure.
        items_emitted: u64,
    },
    /// The sink itself failed (e.g. the client hung up mid-response).
    Sink {
        /// The I/O error the sink returned.
        error: std::io::Error,
        /// Items already delivered to the sink before the failure.
        items_emitted: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::BeforeFirstItem(e) => write!(f, "{e}"),
            StreamError::MidStream {
                error,
                items_emitted,
            } => write!(f, "{error} (after {items_emitted} items streamed)"),
            StreamError::Sink {
                error,
                items_emitted,
            } => write!(f, "result sink failed after {items_emitted} items: {error}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Summary of a completed [`PreparedQuery::run_serialized`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Result items streamed.
    pub items: u64,
    /// Non-empty serialized chunks handed to the writer.
    pub chunks: u64,
    /// Total serialized bytes.
    pub bytes: u64,
}

#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    /// The cross-thread contract the service layer relies on: documents,
    /// items, contexts and compiled plans may be shared freely between
    /// worker threads.
    #[test]
    fn shared_types_are_send_and_sync() {
        assert_send_sync::<xqa_xdm::Document>();
        assert_send_sync::<xqa_xdm::NodeHandle>();
        assert_send_sync::<xqa_xdm::Item>();
        assert_send_sync::<DynamicContext>();
        assert_send_sync::<EvalStats>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<Engine>();
    }
}
