//! # xqa-engine — compiler and evaluator
//!
//! Compiles the XQuery subset (plus the SIGMOD'05 `group by` / output
//! numbering extensions) to an IR and evaluates it over
//! [`xqa_xdm`] values.
//!
//! ```
//! use xqa_engine::{Engine, DynamicContext};
//! use xqa_xmlparse::parse_document;
//!
//! let doc = parse_document("<bib><book><price>10</price></book></bib>").unwrap();
//! let engine = Engine::new();
//! let query = engine.compile("sum(//book/price)").unwrap();
//! let mut ctx = DynamicContext::new();
//! ctx.set_context_document(&doc);
//! let result = query.run(&ctx).unwrap();
//! assert_eq!(result[0].string_value(), "10");
//! ```

#![warn(missing_docs)]

pub mod casts;
pub mod compile;
pub mod context;
pub mod error;
mod eval;
pub mod explain;
mod flwor;
pub mod fold;
pub mod functions;
pub mod ir;
pub mod keys;
mod pipeline;
pub mod rewrite;
pub mod types;

pub use context::{DynamicContext, EvalStats, EvalStatsSnapshot, Focus};
pub use error::{EngineError, EngineResult};

use xqa_frontend::parse_query;
use xqa_xdm::Sequence;

/// Engine configuration.
///
/// `PartialEq`/`Eq`/`Hash` are derived so options can key a prepared-plan
/// cache together with the query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineOptions {
    /// Detect the `distinct-values` + self-join pattern (Table 1's "Q"
    /// template) and rewrite it into an explicit `group by` plan. Off by
    /// default, matching the paper's experimental setup ("no rewrites
    /// were performed to detect the group-by implied in the query").
    pub detect_implicit_groupby: bool,
    /// Fold constant subexpressions at compile time (on by default;
    /// never changes results, only when work happens).
    pub constant_folding: bool,
    /// Evaluate FLWORs through the pull-based streaming operator
    /// pipeline (on by default). `false` selects the legacy
    /// clause-by-clause materializing evaluator, kept for one release to
    /// back the differential test suite.
    pub streaming_pipeline: bool,
    /// Push `[position() le k]`-style bounds over an `order by` FLWOR
    /// into the sort as a `limit`, so the streaming path runs a bounded
    /// top-k heap instead of a full sort (on by default; never changes
    /// results — the residual predicate stays in place).
    pub topk_pushdown: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            detect_implicit_groupby: false,
            constant_folding: true,
            streaming_pipeline: true,
            topk_pushdown: true,
        }
    }
}

/// The query engine: compiles query text into executable plans.
#[derive(Debug, Default, Clone, Copy)]
pub struct Engine {
    options: EngineOptions,
}

impl Engine {
    /// An engine with default options.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine with explicit options.
    pub fn with_options(options: EngineOptions) -> Engine {
        Engine { options }
    }

    /// The active options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// Parse and compile a query.
    pub fn compile(&self, source: &str) -> EngineResult<PreparedQuery> {
        let mut module = parse_query(source)?;
        let mut rewrites = Vec::new();
        if self.options.detect_implicit_groupby {
            rewrites = rewrite::detect_implicit_groupby(&mut module);
        }
        let mut compiled = compile::compile(&module)?;
        compiled.streaming = self.options.streaming_pipeline;
        if self.options.constant_folding {
            let folds = fold::fold_query(&mut compiled);
            if folds > 0 {
                rewrites.push(format!("constant folding: {folds} subexpression(s) folded"));
            }
        }
        if self.options.topk_pushdown {
            // After folding, so literal bounds like `le 5 + 5` are
            // visible. The limit only changes how the streaming order-by
            // runs; the materializing path ignores it.
            rewrites.extend(rewrite::pushdown_topk(&mut compiled));
        }
        // Always-sound plan normalization: `//T` scans one descendant
        // pass instead of materializing every node of the subtree.
        rewrites.extend(rewrite::fuse_descendant_paths(&mut compiled));
        Ok(PreparedQuery { compiled, rewrites })
    }
}

/// A compiled, reusable query.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    compiled: ir::CompiledQuery,
    rewrites: Vec<String>,
}

impl PreparedQuery {
    /// Evaluate against a dynamic context.
    pub fn run(&self, ctx: &DynamicContext) -> EngineResult<Sequence> {
        eval::execute(&self.compiled, ctx)
    }

    /// Descriptions of optimizer rewrites that fired during compilation
    /// (empty unless `detect_implicit_groupby` is on and matched).
    pub fn applied_rewrites(&self) -> &[String] {
        &self.rewrites
    }

    /// The compiled IR (for inspection/explain).
    pub fn compiled(&self) -> &ir::CompiledQuery {
        &self.compiled
    }

    /// Render the compiled plan as an indented operator tree.
    pub fn explain(&self) -> String {
        explain::explain_query(&self.compiled)
    }
}

#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    /// The cross-thread contract the service layer relies on: documents,
    /// items, contexts and compiled plans may be shared freely between
    /// worker threads.
    #[test]
    fn shared_types_are_send_and_sync() {
        assert_send_sync::<xqa_xdm::Document>();
        assert_send_sync::<xqa_xdm::NodeHandle>();
        assert_send_sync::<xqa_xdm::Item>();
        assert_send_sync::<DynamicContext>();
        assert_send_sync::<EvalStats>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<Engine>();
    }
}
