//! Plan-time cardinality estimation.
//!
//! After all IR rewrites have run, [`stamp_estimates`] walks every
//! compiled FLWOR and stamps each pipeline operator (plus the
//! `ReturnAt` sink) with the row count the planner *expects* it to
//! emit. The estimates come from the same [`CatalogStatistics`] the
//! access-path planner consults (PR 6), falling back to structural
//! facts the IR itself proves (literal ranges, literal sequences,
//! nested-FLWOR sink estimates).
//!
//! At run time the [`crate::pipeline`] instrumentation counts *actual*
//! tuples per operator; `explain analyze` joins the two into an
//! `est/actual (q=N.N)` column where the q-error is the standard
//! symmetric ratio `max(est/actual, actual/est)` (both clamped to ≥ 1
//! so empty operators don't divide by zero). The q-error stream is the
//! feedback signal the flight recorder aggregates per plan fingerprint,
//! and what future join-order / DOP decisions will be judged against.
//!
//! The per-operator model is deliberately simple and documented here
//! so misestimates are attributable:
//!
//! - `ForScan` — fan-out per input tuple from [`source_cardinality`];
//!   unknown sources poison the rest of the chain (`None` propagates).
//! - `LetBind` / `CountBind` — 1:1, estimate passes through. A
//!   `HashJoin`-annotated `let` is still 1:1 on the *tuple* stream (it
//!   binds a sequence per tuple); the matched-pairs volume is the
//!   classic [`join_cardinality`] `|build| × |probe| / ndv(key)`.
//! - `Filter` — equality predicates against a value-indexed leaf use
//!   the catalog's distinct-value count (`1/ndv` selectivity); a
//!   `HashJoin`-annotated existential filter uses [`join_cardinality`]
//!   capped at its input; everything else keeps the fixed
//!   [`FILTER_SELECTIVITY`] (the classic System-R default of 1/2 for
//!   an unanalyzed predicate).
//! - `WindowScan` — emits an unknown number of windows → `None`.
//! - `GroupConsume` — distinct-group count guessed as `⌈√n⌉` of its
//!   input (no distinct-value statistics are kept yet).
//! - `OrderBy` — `min(n, limit)` when top-k pushdown bounded it,
//!   otherwise a pass-through.
//! - `ReturnAt` — one output ordinal per input tuple.

use crate::fold;
use crate::ir::*;
use xqa_storage::CatalogStatistics;

/// Default selectivity assumed for an unanalyzed `where` predicate.
pub const FILTER_SELECTIVITY: f64 = 0.5;

/// Stamp every FLWOR pipeline in the query with per-operator row
/// estimates (see the module docs for the model). Runs after all IR
/// rewrites so top-k limits and index annotations are visible; with no
/// statistics attached only structurally-provable sources (literal
/// ranges and sequences) seed the chain.
pub fn stamp_estimates(query: &mut CompiledQuery, stats: Option<&CatalogStatistics>) {
    for g in &mut query.globals {
        stamp_ir(&mut g.init, stats);
    }
    for f in &mut query.functions {
        stamp_ir(&mut f.body, stats);
    }
    stamp_ir(&mut query.body, stats);
}

fn stamp_ir(ir: &mut Ir, stats: Option<&CatalogStatistics>) {
    // Children first so a nested FLWOR's sink estimate is available to
    // the enclosing chain's source estimate.
    for child in fold::child_irs(ir) {
        stamp_ir(child, stats);
    }
    if let Ir::Flwor(f) = ir {
        f.estimates = estimate_chain(f, stats);
    }
}

/// One estimate per clause operator plus the trailing `ReturnAt` sink.
fn estimate_chain(f: &FlworIr, stats: Option<&CatalogStatistics>) -> Vec<Option<u64>> {
    let mut estimates = Vec::with_capacity(f.clauses.len() + 1);
    // Tuples flowing into the next operator; the chain starts with the
    // single empty tuple every FLWOR conceptually begins from.
    let mut card: Option<u64> = Some(1);
    for (i, clause) in f.clauses.iter().enumerate() {
        let join = f.joins.get(i).and_then(|j| j.as_ref());
        card = match clause {
            ClauseIr::For { expr, .. } => {
                let fanout = source_cardinality(expr, stats);
                match (card, fanout) {
                    (Some(n), Some(k)) => Some(n.saturating_mul(k)),
                    _ => None,
                }
            }
            ClauseIr::Let { .. } | ClauseIr::Count { .. } => card,
            ClauseIr::Where(pred) => match join {
                // Semi-join: tuples whose probe key hits the build
                // table, estimated from the equi-join formula capped at
                // the input (each tuple survives at most once).
                Some(j) => match (card, join_estimate(j, card, stats)) {
                    (Some(n), Some(m)) => Some(n.min(m)),
                    _ => card.map(filter_fallback),
                },
                None => card.map(|n| match eq_pred_selectivity(pred, stats) {
                    Some(sel) => ((n as f64 * sel).ceil() as u64).max(1),
                    None => filter_fallback(n),
                }),
            },
            ClauseIr::Window(_) => None,
            ClauseIr::GroupBy(_) => card.map(|n| isqrt(n).max(1)),
            ClauseIr::OrderBy(ob) => match ob.limit {
                Some(k) => Some(card.map_or(k as u64, |n| n.min(k as u64))),
                None => card,
            },
        };
        estimates.push(card);
    }
    // The sink emits one output ordinal per surviving tuple.
    estimates.push(card);
    estimates
}

fn filter_fallback(n: u64) -> u64 {
    (n as f64 * FILTER_SELECTIVITY).ceil() as u64
}

/// Classic equi-join output cardinality under uniformity:
/// `|build| × |probe| / ndv(key)` — every probe key matches
/// `|build| / ndv` build rows on average.
pub(crate) fn join_cardinality(build: u64, probe: u64, ndv: u64) -> u64 {
    ((build as f64) * (probe as f64) / (ndv.max(1) as f64)).ceil() as u64
}

/// Matched-pairs estimate for an annotated join: build-side cardinality
/// from [`source_cardinality`], key ndv from the catalog's per-name
/// distinct counts (keyed by the build key's deepest named step).
fn join_estimate(
    j: &crate::ir::JoinIr,
    probe: Option<u64>,
    stats: Option<&CatalogStatistics>,
) -> Option<u64> {
    let build = source_cardinality(&j.build_src, stats)?;
    let ndv = stats?.distinct_values(&key_leaf_name(&j.build_key)?)?;
    Some(join_cardinality(build, probe?, ndv))
}

/// The deepest named element step of a key path — the leaf whose
/// per-name ndv stands in for the join key's distinct count.
fn key_leaf_name(key: &Ir) -> Option<xqa_xdm::QName> {
    let Ir::Path(p) = key else { return None };
    p.steps.iter().rev().find_map(|step| match step {
        StepIr::Axis {
            test: NodeTestIr::Name(q),
            predicates,
            ..
        } if predicates.is_empty() => Some(q.clone()),
        _ => None,
    })
}

/// Selectivity of an equality `where` predicate whose compared side is
/// a predicate-free named path (`$x/c = lit`, `//T/c = $v`, either
/// operand order): `1/ndv` when the catalog can answer equality on that
/// leaf exactly. `None` falls back to [`FILTER_SELECTIVITY`].
fn eq_pred_selectivity(pred: &Ir, stats: Option<&CatalogStatistics>) -> Option<f64> {
    use xqa_xdm::CompOp;
    let stats = stats?;
    let (Ir::GeneralComp(CompOp::Eq, a, b) | Ir::ValueComp(CompOp::Eq, a, b)) = pred else {
        return None;
    };
    let ndv_of = |side: &Ir| {
        let name = key_leaf_name(side)?;
        if !stats.value_eq_indexable(&name, false) {
            return None;
        }
        stats.distinct_values(&name)
    };
    let ndv = ndv_of(a).or_else(|| ndv_of(b))?;
    Some(1.0 / ndv as f64)
}

/// How many items the planner expects a `for` binding sequence to
/// yield. `None` means "no idea" — the honest answer for arbitrary
/// expressions — and poisons downstream estimates rather than
/// fabricating a magic constant.
pub(crate) fn source_cardinality(expr: &Ir, stats: Option<&CatalogStatistics>) -> Option<u64> {
    match expr {
        Ir::Int(_) | Ir::Dec(_) | Ir::Dbl(_) | Ir::Str(_) => Some(1),
        Ir::Empty => Some(0),
        Ir::Seq(items) => Some(items.len() as u64),
        Ir::Range(a, b) => match (a.as_ref(), b.as_ref()) {
            (Ir::Int(lo), Ir::Int(hi)) if hi >= lo => Some((hi - lo + 1) as u64),
            (Ir::Int(_), Ir::Int(_)) => Some(0),
            _ => None,
        },
        Ir::Flwor(f) => f.estimates.last().copied().flatten(),
        Ir::Path(p) => path_cardinality(p, stats?),
        _ => None,
    }
}

/// Estimate a path scan from catalog statistics: the element count of
/// the *deepest named element step* bounds the scan's output (each
/// element appears at most once however it is reached), discounted by
/// [`FILTER_SELECTIVITY`] per predicate on that step. A value-eq index
/// probe selects among those elements by one child's value: with the
/// catalog's distinct count for that leaf, `count / ndv` matches per
/// probed value; without it the group-count heuristic `⌈√n⌉` stands in
/// (and subsumes the probe predicate itself).
fn path_cardinality(p: &PathIr, stats: &CatalogStatistics) -> Option<u64> {
    if !matches!(p.start, PathStartIr::Root | PathStartIr::Context) {
        return None;
    }
    let (deepest, predicates) = p.steps.iter().rev().find_map(|step| match step {
        StepIr::Axis {
            test: NodeTestIr::Name(q),
            predicates,
            ..
        } => Some((q, predicates.len())),
        _ => None,
    })?;
    let count = stats.element_count(deepest);
    if let AccessPathIr::IndexValueEq { child, .. } = &p.access {
        if let Some(ndv) = stats.distinct_values(child) {
            return Some((count / ndv).max(1));
        }
        return Some(isqrt(count).max(1));
    }
    let mut est = count as f64;
    for _ in 0..predicates {
        est *= FILTER_SELECTIVITY;
    }
    Some(est.ceil() as u64)
}

/// Integer square root (newton), enough for group-count guessing.
fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use xqa_frontend::parse_query;

    fn stamped(src: &str) -> CompiledQuery {
        let module = parse_query(src).expect("parse");
        let mut compiled = compile::compile(&module).expect("compile");
        stamp_estimates(&mut compiled, None);
        compiled
    }

    fn body_estimates(q: &CompiledQuery) -> Vec<Option<u64>> {
        match &q.body {
            Ir::Flwor(f) => f.estimates.clone(),
            other => panic!("expected FLWOR body, got {other:?}"),
        }
    }

    #[test]
    fn isqrt_matches_float_sqrt() {
        for n in [0u64, 1, 2, 3, 4, 24, 25, 26, 10_000, 999_983] {
            assert_eq!(isqrt(n), (n as f64).sqrt() as u64, "n={n}");
        }
    }

    #[test]
    fn literal_range_seeds_the_chain() {
        let q = stamped("for $x in 1 to 50 where $x le 40 return $x");
        // ForScan 50 -> Filter 25 -> ReturnAt 25
        assert_eq!(body_estimates(&q), vec![Some(50), Some(25), Some(25)]);
    }

    #[test]
    fn group_and_passthrough_operators() {
        let q = stamped(
            "for $x in 1 to 100 count $c let $m := $x mod 5 \
             group by $m into $k nest $x into $xs return $k",
        );
        // ForScan 100 -> CountBind 100 -> LetBind 100 -> GroupConsume 10 -> sink 10
        assert_eq!(
            body_estimates(&q),
            vec![Some(100), Some(100), Some(100), Some(10), Some(10)]
        );
    }

    #[test]
    fn unknown_source_poisons_downstream() {
        let q = stamped("for $x in //item where $x > 1 return $x");
        // No statistics attached: the path scan is unknown, and so is
        // everything after it.
        assert_eq!(body_estimates(&q), vec![None, None, None]);
    }

    #[test]
    fn nested_flwor_sink_feeds_outer_source() {
        let q = stamped("for $x in (for $y in 1 to 10 return $y) return $x");
        assert_eq!(body_estimates(&q), vec![Some(10), Some(10)]);
    }

    #[test]
    fn empty_and_literal_sources() {
        let q = stamped("for $x in (1, 2, 3) return $x");
        assert_eq!(body_estimates(&q), vec![Some(3), Some(3)]);
    }
}
